"""Ablation studies for the design choices DESIGN.md calls out.

Not a paper figure — these quantify the reproduction's own decisions:

1. **shift-and-enlarge on/off** (Procedure 6 line 4, Dai et al. [4]):
   adapting later sub-queries' periodic windows to the travel time
   accumulated so far should not hurt accuracy and matters most for long
   trips where the trip outlasts the initial window.
2. **self-exclusion on/off**: including the query trajectory in its own
   answer leaks ground truth into the estimate (DESIGN.md §3); the
   ablation measures how large that optimistic bias is.
3. **zone-dependent beta** (paper Section 7, future work): smaller sample
   requirements on rural sub-paths should cut relaxations (time) at a
   small accuracy cost.
"""

import numpy as np
import pytest

from repro import EngineConfig, QueryEngine, StrictPathQuery
from repro.core import zone_beta_policy
from repro.experiments import format_table, run_accuracy_config

from .conftest import bench_queries
from tests.typed_api import run_trip


def run_with_engine(workload, engine, beta=20, n=None, exclude_self=True):
    """sMAPE + ms/query of a temporal-filter run under a custom engine."""
    import time

    from repro.metrics import smape

    n = n or min(40, bench_queries())
    estimates, truths = [], []
    elapsed = 0.0
    for spec in workload.queries[:n]:
        query = spec.to_query("temporal", 900, workload.t_max, beta)
        exclude = (spec.traj_id,) if exclude_self else ()
        started = time.perf_counter()
        result = run_trip(engine, query, exclude_ids=exclude)
        elapsed += time.perf_counter() - started
        estimates.append(result.estimated_mean)
        truths.append(spec.true_duration)
    return smape(estimates, truths), 1000.0 * elapsed / n


def test_ablation_shift_and_enlarge(workload, benchmark, capsys):
    with_adapt = QueryEngine(
        workload.index,
        workload.network,
        EngineConfig(partitioner="pi_Z", shift_and_enlarge=True),
    )
    without = QueryEngine(
        workload.index,
        workload.network,
        EngineConfig(partitioner="pi_Z", shift_and_enlarge=False),
    )
    spec = max(workload.queries, key=lambda s: len(s.path))
    query = spec.to_query("temporal", 900, workload.t_max, 20)
    benchmark(lambda: run_trip(with_adapt, query, exclude_ids=(spec.traj_id,)))

    smape_on, ms_on = run_with_engine(workload, with_adapt)
    smape_off, ms_off = run_with_engine(workload, without)
    print("\n" + format_table(
        ["shift-and-enlarge", "sMAPE %", "ms/query"],
        [["on", f"{smape_on:.2f}", f"{ms_on:.2f}"],
         ["off", f"{smape_off:.2f}", f"{ms_off:.2f}"]],
        title="Ablation: shift-and-enlarge (Dai et al.)",
    ))
    # Adaptation must not materially hurt accuracy.
    assert smape_on <= smape_off + 1.5


def test_ablation_self_exclusion(workload, benchmark, capsys):
    engine = QueryEngine(
        workload.index, workload.network, EngineConfig(partitioner="pi_Z")
    )
    spec = max(workload.queries, key=lambda s: len(s.path))
    query = spec.to_query("temporal", 900, workload.t_max, 20)
    benchmark(lambda: run_trip(engine, query))

    smape_excluded, _ = run_with_engine(workload, engine, exclude_self=True)
    smape_included, _ = run_with_engine(workload, engine, exclude_self=False)
    print("\n" + format_table(
        ["query trajectory", "sMAPE %"],
        [["excluded (honest)", f"{smape_excluded:.2f}"],
         ["included (leaky)", f"{smape_included:.2f}"]],
        title="Ablation: self-exclusion of the query trajectory",
    ))
    # Leaking the ground-truth trajectory into the answer can only help.
    assert smape_included <= smape_excluded + 0.25


def test_ablation_zone_beta_policy(workload, benchmark, capsys):
    uniform = QueryEngine(
        workload.index, workload.network, EngineConfig(partitioner="pi_Z")
    )
    zoned = QueryEngine(
        workload.index,
        workload.network,
        EngineConfig(
            partitioner="pi_Z",
            beta_policy=zone_beta_policy(workload.network, rural_factor=0.5),
        ),
    )
    spec = max(workload.queries, key=lambda s: len(s.path))
    query = spec.to_query("temporal", 900, workload.t_max, 20)
    benchmark(lambda: run_trip(zoned, query, exclude_ids=(spec.traj_id,)))

    smape_uniform, ms_uniform = run_with_engine(workload, uniform)
    smape_zoned, ms_zoned = run_with_engine(workload, zoned)
    print("\n" + format_table(
        ["beta policy", "sMAPE %", "ms/query"],
        [["uniform (paper default)", f"{smape_uniform:.2f}", f"{ms_uniform:.2f}"],
         ["rural beta/2 (future work)", f"{smape_zoned:.2f}", f"{ms_zoned:.2f}"]],
        title="Ablation: zone-dependent beta (paper Section 7)",
    ))
    # The relaxed requirement must stay within a small accuracy band.
    assert abs(smape_zoned - smape_uniform) < 2.0


def test_ablation_interval_ladder(workload, benchmark, capsys):
    """Coarser relaxation ladders trade accuracy for fewer retries."""
    full_ladder = (900, 1800, 2700, 3600, 5400, 7200)
    coarse_ladder = (900, 7200)
    results = []
    for label, ladder in (("paper A", full_ladder), ("2-step", coarse_ladder)):
        engine = QueryEngine(
            workload.index,
            workload.network,
            EngineConfig(partitioner="pi_Z", ladder=ladder),
        )
        s, ms = run_with_engine(workload, engine)
        results.append([label, f"{s:.2f}", f"{ms:.2f}"])
    engine = QueryEngine(
        workload.index,
        workload.network,
        EngineConfig(partitioner="pi_Z", ladder=coarse_ladder),
    )
    spec = max(workload.queries, key=lambda s: len(s.path))
    query = spec.to_query("temporal", 900, workload.t_max, 20)
    benchmark(lambda: run_trip(engine, query, exclude_ids=(spec.traj_id,)))

    print("\n" + format_table(
        ["ladder", "sMAPE %", "ms/query"],
        results,
        title="Ablation: interval-size ladder A",
    ))
    assert all(float(row[1]) < 200 for row in results)
