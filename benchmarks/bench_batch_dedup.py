"""Cold-cache batch dedup benchmark (ISSUE 5 acceptance bar).

The claim: on a cold cache, a repeated-path batch — every distinct trip
appears ``REPEAT`` (>= 4) times, as commuter traffic repeats trips —
answered through the deduplicating staged executor
(``EngineConfig(dedup_subqueries=True)``) issues **at most half** the
index scans of the per-trip sequential loop, and beats its wall-clock,
while producing byte-identical histograms.

Method: the per-trip loop is the paper's Procedure 6, one uncached trip
at a time (so every repeat re-scans everything).  The dedup batch runs
the same requests through ``db.query_many`` with a fresh shared cache
per round: the executor collects the planned sub-queries of all
in-flight trips, scans each unique ``(path, interval, user, beta,
exclude)`` task once, and fans the answer out.  Timings are
best-of-``ROUNDS`` with a fresh cold cache per round.

Environment knobs (see ``conftest.py`` for the shared ones):

* ``REPRO_BENCH_DEDUP_SCAN_RATIO`` — maximum unique-scan fraction of
  the per-trip loop's scan count (default ``0.5``, the acceptance bar;
  with REPEAT=4 the expected ratio is ~0.25).
* ``REPRO_BENCH_DEDUP_SPEEDUP`` — minimum per-trip-over-dedup
  wall-clock ratio (default ``1.0``: the batch must win).
* ``REPRO_BENCH_JSON`` — path for the JSON results artifact.
"""

import json
import os
import time

from repro import EngineConfig, TripRequest, open_db

from .conftest import bench_queries

REPEAT = 4
ROUNDS = 3


def _write_artifact(payload: dict) -> None:
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target:
        return
    existing = {}
    if os.path.exists(target):
        with open(target) as handle:
            existing = json.load(handle)
    existing.update(payload)
    with open(target, "w") as handle:
        json.dump(existing, handle, indent=2)


def test_cold_batch_dedup_halves_scans_and_beats_per_trip_loop(workload):
    scan_ratio_bar = float(
        os.environ.get("REPRO_BENCH_DEDUP_SCAN_RATIO", "0.5")
    )
    speedup_bar = float(os.environ.get("REPRO_BENCH_DEDUP_SPEEDUP", "1.0"))

    # Repeated-path workload: every distinct trip appears REPEAT times,
    # interleaved so repeats are in flight together (the dedup window),
    # not back to back.
    n_distinct = min(10, bench_queries())
    specs = sorted(
        workload.queries, key=lambda s: len(s.path), reverse=True
    )[:n_distinct]
    distinct = [
        TripRequest.from_spq(
            spec.to_query("temporal", 900, workload.t_max, 20),
            exclude_ids=(spec.traj_id,),
        )
        for spec in specs
    ]
    requests = distinct * REPEAT

    config = EngineConfig(dedup_subqueries=True)

    def per_trip_loop():
        """The paper's baseline: one uncached sequential trip at a time."""
        db = open_db(workload.index, network=workload.network, cache=None)
        started = time.perf_counter()
        results = [db.query(request) for request in requests]
        return time.perf_counter() - started, results

    def dedup_batch():
        """Cold dedup batch: fresh shared cache, one executor run."""
        db = open_db(
            workload.index, network=workload.network, config=config
        )
        started = time.perf_counter()
        results = db.query_many(requests)
        return time.perf_counter() - started, results, db.last_dedup_stats

    loop_times, dedup_times = [], []
    loop_results = dedup_results = stats = None
    for _ in range(ROUNDS):
        elapsed, loop_results = per_trip_loop()
        loop_times.append(elapsed)
        elapsed, dedup_results, stats = dedup_batch()
        dedup_times.append(elapsed)

    assert all(
        actual.histogram == expected.histogram
        and actual.estimated_mean == expected.estimated_mean
        for actual, expected in zip(dedup_results, loop_results)
    ), "dedup batch diverged from the per-trip loop"

    loop_scans = sum(r.n_index_scans for r in loop_results)
    unique_scans = stats.n_index_scans
    best_loop = min(loop_times)
    best_dedup = min(dedup_times)
    loop_qps = len(requests) / best_loop
    dedup_qps = len(requests) / best_dedup

    print(
        f"\ncold-cache repeated-path batch ({n_distinct} distinct trips "
        f"x{REPEAT}, {len(requests)} queries):\n"
        f"  per-trip loop: {loop_scans} scans, {loop_qps:.0f} q/s\n"
        f"  dedup batch:   {unique_scans} unique scans, "
        f"{dedup_qps:.0f} q/s ({best_loop / best_dedup:.2f}x)\n"
        f"  {stats.summary()}"
    )
    _write_artifact(
        {
            "batch_dedup": {
                "n_distinct": n_distinct,
                "repeat": REPEAT,
                "per_trip_scans": loop_scans,
                "unique_scans": unique_scans,
                "scan_ratio": unique_scans / loop_scans,
                "per_trip_qps": loop_qps,
                "dedup_qps": dedup_qps,
                "speedup": best_loop / best_dedup,
                "planned_subqueries": stats.planned_subqueries,
                "scans_saved": stats.scans_saved,
            }
        }
    )

    assert unique_scans <= scan_ratio_bar * loop_scans, (
        f"dedup batch issued {unique_scans} scans; bar is "
        f"{scan_ratio_bar:.0%} of the per-trip loop's {loop_scans}"
    )
    assert best_loop >= speedup_bar * best_dedup, (
        f"dedup batch ({best_dedup * 1000:.1f} ms) did not beat the "
        f"per-trip loop ({best_loop * 1000:.1f} ms) by the "
        f"{speedup_bar:.2f}x bar"
    )
