"""Batch service QPS: single vs. batched vs. cached (ISSUE 1 tentpole).

Quantifies what the serving layer buys on a repeated-path workload —
the shape the shared :class:`repro.service.SubQueryCache` is built for:
every query repeats ``REPEAT`` times, as commuter traffic repeats trips.

* ``sequential`` is Procedure 6 as the paper runs it, one trip at a time;
* ``batched`` adds thread-pool fan-out only (GIL-bound in pure Python);
* ``cached-cold`` / ``cached-warm`` add the shared sub-query cache.

The acceptance bar (ISSUE 1): a warm cache must answer the repeated
workload at >= 2x the sequential QPS while producing *identical*
histograms — the equivalence flag is asserted, not assumed.
"""

import os
import time

import pytest

from repro import EngineConfig, QueryEngine, SubQueryCache, TripRequest, open_db
from repro.experiments import format_table, measure_batch_service

from .conftest import bench_queries

REPEAT = 3


def test_batch_service_speedup(workload, benchmark, capsys):
    n_queries = min(20, bench_queries())
    benchmark.pedantic(
        measure_batch_service,
        args=(workload,),
        kwargs={"n_queries": min(5, n_queries), "repeat": 2},
        rounds=2,
        iterations=1,
    )

    results, identical = measure_batch_service(
        workload, n_queries=n_queries, repeat=REPEAT, n_workers=4
    )
    assert identical, "service answers diverged from the sequential loop"

    by_mode = {r.mode: r for r in results}
    base = by_mode["sequential"].queries_per_second
    rows = [
        [
            r.mode,
            r.n_queries,
            f"{r.queries_per_second:.0f}",
            f"{r.queries_per_second / base:.2f}x",
            r.n_index_scans,
            r.n_cache_hits,
        ]
        for r in results
    ]
    print("\n" + format_table(
        ["mode", "queries", "q/s", "speed-up", "scans", "hits"],
        rows,
        title=f"Batch service on a repeated-path workload "
        f"(every query x{REPEAT})",
    ))
    print(
        "Finding: fan-out alone is GIL-bound, but the shared cache turns "
        "repeated sub-paths into\ndictionary lookups — scans + hits is "
        "invariant across modes, so the answers are provably\nthe same "
        "work, answered faster."
    )

    warm = by_mode["cached-warm"]
    assert warm.n_index_scans == 0, "warm cache should answer without scans"
    assert warm.queries_per_second >= 2.0 * base, (
        f"warm-cache QPS {warm.queries_per_second:.0f} is below 2x the "
        f"sequential {base:.0f}"
    )


def test_typed_api_no_hot_loop_overhead(workload):
    """Request-object guard (ISSUE 3): warm-cache QPS through the typed
    ``open_db``/``TripRequest`` API must stay within
    ``REPRO_BENCH_API_OVERHEAD`` (default 5%) of the direct-engine path.

    Both paths share one warm :class:`SubQueryCache` over the same index
    and network, so every retrieval is a dictionary hit and the measured
    difference is exactly the per-request object overhead
    (validation + ``to_spq`` + back-reference).  Best-of-``ROUNDS``
    timings are compared to keep scheduler noise out of the bar.
    """
    threshold = float(os.environ.get("REPRO_BENCH_API_OVERHEAD", "0.95"))
    rounds = 7
    n_queries = min(20, bench_queries())
    specs = workload.queries[:n_queries]
    # A large per-round workload (~hundreds of warm queries) keeps each
    # timed section well above scheduler-noise granularity; with ~20 ms
    # rounds the 5% budget was within jitter and the guard flaked.
    multiplier = max(REPEAT, 600 // max(1, n_queries))
    requests = [
        TripRequest.from_spq(
            spec.to_query("temporal", 900, workload.t_max, 20),
            exclude_ids=(spec.traj_id,),
        )
        for spec in specs
    ] * multiplier
    spq_tasks = [(r.to_spq(), r.exclude_ids) for r in requests]

    cache = SubQueryCache()
    config = EngineConfig(partitioner="pi_Z")
    engine = QueryEngine(
        workload.index, workload.network, config, cache=cache
    )
    db = open_db(
        workload.index, network=workload.network, cache=cache, config=config
    )

    def run_direct():
        return [
            engine._run_trip(query, exclude_ids=excluded)
            for query, excluded in spq_tasks
        ]

    def run_api():
        return db.query_many(requests)

    direct_results = run_direct()  # warms the shared cache
    api_results = run_api()
    assert all(
        a.histogram == d.histogram and a.estimated_mean == d.estimated_mean
        for a, d in zip(api_results, direct_results)
    ), "typed API diverged from the direct engine path"

    # Interleave the timed rounds so clock-frequency drift or a stray
    # background task penalises both paths equally; best-of compares the
    # least-disturbed round of each.
    direct_times, api_times = [], []
    for _ in range(rounds):
        direct_times.append(_timed(run_direct))
        api_times.append(_timed(run_api))
    best_direct = min(direct_times)
    best_api = min(api_times)
    direct_qps = len(requests) / best_direct
    api_qps = len(requests) / best_api
    print(
        f"\nwarm-cache QPS: direct {direct_qps:.0f}, typed API "
        f"{api_qps:.0f} ({api_qps / direct_qps:.1%} of direct; "
        f"bar {threshold:.0%})"
    )
    assert api_qps >= threshold * direct_qps, (
        f"typed-API warm QPS {api_qps:.0f} fell below {threshold:.0%} of "
        f"the direct-engine path {direct_qps:.0f} — request-object "
        "overhead has entered the hot loop"
    )


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
