"""Batch service QPS: single vs. batched vs. cached (ISSUE 1 tentpole).

Quantifies what the serving layer buys on a repeated-path workload —
the shape the shared :class:`repro.service.SubQueryCache` is built for:
every query repeats ``REPEAT`` times, as commuter traffic repeats trips.

* ``sequential`` is Procedure 6 as the paper runs it, one trip at a time;
* ``batched`` adds thread-pool fan-out only (GIL-bound in pure Python);
* ``cached-cold`` / ``cached-warm`` add the shared sub-query cache.

The acceptance bar (ISSUE 1): a warm cache must answer the repeated
workload at >= 2x the sequential QPS while producing *identical*
histograms — the equivalence flag is asserted, not assumed.
"""

import pytest

from repro.experiments import format_table, measure_batch_service

from .conftest import bench_queries

REPEAT = 3


def test_batch_service_speedup(workload, benchmark, capsys):
    n_queries = min(20, bench_queries())
    benchmark.pedantic(
        measure_batch_service,
        args=(workload,),
        kwargs={"n_queries": min(5, n_queries), "repeat": 2},
        rounds=2,
        iterations=1,
    )

    results, identical = measure_batch_service(
        workload, n_queries=n_queries, repeat=REPEAT, n_workers=4
    )
    assert identical, "service answers diverged from sequential trip_query"

    by_mode = {r.mode: r for r in results}
    base = by_mode["sequential"].queries_per_second
    rows = [
        [
            r.mode,
            r.n_queries,
            f"{r.queries_per_second:.0f}",
            f"{r.queries_per_second / base:.2f}x",
            r.n_index_scans,
            r.n_cache_hits,
        ]
        for r in results
    ]
    print("\n" + format_table(
        ["mode", "queries", "q/s", "speed-up", "scans", "hits"],
        rows,
        title=f"Batch service on a repeated-path workload "
        f"(every query x{REPEAT})",
    ))
    print(
        "Finding: fan-out alone is GIL-bound, but the shared cache turns "
        "repeated sub-paths into\ndictionary lookups — scans + hits is "
        "invariant across modes, so the answers are provably\nthe same "
        "work, answered faster."
    )

    warm = by_mode["cached-warm"]
    assert warm.n_index_scans == 0, "warm cache should answer without scans"
    assert warm.queries_per_second >= 2.0 * base, (
        f"warm-cache QPS {warm.queries_per_second:.0f} is below 2x the "
        f"sequential {base:.0f}"
    )
