"""Cross-process shared cache tier benchmark (ISSUE 4 acceptance bar).

The claim: a **second, fresh process** answering a repeated-path
workload through a warm :class:`~repro.service.SharedCacheTier` beats
its own cold run — the whole point of the tier is that sub-query work
done by one process (a fork worker, an earlier CLI run, another serving
process) is never redone by the next one.

Method: the parent saves the index, warms the tier once, and then
measures two *forked child processes* answering the identical batch:

* the **cold child** uses a fresh in-process cache (the pre-tier
  behaviour of every new process);
* the **warm child** opens the shared tier and must answer with zero
  index scans — every retrieval is a shared hit — and measurably less
  wall-clock than the cold child.

Answers are asserted bit-identical to an uncached engine either way.
Results are also written as JSON to ``REPRO_BENCH_JSON`` (when set) so
CI can archive the numbers as an artifact.

Environment knobs (see ``conftest.py`` for the shared ones):

* ``REPRO_BENCH_TIER_SPEEDUP`` — minimum warm-over-cold child speedup
  (default ``1.1``; the zero-scan assertion is the hard functional
  guarantee, the speedup bar guards the constant factor).
* ``REPRO_BENCH_JSON`` — path for the JSON results artifact.
"""

import json
import os
import time

import pytest

from repro import EngineConfig, TripRequest, open_db
from repro.forkpool import fork_map

from .conftest import bench_queries, bench_scale

#: Child measurements per mode; the minimum damps scheduler noise.
ROUNDS = 3


def speedup_bar() -> float:
    return float(os.environ.get("REPRO_BENCH_TIER_SPEEDUP", "1.1"))


def _write_artifact(payload: dict) -> None:
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target:
        return
    existing = {}
    if os.path.exists(target):
        with open(target) as handle:
            existing = json.load(handle)
    existing.update(payload)
    with open(target, "w") as handle:
        json.dump(existing, handle, indent=2)


def _answer_batch(payload):
    """Child-side measurement: open a session, answer the batch.

    Runs in a freshly forked process, so the in-process cache layer
    starts cold either way; only the shared store (when ``spec`` points
    at the tier) carries state in.
    """
    index_dir, network, requests, spec = payload
    db = open_db(index_dir, network=network, config=EngineConfig(cache=spec))
    started = time.perf_counter()
    results = db.query_many(requests)
    elapsed = time.perf_counter() - started
    return (
        elapsed,
        sum(r.n_index_scans for r in results),
        sum(r.n_cache_hits for r in results),
        [r.histogram.as_dict() for r in results],
    )


def test_fresh_process_warm_tier_beats_cold_run(
    workload, tmp_path, capsys
):
    index_dir = tmp_path / "index"
    workload.index.save(index_dir)
    tier_dir = tmp_path / "tier"
    shared_spec = f"shared:{tier_dir}"

    # The repeated-path workload is repeated *across processes*: the
    # parent answers it once, then every child answers the same batch.
    # Longest paths first — they carry the most index work per query, so
    # the cold/warm contrast is the sub-query scans, not fixed overhead.
    n_queries = min(20, bench_queries())
    specs = sorted(
        workload.queries, key=lambda s: len(s.path), reverse=True
    )[:n_queries]
    requests = [
        TripRequest.from_spq(
            spec.to_query("temporal", 900, workload.t_max, 20),
            exclude_ids=(spec.traj_id,),
        )
        for spec in specs
    ]

    # Ground truth + tier warm-up in the parent.
    uncached = open_db(
        index_dir, network=workload.network, cache=None
    )
    expected = [r.histogram.as_dict() for r in uncached.query_many(requests)]
    warmer = open_db(
        index_dir,
        network=workload.network,
        config=EngineConfig(cache=shared_spec),
    )
    warm_up = warmer.query_many(requests)
    assert [r.histogram.as_dict() for r in warm_up] == expected

    # Each measurement is one forked child answering the whole batch;
    # the minimum over ROUNDS children is the per-mode time.
    def child_run(spec: str):
        best = None
        for _ in range(ROUNDS):
            (result,) = fork_map(
                _answer_batch,
                [(index_dir, workload.network, requests, spec)],
                workers=1,
            )
            if best is None or result[0] < best[0]:
                best = result
        return best

    cold_s, cold_scans, cold_hits, cold_histograms = child_run("memory")
    warm_s, warm_scans, warm_hits, warm_histograms = child_run(shared_spec)

    # Bit-identical answers, tier on or off, in a fresh process.
    assert cold_histograms == expected
    assert warm_histograms == expected
    # The functional guarantee: the warm child never touches the index.
    assert warm_scans == 0
    assert warm_hits > 0
    assert cold_scans > 0

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"\nFresh-process repeated-path batch of {len(requests)}: "
        f"cold {cold_s * 1000:.1f} ms ({cold_scans} scans), warm shared "
        f"tier {warm_s * 1000:.1f} ms ({warm_hits} shared hits) -> "
        f"{speedup:.2f}x"
    )
    _write_artifact(
        {
            "cache_tier": {
                "scale": bench_scale(),
                "n_requests": len(requests),
                "cold_child_s": cold_s,
                "warm_child_s": warm_s,
                "cold_scans": cold_scans,
                "warm_shared_hits": warm_hits,
                "speedup": speedup,
                "bar": speedup_bar(),
            }
        }
    )
    if bench_scale() == "tiny":
        # At tiny scale an index scan costs about as much as a store
        # read, so wall clock cannot discriminate; the zero-scan
        # assertion above already proved the tier served everything.
        # The speedup bar is held from `small` (the CI scale) upwards.
        print("tiny scale: speedup bar skipped (scan ~ store-read cost)")
        return
    assert speedup >= speedup_bar(), (
        f"fresh process with warm shared tier reached only {speedup:.2f}x "
        f"over its own cold run (bar: {speedup_bar():.2f}x)"
    )
