"""Cold-start benchmark: sealed-index open must be O(1), not O(corpus).

The v2 on-disk format stores every array as a standalone ``.npy`` opened
with ``mmap_mode="r"``, and defers per-edge temporal indexes and the
ToD store until first touch.  Opening a sealed index in a fresh process
is therefore metadata work only — parse ``meta.json``, establish the
mmaps — and must not scale with how much trajectory data the shard
holds.  This file pins that claim:

* A **quarter corpus** and the **full corpus** are built, sealed, and
  then opened in genuinely fresh Python processes (``subprocess``, not
  fork — nothing is inherited).  The child times the open, runs a real
  backward-search + temporal-fetch query, and reports its peak RSS.
* The full-corpus open may cost at most ``REPRO_BENCH_COLD_OPEN_RATIO``
  (default ``3.0``) times the quarter-corpus open, even though it holds
  ~4x the traversals — far below the linear-cost slope the old
  pickle-everything format paid.

Results are also written as JSON to ``REPRO_BENCH_JSON`` (when set) so
CI can archive the numbers as an artifact.

Environment knobs (see ``conftest.py`` for the shared ones):

* ``REPRO_BENCH_COLD_OPEN_RATIO`` — maximum allowed full/quarter
  open-time ratio (default ``3.0``).
* ``REPRO_BENCH_JSON`` — path for the JSON results artifact.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import SNTIndex, generate_dataset
from repro.trajectories.model import TrajectorySet

from .conftest import bench_scale

PARTITION_DAYS = 7

#: Runs inside the fresh process: open the sealed directory, answer a
#: query, report timings and peak RSS.  Import cost is excluded (the
#: interpreter + numpy tax is identical for any index size).
_CHILD = """
import json, resource, sys, time

from repro import SNTIndex

path = json.loads(sys.argv[2])
started = time.perf_counter()
index = SNTIndex.load(sys.argv[1])
open_s = time.perf_counter() - started

started = time.perf_counter()
hits = index.isa_ranges_many([path])[0]
edge = index.edge_index(path[0])
n_records = len(edge) if edge is not None else 0
query_s = time.perf_counter() - started

print(json.dumps({
    "open_s": open_s,
    "query_s": query_s,
    "n_range_hits": len(hits),
    "n_edge_records": n_records,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def open_ratio_bar() -> float:
    return float(os.environ.get("REPRO_BENCH_COLD_OPEN_RATIO", "3.0"))


def _write_artifact(payload: dict) -> None:
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target:
        return
    existing = {}
    if os.path.exists(target):
        with open(target) as handle:
            existing = json.load(handle)
    existing.update(payload)
    with open(target, "w") as handle:
        json.dump(existing, handle, indent=2)


def _cold_open(index_dir: str, path) -> dict:
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD, index_dir, json.dumps(list(path))],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout)


@pytest.fixture(scope="module")
def sealed(tmp_path_factory):
    """Quarter- and full-corpus indexes, sealed to disk, plus a query
    path known to traverse both."""
    dataset = generate_dataset(bench_scale(), seed=0)
    trajectories = dataset.trajectories
    quarter = TrajectorySet(
        list(trajectories)[: max(1, len(trajectories) // 4)]
    )
    probe = next(tr for tr in quarter if len(tr) >= 4)

    root = tmp_path_factory.mktemp("cold-start")
    sizes = {}
    for label, corpus in (("quarter", quarter), ("full", trajectories)):
        index = SNTIndex.build(
            corpus,
            dataset.network.alphabet_size,
            partition_days=PARTITION_DAYS,
        )
        target = index.save(root / label)
        sizes[label] = {
            "n_trajectories": len(corpus),
            "dir": str(target),
            "payload_bytes": sum(
                entry.stat().st_size
                for entry in (target / "payload").iterdir()
            ),
        }
    return sizes, probe.path[:4]


def test_cold_open_time_independent_of_corpus_size(sealed, capsys):
    sizes, probe_path = sealed
    results = {
        label: _cold_open(entry["dir"], probe_path)
        for label, entry in sizes.items()
    }
    for label, entry in sizes.items():
        r = results[label]
        print(
            f"\ncold start [{label}]: {entry['n_trajectories']} trips, "
            f"payload {entry['payload_bytes'] / 1e6:.1f} MB -> open "
            f"{r['open_s'] * 1e3:.1f} ms, first query "
            f"{r['query_s'] * 1e3:.1f} ms, peak RSS "
            f"{r['peak_rss_kb'] / 1024:.0f} MiB"
        )
    # The query must have actually touched the index.
    assert results["full"]["n_range_hits"] >= 1
    assert results["full"]["n_edge_records"] >= 1

    ratio = results["full"]["open_s"] / max(
        results["quarter"]["open_s"], 1e-9
    )
    growth = (
        sizes["full"]["payload_bytes"] / sizes["quarter"]["payload_bytes"]
    )
    print(
        f"open-time ratio full/quarter: {ratio:.2f}x "
        f"(payload grew {growth:.1f}x; bar {open_ratio_bar():.1f}x)"
    )
    assert ratio <= open_ratio_bar()

    _write_artifact(
        {
            "cold_start": {
                "scale": bench_scale(),
                "open_ratio_bar": open_ratio_bar(),
                "open_ratio": ratio,
                "payload_growth": growth,
                **{
                    label: {
                        "n_trajectories": sizes[label]["n_trajectories"],
                        "payload_bytes": sizes[label]["payload_bytes"],
                        **results[label],
                    }
                    for label in sizes
                },
            }
        }
    )
