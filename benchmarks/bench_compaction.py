"""Compaction benchmark: merged shards cut fan-out, answers unchanged.

Every ``append()``/``seal_staging()`` cycle adds one sealed shard, and a
periodic (time-of-day) predicate can never prune by shard time-slice —
so on a long-lived appendable index every such dispatch fans out across
*all* sealed shards.  Compaction merges runs of adjacent sealed shards
back together; this file pins the claims that make it worth running:

* On a deliberately fragmented index (>= 8 append/seal cycles on top of
  the base build), ``compact()`` strictly reduces the sealed-shard
  count and the measured per-query shard fan-out.
* Warm throughput does not regress: post-compaction QPS over the same
  periodic workload must be at least ``REPRO_BENCH_COMPACT_QPS``
  (default ``0.9``) times the fragmented layout's — in practice it
  improves, since k merged shards cost one binary search + one scan
  where the fragmented layout paid k of each.
* Answers are bit-identical before and after (spot-checked here; the
  exhaustive proof is the sharded-equivalence + compaction test suites).

Results are also written as JSON to ``REPRO_BENCH_JSON`` (when set) so
CI can archive the numbers as an artifact.

Environment knobs (see ``conftest.py`` for the shared ones):

* ``REPRO_BENCH_COMPACT_QPS``    — minimum post/pre warm-QPS ratio
  (default ``0.9``).
* ``REPRO_BENCH_COMPACT_CYCLES`` — append/seal cycles fragmenting the
  index (default ``8``).
* ``REPRO_BENCH_JSON``           — path for the JSON results artifact.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import (
    PeriodicInterval,
    ShardedSNTIndex,
    StrictPathQuery,
    TrajectorySet,
    generate_dataset,
    open_db,
)
from repro.config import SECONDS_PER_DAY

from .conftest import bench_scale, bench_queries


def qps_bar() -> float:
    return float(os.environ.get("REPRO_BENCH_COMPACT_QPS", "0.9"))


def fragment_cycles() -> int:
    return int(os.environ.get("REPRO_BENCH_COMPACT_CYCLES", "8"))


def _write_artifact(payload: dict) -> None:
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target:
        return
    existing = {}
    if os.path.exists(target):
        with open(target) as handle:
            existing = json.load(handle)
    existing.update(payload)
    with open(target, "w") as handle:
        json.dump(existing, handle, indent=2)


@pytest.fixture(scope="module")
def fragmented():
    """A sharded index fragmented by >= 8 append/seal cycles, plus the
    dataset and an unprunable (periodic) query workload."""
    cycles = fragment_cycles()
    dataset = generate_dataset(bench_scale(), seed=0)
    trajectories = list(dataset.trajectories)
    t_min = min(tr.start_time for tr in trajectories)
    t_max = max(tr.start_time for tr in trajectories)
    span_days = max(1, (t_max - t_min) // SECONDS_PER_DAY)
    # Pick the partition window so the corpus spans enough buckets for
    # the base build *and* the requested append/seal cycles.
    partition_days = max(1, int(span_days // (cycles + 2)))
    window = partition_days * SECONDS_PER_DAY

    buckets = sorted({(tr.start_time - t_min) // window
                      for tr in trajectories})
    assert len(buckets) >= cycles + 1, (
        f"corpus spans {len(buckets)} buckets; need {cycles + 1} "
        "(raise the scale or lower REPRO_BENCH_COMPACT_CYCLES)"
    )
    tail_buckets = buckets[-cycles:]
    cut = tail_buckets[0]
    base = [tr for tr in trajectories
            if (tr.start_time - t_min) // window < cut]
    tails = [
        TrajectorySet(
            [tr for tr in trajectories
             if (tr.start_time - t_min) // window == bucket]
        )
        for bucket in tail_buckets
    ]

    index = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=partition_days,
    )
    n_cycles = 0
    for tail in tails:
        if not len(tail):
            continue
        index.append(tail)
        index.seal_staging()
        n_cycles += 1
    assert n_cycles >= cycles

    eligible = [tr for tr in base if len(tr) >= 4]
    rng = np.random.default_rng(7)
    chosen = rng.choice(
        len(eligible),
        size=min(bench_queries(), len(eligible)),
        replace=False,
    )
    queries = [
        StrictPathQuery(
            path=eligible[int(i)].path[:4],
            # Periodic predicates cannot prune by shard time-slice:
            # every dispatch pays the full fan-out — the workload
            # compaction exists to fix.
            interval=PeriodicInterval.around(
                eligible[int(i)].start_time, 900
            ),
        )
        for i in chosen
    ]
    return dataset, index, queries, n_cycles


def _measure(index, dataset, queries, rounds=3):
    """Warm QPS and per-query shard fan-out over ``queries``."""
    from repro.api import TripRequest

    requests = [TripRequest.from_spq(query) for query in queries]
    # No cross-query cache: every round must pay the real scan path,
    # otherwise the second round measures the cache, not the layout.
    db = open_db(index, network=dataset.network, cache=None)
    results = db.query_many(requests)  # warm mmaps / lazy structures

    index.router.drain()
    started = time.perf_counter()
    for _ in range(rounds):
        db.query_many(requests)
    elapsed = time.perf_counter() - started
    stats = index.router.drain()

    fan_out = (
        stats.n_shard_scans / stats.n_dispatches
        if stats.n_dispatches
        else 0.0
    )
    qps = (rounds * len(requests)) / elapsed if elapsed else float("inf")
    return results, qps, fan_out


def test_compaction_cuts_fanout_and_keeps_qps(fragmented):
    dataset, index, queries, n_cycles = fragmented

    sealed_before = len(index._sealed)
    results_before, qps_before, fanout_before = _measure(
        index, dataset, queries
    )
    assert fanout_before > 1.0  # fragmentation really fans out

    report = index.compact()
    assert report.did_compact
    sealed_after = len(index._sealed)

    results_after, qps_after, fanout_after = _measure(
        index, dataset, queries
    )

    payload = {
        "compaction": {
            "scale": bench_scale(),
            "n_queries": len(queries),
            "append_seal_cycles": n_cycles,
            "sealed_shards_before": sealed_before,
            "sealed_shards_after": sealed_after,
            "fanout_before": round(fanout_before, 3),
            "fanout_after": round(fanout_after, 3),
            "warm_qps_before": round(qps_before, 1),
            "warm_qps_after": round(qps_after, 1),
            "qps_ratio": round(qps_after / qps_before, 3),
            "qps_bar": qps_bar(),
        }
    }
    _write_artifact(payload)
    print(f"\ncompaction: {json.dumps(payload['compaction'], indent=2)}")

    # Answers are bit-identical across the merge.
    for before, after in zip(results_before, results_after):
        assert before.histogram == after.histogram
        assert before.estimated_mean == after.estimated_mean

    # The tentpole claims: strictly fewer sealed shards, strictly lower
    # per-query fan-out, and no meaningful warm-throughput regression.
    assert sealed_after < sealed_before
    assert fanout_after < fanout_before
    assert qps_after >= qps_bar() * qps_before, (
        f"post-compaction QPS {qps_after:.1f} fell below "
        f"{qps_bar()} x pre-compaction {qps_before:.1f}"
    )
