"""Figure 5: sMAPE vs beta for all partitioning/splitting methods.

Paper expectations (Section 6.1):

* (a) temporal filters — pi_1 worst, then pi_2/pi_3; the coarse methods
  (pi_C, pi_Z, pi_ZC, pi_N) cluster at the bottom and peak at beta≈20-30;
  speed-limit-only sMAPE 34.3 %, all-trajectories segment level 13.8 %.
* (b) user filters — accuracy similar to temporal filters.
* (c) SPQ-only — cannot beat the periodic methods (no time-of-day signal).
* sigma_L is consistently worse than sigma_R.
"""

import numpy as np
import pytest

from repro.experiments import baseline_numbers, format_series, run_accuracy_config

from .conftest import (
    bench_betas,
    bench_one_query,
    bench_queries,
    series_by_method,
)


@pytest.mark.parametrize("query_type", ["temporal", "user", "spq"])
def test_figure5_series(sweep_results, workload, query_type, benchmark, capsys):
    betas = bench_betas()
    bench_one_query(benchmark, workload, query_type)
    series = series_by_method(sweep_results[query_type], "smape", betas)
    print("\n" + format_series(
        f"Figure 5 ({query_type}): sMAPE [%] vs beta",
        "method", betas, series,
    ))
    if query_type == "temporal":
        numbers = baseline_numbers(workload, max_queries=bench_queries())
        print(
            f"baselines: speed-limit {numbers['speed_limit_smape']:.1f}% "
            f"(paper 34.3%), segment-level "
            f"{numbers['segment_level_smape']:.1f}% (paper 13.8%)"
        )

        # Paper shape assertions: baselines are beatable, pi_1 is worst.
        best_path_based = min(min(v) for v in series.values())
        assert best_path_based < numbers["speed_limit_smape"]
        assert best_path_based < numbers["segment_level_smape"]
        pi1 = np.mean(series["pi_1/regular"])
        coarse = np.mean(
            [np.mean(series[f"{m}/regular"]) for m in ("pi_Z", "pi_ZC", "pi_N")]
        )
        assert pi1 >= coarse


def test_bench_temporal_pi_z(workload, benchmark):
    """Benchmark the headline configuration (pi_Z, sigma_R, beta=20)."""
    result = benchmark.pedantic(
        run_accuracy_config,
        args=(workload, "temporal", "pi_Z", "regular", 20),
        kwargs={"max_queries": min(20, bench_queries())},
        rounds=3,
        iterations=1,
    )
    assert 0 < result.smape < 200
