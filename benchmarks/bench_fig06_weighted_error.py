"""Figure 6: weighted error vs beta.

Paper expectations: pi_N has the lowest weighted error for temporal
filters; for user filters only pi_MDM consistently beats the rest;
SPQ-only favours the coarsest partitioning; speed-limit baseline 36.9 %,
segment-level 24.0 %; sigma_L worse than sigma_R everywhere; there is an
inverse relationship between weighted error and final sub-path length.
"""

import numpy as np
import pytest

from repro.experiments import format_series, run_accuracy_config

from .conftest import (
    bench_betas,
    bench_one_query,
    bench_queries,
    series_by_method,
)


@pytest.mark.parametrize("query_type", ["temporal", "user", "spq"])
def test_figure6_series(sweep_results, workload, query_type, benchmark, capsys):
    betas = bench_betas()
    bench_one_query(benchmark, workload, query_type, partitioner="pi_N")
    series = series_by_method(
        sweep_results[query_type], "weighted_error", betas
    )
    print("\n" + format_series(
        f"Figure 6 ({query_type}): weighted error [%] vs beta",
        "method", betas, series,
    ))
    if query_type == "temporal":
        # pi_N (coarsest) beats pi_1 (finest) on weighted error.
        assert np.mean(series["pi_N/regular"]) < np.mean(
            series["pi_1/regular"]
        )


def test_inverse_relation_with_subpath_length(sweep_results, workload, benchmark):
    """Coarser final partitioning correlates with lower weighted error."""
    bench_one_query(benchmark, workload, "temporal", partitioner="pi_C")
    betas = bench_betas()
    results = sweep_results["temporal"]
    pairs = [
        (r.mean_subpath_length, r.weighted_error)
        for r in results
        if r.splitter == "regular"
    ]
    lengths = np.array([p[0] for p in pairs])
    errors = np.array([p[1] for p in pairs])
    correlation = np.corrcoef(lengths, errors)[0, 1]
    assert correlation < 0, (
        f"expected inverse relationship, correlation={correlation:.2f}"
    )


def test_bench_weighted_error_config(workload, benchmark):
    result = benchmark.pedantic(
        run_accuracy_config,
        args=(workload, "temporal", "pi_N", "regular", 20),
        kwargs={"max_queries": min(20, bench_queries())},
        rounds=3,
        iterations=1,
    )
    assert result.weighted_error > 0
