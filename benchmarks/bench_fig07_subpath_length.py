"""Figure 7: average final sub-query path length vs beta.

Paper expectations: pi_N yields by far the longest sub-paths (it starts
from the whole trip), pi_Z the coarsest among the attribute-based methods,
pi_1 is fixed at 1; lengths shrink as beta grows (more splitting needed);
SPQ-only sub-paths are much longer than the periodic ones.
"""

import numpy as np
import pytest

from repro.experiments import format_series, run_accuracy_config

from .conftest import (
    bench_betas,
    bench_one_query,
    bench_queries,
    series_by_method,
)


@pytest.mark.parametrize("query_type", ["temporal", "user", "spq"])
def test_figure7_series(sweep_results, workload, query_type, benchmark, capsys):
    betas = bench_betas()
    bench_one_query(benchmark, workload, query_type, partitioner="pi_ZC")
    series = series_by_method(
        sweep_results[query_type], "mean_subpath_length", betas
    )
    print("\n" + format_series(
        f"Figure 7 ({query_type}): avg final sub-path length vs beta",
        "method", betas, series,
    ))
    if query_type == "temporal":
        # pi_1 partitions into single segments by construction.
        assert all(v == pytest.approx(1.0) for v in series["pi_1/regular"])
        # pi_N keeps the longest sub-paths.
        for other in ("pi_1", "pi_2", "pi_3", "pi_C", "pi_Z", "pi_ZC"):
            assert np.mean(series["pi_N/regular"]) >= np.mean(
                series[f"{other}/regular"]
            )


def test_spq_only_longer_than_temporal(sweep_results, workload, benchmark):
    """Figure 7c vs 7a: fixed-interval queries split far less."""
    bench_one_query(benchmark, workload, "spq", partitioner="pi_N")
    betas = bench_betas()
    temporal = series_by_method(
        sweep_results["temporal"], "mean_subpath_length", betas
    )
    spq = series_by_method(
        sweep_results["spq"], "mean_subpath_length", betas
    )
    assert np.mean(spq["pi_N/regular"]) > np.mean(temporal["pi_N/regular"])


def test_bench_subpath_metric(workload, benchmark):
    result = benchmark.pedantic(
        run_accuracy_config,
        args=(workload, "spq", "pi_N", "regular", 20),
        kwargs={"max_queries": min(20, bench_queries())},
        rounds=3,
        iterations=1,
    )
    assert result.mean_subpath_length >= 1.0
