"""Figure 8: average log-likelihood of the result histograms vs beta.

Paper expectations (h = 10 s, gamma = 0.99): the periodic methods with
coarse partitioning (pi_Z, pi_ZC) return the most accurate histograms;
SPQ-only histograms are the weakest at small beta (no time-of-day
conditioning); sigma_L performs worse than sigma_R.
"""

import numpy as np
import pytest

from repro.experiments import format_series, run_accuracy_config

from .conftest import (
    bench_betas,
    bench_one_query,
    bench_queries,
    series_by_method,
)


@pytest.mark.parametrize("query_type", ["temporal", "user", "spq"])
def test_figure8_series(sweep_results, workload, query_type, benchmark, capsys):
    betas = bench_betas()
    bench_one_query(benchmark, workload, query_type, partitioner="pi_Z")
    series = series_by_method(
        sweep_results[query_type], "log_likelihood", betas
    )
    print("\n" + format_series(
        f"Figure 8 ({query_type}): avg log-likelihood vs beta "
        "(higher is better)",
        "method", betas, series,
    ))
    for values in series.values():
        assert all(np.isfinite(v) for v in values)


def test_temporal_beats_spq_only_histograms(sweep_results, workload, benchmark):
    """Periodic conditioning must help the distribution estimate."""
    bench_one_query(benchmark, workload, "temporal", partitioner="pi_ZC")
    betas = bench_betas()
    temporal = series_by_method(
        sweep_results["temporal"], "log_likelihood", betas
    )
    spq = series_by_method(sweep_results["spq"], "log_likelihood", betas)
    for method in ("pi_Z/regular", "pi_ZC/regular"):
        assert np.mean(temporal[method]) > np.mean(spq[method]) - 0.5


def test_bench_loglikelihood_config(workload, benchmark):
    result = benchmark.pedantic(
        run_accuracy_config,
        args=(workload, "temporal", "pi_ZC", "regular", 20),
        kwargs={"max_queries": min(20, bench_queries())},
        rounds=3,
        iterations=1,
    )
    assert np.isfinite(result.log_likelihood)
