"""Figure 9: query processing time (ms per query).

Paper expectations: user-filter queries cost ~4-5x the temporal-filter
queries, except pi_MDM at ~2x (it applies the user predicate only on main
roads); SPQ-only queries are by far the cheapest (fewer temporal scans,
longer sub-paths); sigma_L is much slower than sigma_R (its binary search
issues extra count queries per split).

Absolute times are not comparable to the paper's C++ numbers (DESIGN.md
§3); all assertions are on ratios.
"""

import json
import os

import numpy as np
import pytest

from repro import (
    EngineConfig,
    PeriodicInterval,
    QueryEngine,
    StrictPathQuery,
    TripRequest,
)
from repro.experiments import format_series

from .conftest import bench_betas, bench_one_query, series_by_method


def _write_artifact(payload: dict) -> None:
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target:
        return
    existing = {}
    if os.path.exists(target):
        with open(target) as handle:
            existing = json.load(handle)
    existing.update(payload)
    with open(target, "w") as handle:
        json.dump(existing, handle, indent=2)


@pytest.mark.parametrize("query_type", ["temporal", "user", "spq"])
def test_figure9_series(sweep_results, workload, query_type, benchmark, capsys):
    betas = bench_betas()
    bench_one_query(benchmark, workload, query_type)
    series = series_by_method(
        sweep_results[query_type], "ms_per_query", betas
    )
    print("\n" + format_series(
        f"Figure 9 ({query_type}): ms per query vs beta",
        "method", betas, series, value_format="{:.2f}",
    ))


def test_user_filters_cost_more_than_temporal(sweep_results, workload, benchmark):
    bench_one_query(benchmark, workload, "user", partitioner="pi_C")
    betas = bench_betas()
    temporal = series_by_method(
        sweep_results["temporal"], "ms_per_query", betas
    )
    user = series_by_method(sweep_results["user"], "ms_per_query", betas)
    for method in ("pi_C/regular", "pi_Z/regular", "pi_ZC/regular"):
        assert np.mean(user[method]) > np.mean(temporal[method])


def test_mdm_cheaper_than_blanket_user_filters(sweep_results, workload, benchmark):
    """pi_MDM applies user predicates selectively: it must undercut the
    blanket user-filter methods (paper: ~2x vs ~4-5x the temporal cost)."""
    bench_one_query(benchmark, workload, "user", partitioner="pi_MDM")
    betas = bench_betas()
    user = series_by_method(sweep_results["user"], "ms_per_query", betas)
    mdm = np.mean(user["pi_MDM/regular"])
    blanket = np.mean(
        [np.mean(user[f"{m}/regular"]) for m in ("pi_C", "pi_Z", "pi_ZC")]
    )
    assert mdm < blanket


def test_spq_only_is_cheapest(sweep_results, workload, benchmark):
    bench_one_query(benchmark, workload, "spq", partitioner="pi_ZC")
    betas = bench_betas()
    temporal = series_by_method(
        sweep_results["temporal"], "ms_per_query", betas
    )
    spq = series_by_method(sweep_results["spq"], "ms_per_query", betas)
    for method in ("pi_Z/regular", "pi_ZC/regular"):
        assert np.mean(spq[method]) < np.mean(temporal[method])


def test_sigma_l_slower_than_sigma_r(sweep_results, workload, benchmark):
    bench_one_query(
        benchmark, workload, "temporal", splitter="longest_prefix"
    )
    betas = bench_betas()
    temporal = series_by_method(
        sweep_results["temporal"], "ms_per_query", betas
    )
    slow = np.mean(
        [np.mean(temporal[f"{m}/longest_prefix"]) for m in ("pi_N", "pi_Z")]
    )
    fast = np.mean(
        [np.mean(temporal[f"{m}/regular"]) for m in ("pi_N", "pi_Z")]
    )
    assert slow > fast


def test_figure9_backward_search_stage(workload, benchmark, capsys):
    """The getISARange stage at service-batch scale (Section 4.1.1).

    The spq series is bounded below by backward search — the only stage
    every configuration shares — and a batch service (PR-5's dedup
    executor) feeds it hundreds of sub-paths at once.  At that scale
    the levelwise frontier descent must beat the scalar per-path walk
    by >= 1.5x (ISSUE 6 acceptance; measured ~2.5x at 240 sub-paths
    and ~3.5x at 3000), while staying bit-identical.
    """
    import time

    index = workload.index
    paths = []
    for spec in workload.queries:
        path = list(spec.path)
        for length in (2, 3, 4, 6):
            if len(path) >= length:
                paths.append(path[:length])
    if len(paths) < 150:
        pytest.skip(
            "batch too small to exercise the levelwise descent "
            "(raise REPRO_BENCH_SCALE/REPRO_BENCH_QUERIES)"
        )
    reps = 3
    scalar = [index.isa_ranges(path) for path in paths]
    batched = index.isa_ranges_many(paths)
    assert batched == scalar  # bit-identity before timing anything
    t0 = time.perf_counter()
    for _ in range(reps):
        for path in paths:
            index.isa_ranges(path)
    scalar_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        index.isa_ranges_many(paths)
    batched_s = (time.perf_counter() - t0) / reps
    benchmark(lambda: index.isa_ranges_many(paths))
    speedup = scalar_s / batched_s
    print(
        f"\nbackward-search stage over {len(paths)} sub-paths: "
        f"scalar {scalar_s * 1e3:.1f} ms, batched {batched_s * 1e3:.1f} "
        f"ms, speedup {speedup:.2f}x"
    )
    assert speedup >= 1.5


def test_figure9_scan_probe_stage(workload, benchmark, capsys):
    """The temporal scan + probe join stage at service-batch scale.

    After PR 6 the backward search is vectorized, so Procedures 3-4 (the
    periodic temporal scan and the ``(d, seq)`` probe join) dominate the
    per-query cost.  A batch service feeds the index a deduplicated
    demand set whose sub-paths heavily repeat first/last edges, and the
    paper's periodic queries are the expensive scans — so the grouped
    ``get_travel_times_many`` path must beat the scalar per-query loop by
    >= ``REPRO_BENCH_SCANPROBE_SPEEDUP`` (default 1.5, the ISSUE 7
    acceptance bar) on a periodic-heavy repeated-edge batch, while every
    per-item result stays byte-identical.
    """
    import time

    speedup_bar = float(
        os.environ.get("REPRO_BENCH_SCANPROBE_SPEEDUP", "1.5")
    )
    index = workload.index
    network = workload.network

    # Periodic-heavy repeated-edge batch: every query trip contributes
    # its length-2/3/4 prefixes (the staged executor's sub-query shape),
    # so first and last edges repeat heavily across the demand set.
    items = []
    for spec in workload.queries:
        path = list(spec.path)
        for length in (2, 3, 4, 6):
            if len(path) >= length:
                query = StrictPathQuery(
                    path=tuple(path[:length]),
                    interval=PeriodicInterval.around(spec.start_time, 1800),
                    beta=50,
                )
                items.append((query, (spec.traj_id,), None))
    if len(items) < 100:
        pytest.skip(
            "batch too small to exercise the grouped scans "
            "(raise REPRO_BENCH_SCALE/REPRO_BENCH_QUERIES)"
        )

    def scalar_loop():
        return [
            index.get_travel_times(
                query,
                fallback_tt=network.estimate_tt,
                exclude_ids=exclude_ids,
                isa_ranges=isa_ranges,
            )
            for query, exclude_ids, isa_ranges in items
        ]

    def grouped():
        return index.get_travel_times_many(
            items, fallback_tt=network.estimate_tt
        )

    # Bit-identity before timing anything.
    want = scalar_loop()
    got = grouped()
    assert len(got) == len(want)
    for got_r, want_r in zip(got, want):
        assert got_r.values.tobytes() == want_r.values.tobytes()
        assert got_r.n_matched == want_r.n_matched
        assert got_r.from_fallback == want_r.from_fallback
        assert got_r.insufficient == want_r.insufficient

    # Best-of-N timing (the bench_batch_dedup convention): the min is
    # robust to scheduler noise where a 3-round mean is not.
    rounds = 5
    scalar_times, grouped_times = [], []
    for _ in range(rounds):
        t0 = time.perf_counter()
        scalar_loop()
        scalar_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        grouped()
        grouped_times.append(time.perf_counter() - t0)
    scalar_s = min(scalar_times)
    grouped_s = min(grouped_times)
    benchmark(grouped)
    speedup = scalar_s / grouped_s
    print(
        f"\nscan/probe stage over {len(items)} periodic sub-queries: "
        f"scalar loop {scalar_s * 1e3:.1f} ms, grouped "
        f"{grouped_s * 1e3:.1f} ms, speedup {speedup:.2f}x"
    )
    _write_artifact(
        {
            "scan_probe_stage": {
                "n_items": len(items),
                "scalar_ms": scalar_s * 1e3,
                "grouped_ms": grouped_s * 1e3,
                "speedup": speedup,
                "bar": speedup_bar,
            }
        }
    )
    assert speedup >= speedup_bar, (
        f"grouped scan/probe stage ({grouped_s * 1e3:.1f} ms) did not "
        f"beat the scalar loop ({scalar_s * 1e3:.1f} ms) by the "
        f"{speedup_bar:.2f}x bar"
    )


def test_scan_probe_histograms_stable_across_readers_and_estimators(
    workload,
    benchmark,
):
    """Grouped batches answer exactly like the sequential Procedure 6.

    The ISSUE 7 acceptance bar: with the grouped scan/probe stage in the
    executor, batch histograms must stay byte-identical to the per-trip
    sequential loop across cardinality-estimator modes and across the
    monolithic / sharded readers.
    """
    from repro import open_db
    from repro.sntindex.sharded import ShardedSNTIndex

    specs = sorted(
        workload.queries, key=lambda s: len(s.path), reverse=True
    )[:10]
    sharded = ShardedSNTIndex.build(
        workload.dataset.trajectories,
        workload.network.alphabet_size,
        n_shards=2,
        partition_days=7,
    )
    readers = {"monolithic": workload.index, "sharded": sharded}
    for reader_name, reader in readers.items():
        for mode in ("CSS-Fast", "CSS-Acc", "none"):
            requests = [
                TripRequest.from_spq(
                    spec.to_query("temporal", 900, workload.t_max, 20),
                    exclude_ids=(spec.traj_id,),
                    estimator=mode,
                )
                for spec in specs
            ]
            db = open_db(reader, network=workload.network, cache=None)
            sequential = [db.query(request) for request in requests]
            batch = db.query_many(requests)
            for got, want in zip(batch, sequential):
                assert got.histogram == want.histogram, (
                    f"{reader_name}/{mode}: batch histogram diverged "
                    "from the sequential Procedure 6 loop"
                )
                assert got.estimated_mean == want.estimated_mean

    db = open_db(sharded, network=workload.network, cache=None)
    requests = [
        TripRequest.from_spq(
            spec.to_query("temporal", 900, workload.t_max, 20),
            exclude_ids=(spec.traj_id,),
        )
        for spec in specs
    ]
    benchmark(lambda: db.query_many(requests))


def test_bench_single_trip_query(workload, benchmark):
    """Raw per-query latency of the headline configuration."""
    engine = QueryEngine(
        workload.index, workload.network, EngineConfig(partitioner="pi_Z")
    )
    spec = max(workload.queries, key=lambda s: len(s.path))
    query = StrictPathQuery(
        path=spec.path,
        interval=PeriodicInterval.around(spec.start_time, 900),
        beta=20,
    )

    def run():
        return engine.query(
            TripRequest.from_spq(query, exclude_ids=(spec.traj_id,))
        )

    result = benchmark(run)
    assert result.histogram.total > 0
