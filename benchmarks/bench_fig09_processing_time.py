"""Figure 9: query processing time (ms per query).

Paper expectations: user-filter queries cost ~4-5x the temporal-filter
queries, except pi_MDM at ~2x (it applies the user predicate only on main
roads); SPQ-only queries are by far the cheapest (fewer temporal scans,
longer sub-paths); sigma_L is much slower than sigma_R (its binary search
issues extra count queries per split).

Absolute times are not comparable to the paper's C++ numbers (DESIGN.md
§3); all assertions are on ratios.
"""

import numpy as np
import pytest

from repro import (
    EngineConfig,
    PeriodicInterval,
    QueryEngine,
    StrictPathQuery,
    TripRequest,
)
from repro.experiments import format_series

from .conftest import bench_betas, bench_one_query, series_by_method


@pytest.mark.parametrize("query_type", ["temporal", "user", "spq"])
def test_figure9_series(sweep_results, workload, query_type, benchmark, capsys):
    betas = bench_betas()
    bench_one_query(benchmark, workload, query_type)
    series = series_by_method(
        sweep_results[query_type], "ms_per_query", betas
    )
    print("\n" + format_series(
        f"Figure 9 ({query_type}): ms per query vs beta",
        "method", betas, series, value_format="{:.2f}",
    ))


def test_user_filters_cost_more_than_temporal(sweep_results, workload, benchmark):
    bench_one_query(benchmark, workload, "user", partitioner="pi_C")
    betas = bench_betas()
    temporal = series_by_method(
        sweep_results["temporal"], "ms_per_query", betas
    )
    user = series_by_method(sweep_results["user"], "ms_per_query", betas)
    for method in ("pi_C/regular", "pi_Z/regular", "pi_ZC/regular"):
        assert np.mean(user[method]) > np.mean(temporal[method])


def test_mdm_cheaper_than_blanket_user_filters(sweep_results, workload, benchmark):
    """pi_MDM applies user predicates selectively: it must undercut the
    blanket user-filter methods (paper: ~2x vs ~4-5x the temporal cost)."""
    bench_one_query(benchmark, workload, "user", partitioner="pi_MDM")
    betas = bench_betas()
    user = series_by_method(sweep_results["user"], "ms_per_query", betas)
    mdm = np.mean(user["pi_MDM/regular"])
    blanket = np.mean(
        [np.mean(user[f"{m}/regular"]) for m in ("pi_C", "pi_Z", "pi_ZC")]
    )
    assert mdm < blanket


def test_spq_only_is_cheapest(sweep_results, workload, benchmark):
    bench_one_query(benchmark, workload, "spq", partitioner="pi_ZC")
    betas = bench_betas()
    temporal = series_by_method(
        sweep_results["temporal"], "ms_per_query", betas
    )
    spq = series_by_method(sweep_results["spq"], "ms_per_query", betas)
    for method in ("pi_Z/regular", "pi_ZC/regular"):
        assert np.mean(spq[method]) < np.mean(temporal[method])


def test_sigma_l_slower_than_sigma_r(sweep_results, workload, benchmark):
    bench_one_query(
        benchmark, workload, "temporal", splitter="longest_prefix"
    )
    betas = bench_betas()
    temporal = series_by_method(
        sweep_results["temporal"], "ms_per_query", betas
    )
    slow = np.mean(
        [np.mean(temporal[f"{m}/longest_prefix"]) for m in ("pi_N", "pi_Z")]
    )
    fast = np.mean(
        [np.mean(temporal[f"{m}/regular"]) for m in ("pi_N", "pi_Z")]
    )
    assert slow > fast


def test_figure9_backward_search_stage(workload, benchmark, capsys):
    """The getISARange stage at service-batch scale (Section 4.1.1).

    The spq series is bounded below by backward search — the only stage
    every configuration shares — and a batch service (PR-5's dedup
    executor) feeds it hundreds of sub-paths at once.  At that scale
    the levelwise frontier descent must beat the scalar per-path walk
    by >= 1.5x (ISSUE 6 acceptance; measured ~2.5x at 240 sub-paths
    and ~3.5x at 3000), while staying bit-identical.
    """
    import time

    index = workload.index
    paths = []
    for spec in workload.queries:
        path = list(spec.path)
        for length in (2, 3, 4, 6):
            if len(path) >= length:
                paths.append(path[:length])
    if len(paths) < 150:
        pytest.skip(
            "batch too small to exercise the levelwise descent "
            "(raise REPRO_BENCH_SCALE/REPRO_BENCH_QUERIES)"
        )
    reps = 3
    scalar = [index.isa_ranges(path) for path in paths]
    batched = index.isa_ranges_many(paths)
    assert batched == scalar  # bit-identity before timing anything
    t0 = time.perf_counter()
    for _ in range(reps):
        for path in paths:
            index.isa_ranges(path)
    scalar_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        index.isa_ranges_many(paths)
    batched_s = (time.perf_counter() - t0) / reps
    benchmark(lambda: index.isa_ranges_many(paths))
    speedup = scalar_s / batched_s
    print(
        f"\nbackward-search stage over {len(paths)} sub-paths: "
        f"scalar {scalar_s * 1e3:.1f} ms, batched {batched_s * 1e3:.1f} "
        f"ms, speedup {speedup:.2f}x"
    )
    assert speedup >= 1.5


def test_bench_single_trip_query(workload, benchmark):
    """Raw per-query latency of the headline configuration."""
    engine = QueryEngine(
        workload.index, workload.network, EngineConfig(partitioner="pi_Z")
    )
    spec = max(workload.queries, key=lambda s: len(s.path))
    query = StrictPathQuery(
        path=spec.path,
        interval=PeriodicInterval.around(spec.start_time, 900),
        beta=20,
    )

    def run():
        return engine.query(
            TripRequest.from_spq(query, exclude_ids=(spec.traj_id,))
        )

    result = benchmark(run)
    assert result.histogram.total > 0
