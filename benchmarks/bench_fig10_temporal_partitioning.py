"""Figure 10: temporal partitioning — memory and setup time.

Paper expectations:

* (a) the wavelet-tree (WT) and segment-counter (C) components grow with
  the number of partitions (C linearly; WT via per-partition overhead and
  degraded compression); the forest and the user container are unaffected;
  the B+-tree forest needs more memory than the CSS forest.
* (b) the time-of-day histogram store grows steeply with finer buckets
  and with partition count — at fine grain it dwarfs the index itself.
* (c) setup time is flat across partition grains and tree types.

Sizes are measured from the real structures; magnitudes differ from the
paper (our alphabet is ~3 orders of magnitude smaller — DESIGN.md §3)
while the component shapes are preserved.
"""

import pytest

from repro import SNTIndex
from repro.experiments import format_table, mib, partitioning_report

PARTITION_GRAINS = (7, 30, 90, 365, None)


@pytest.fixture(scope="module")
def report(workload):
    return partitioning_report(
        workload,
        partition_days_list=PARTITION_GRAINS,
        tod_bucket_minutes=(1, 5, 10),
        include_btree=True,
    )


def _label(row):
    days = row["partition_days"]
    if row["kind"] == "btree":
        return "BT"
    return "FULL" if days is None else str(days)


def test_figure10a_component_memory(report, workload, benchmark, capsys):
    benchmark(workload.index.component_sizes)
    rows = [
        [
            _label(row),
            row["n_partitions"],
            f"{mib(row['component_bytes']['C']):.3f}",
            f"{mib(row['component_bytes']['WT']):.3f}",
            f"{mib(row['component_bytes']['user']):.3f}",
            f"{mib(row['component_bytes']['Forest']):.3f}",
        ]
        for row in report
    ]
    print("\n" + format_table(
        ["partition", "W", "C MiB", "WT MiB", "user MiB", "Forest MiB"],
        rows,
        title="Figure 10a: index memory by component",
    ))

    by_label = {_label(row): row["component_bytes"] for row in report}
    # C grows linearly with the number of partitions.
    assert by_label["7"]["C"] > by_label["30"]["C"] > by_label["FULL"]["C"]
    # WT grows with partition count.
    assert by_label["7"]["WT"] > by_label["FULL"]["WT"]
    # user container unaffected by partitioning.
    assert by_label["7"]["user"] == by_label["FULL"]["user"]
    # B+-tree forest larger than the CSS forest.
    assert by_label["BT"]["Forest"] > by_label["FULL"]["Forest"]

    # Paper-scale projection: the same layout model at ITSP parameters
    # should land in the magnitudes of the paper's Figure 10a.
    from repro.experiments import project_to_paper_scale

    projection_rows = []
    for weeks, w in (("7", 138), ("30", 33), ("90", 11), ("365", 3), ("FULL", 1)):
        projected = project_to_paper_scale(n_partitions=w)
        projection_rows.append(
            [weeks, w]
            + [f"{mib(projected[c]):,.0f}" for c in ("C", "WT", "user", "Forest")]
        )
    print("\n" + format_table(
        ["partition", "W", "C MiB", "WT MiB", "user MiB", "Forest MiB"],
        projection_rows,
        title="Figure 10a projected to paper scale "
        "(paper: C <6->~600 MiB, WT ~280 MiB -> >4 GiB)",
    ))
    projected_full = project_to_paper_scale(n_partitions=1)
    projected_weekly = project_to_paper_scale(n_partitions=138)
    # Paper magnitudes: C grows from single-digit MiB to hundreds.
    assert 1 <= mib(projected_full["C"]) <= 30
    assert 500 <= mib(projected_weekly["C"]) <= 3000
    # WT grows by an order of magnitude FULL -> weekly.
    assert projected_weekly["WT"] > 5 * projected_full["WT"]


def test_figure10b_tod_histogram_memory(report, workload, benchmark, capsys):
    benchmark.pedantic(
        workload.index.build_tod_store, args=(600,), rounds=2, iterations=1
    )
    rows = [
        [_label(row)]
        + [f"{mib(row['tod_store_bytes'][m]):.3f}" for m in (1, 5, 10)]
        for row in report
        if row["kind"] == "css"
    ]
    print("\n" + format_table(
        ["partition", "h=1min MiB", "h=5min MiB", "h=10min MiB"],
        rows,
        title="Figure 10b: time-of-day histogram store memory",
    ))
    by_label = {
        _label(row): row["tod_store_bytes"]
        for row in report
        if row["kind"] == "css"
    }
    # Finer buckets cost more; more partitions cost more.
    for label in by_label:
        assert by_label[label][1] > by_label[label][5] > by_label[label][10]
    assert by_label["7"][10] > by_label["FULL"][10]


def test_figure10c_setup_time(report, workload, benchmark, capsys):
    # Setup-time micro-benchmark: one partition build over a slice of the
    # trajectory set (the full builds are measured in `report`).
    from repro.sntindex.partition import build_partition

    sample = list(workload.dataset.trajectories)[:500]
    benchmark.pedantic(
        build_partition,
        args=(0, sample, workload.network.alphabet_size, 0, 1),
        rounds=2,
        iterations=1,
    )
    rows = [
        [_label(row), f"{row['setup_seconds']:.2f}"] for row in report
    ]
    print("\n" + format_table(
        ["partition", "setup s"],
        rows,
        title="Figure 10c: index setup time (paper: flat, 425-475 s "
        "at full scale)",
    ))
    times = [row["setup_seconds"] for row in report if row["kind"] == "css"]
    # Flat-ish: no partitioning choice may cost more than 3x another.
    assert max(times) < 3.0 * min(times) + 0.5


def test_bench_index_build(workload, benchmark):
    """Setup-time benchmark for the FULL CSS configuration."""
    trajectories = workload.dataset.trajectories
    alphabet = workload.network.alphabet_size

    index = benchmark.pedantic(
        SNTIndex.build,
        args=(trajectories, alphabet),
        rounds=2,
        iterations=1,
    )
    assert index.build_stats.n_trajectories == len(trajectories)
