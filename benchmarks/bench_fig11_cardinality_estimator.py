"""Figure 11: the SPQ cardinality estimator.

Paper expectations:

* (a) q-error: the ISA estimate is off by ~an order of magnitude; the
  histogram (Acc) modes beat the Fast modes; CSS modes are slightly
  better than their B+-tree counterparts.
* (b) runtime: with coarse partitions the estimator cuts processing time
  by ~50 %; the benefit shrinks at weekly grain; CSS >= BT.
* (c) accuracy: the effect of estimator-triggered early splits on sMAPE
  is minuscule (and can even help slightly).
"""

import os

import numpy as np
import pytest

from repro import (
    CardinalityEstimator,
    EngineConfig,
    PeriodicInterval,
    QueryEngine,
    SNTIndex,
    StrictPathQuery,
    TripRequest,
)
from repro.experiments import (
    estimator_report,
    format_table,
    run_accuracy_config,
)
from repro.experiments.workload import Workload

from .conftest import bench_queries

MODES = ("ISA", "BT-Fast", "CSS-Fast", "BT-Acc", "CSS-Acc")


def fig11_partition_grains():
    raw = os.environ.get("REPRO_BENCH_FIG11_GRAINS", "7,90,FULL")
    return tuple(
        None if token == "FULL" else int(token) for token in raw.split(",")
    )


@pytest.fixture(scope="module")
def qerror_report(workload):
    return estimator_report(
        workload, modes=MODES, max_queries=min(30, bench_queries())
    )


def test_figure11a_qerror(qerror_report, workload, benchmark, capsys):
    from repro.sntindex import count_matches

    spec = workload.queries[0]
    benchmark(
        lambda: count_matches(
            workload.index,
            spec.path[:3],
            PeriodicInterval.around(spec.start_time, 900),
        )
    )
    rows = [
        [mode, f"{qerror_report[mode]['mean_q_error_log10']:.3f}"]
        for mode in MODES
    ]
    print("\n" + format_table(
        ["mode", "q-error (10^y)"],
        rows,
        title="Figure 11a: estimator q-error "
        "(paper: ISA ~1 order of magnitude; Acc < Fast; CSS <= BT)",
    ))
    q = {m: qerror_report[m]["mean_q_error_log10"] for m in MODES}
    assert q["ISA"] > q["CSS-Fast"] > q["CSS-Acc"]
    assert q["ISA"] > q["BT-Fast"] > q["BT-Acc"]
    assert q["CSS-Fast"] <= q["BT-Fast"] + 1e-9
    assert q["CSS-Acc"] <= q["BT-Acc"] + 1e-9


def test_figure11b_runtime(workload, benchmark, capsys):
    """ms/query across partition grains, with and without the estimator."""


    engine = QueryEngine(
        workload.index,
        workload.network,
        EngineConfig(partitioner="pi_Z"),
        estimator=CardinalityEstimator(workload.index, "CSS-Fast"),
    )
    spec = max(workload.queries, key=lambda s: len(s.path))
    query = spec.to_query("temporal", 900, workload.t_max, 20)

    request = TripRequest.from_spq(query, exclude_ids=(spec.traj_id,))
    benchmark(lambda: engine.query(request))

    n_queries = min(25, bench_queries())
    grains = fig11_partition_grains()
    rows = []
    savings_full = None
    for days in grains:
        for kind, modes in (
            ("css", (None, "CSS-Fast", "CSS-Acc")),
            ("btree", (None, "BT-Fast", "BT-Acc")),
        ):
            index = SNTIndex.build(
                workload.dataset.trajectories,
                workload.network.alphabet_size,
                partition_days=days,
                kind=kind,
            )
            probe = Workload(
                dataset=workload.dataset,
                index=index,
                queries=workload.queries,
                scale=workload.scale,
            )
            times = {}
            for mode in modes:
                result = run_accuracy_config(
                    probe,
                    "temporal",
                    "pi_Z",
                    "regular",
                    beta=20,
                    estimator_mode=mode,
                    max_queries=n_queries,
                )
                times[mode or "none"] = result.ms_per_query
            label = "FULL" if days is None else f"{days}d"
            rows.append(
                [label, kind]
                + [f"{times[k]:.2f}" for k in times]
            )
            if days is None and kind == "css":
                savings_full = times

    print("\n" + format_table(
        ["partition", "tree", "no estimator", "Fast", "Acc"],
        rows,
        title="Figure 11b: ms/query vs partition size "
        "(paper: estimator ~-50% at coarse grain)",
    ))
    # The estimator must not meaningfully slow down the FULL/CSS
    # configuration.  (The paper's 50% saving assumes temporal scans are
    # expensive relative to an estimate; our numpy scans are much cheaper
    # than the C++ tree walks, so the margin is smaller here.)
    assert savings_full is not None
    assert savings_full["CSS-Fast"] <= savings_full["none"] * 1.25

    # The mechanism itself must hold: the estimator prunes index scans.


    plain = QueryEngine(
        workload.index, workload.network, EngineConfig(partitioner="pi_Z")
    )
    pruned = QueryEngine(
        workload.index,
        workload.network,
        EngineConfig(partitioner="pi_Z"),
        estimator=CardinalityEstimator(workload.index, "CSS-Acc"),
    )
    scans_plain = scans_pruned = skips = 0
    for spec in workload.queries[:n_queries]:
        query = spec.to_query("temporal", 900, workload.t_max, 20)
        request = TripRequest.from_spq(query, exclude_ids=(spec.traj_id,))
        r_plain = plain.query(request)
        r_pruned = pruned.query(request)
        scans_plain += r_plain.n_index_scans
        scans_pruned += r_pruned.n_index_scans
        skips += r_pruned.n_estimator_skips
    print(
        f"index scans without estimator: {scans_plain}, with: "
        f"{scans_pruned} ({skips} sub-queries pruned before any scan)"
    )
    assert skips > 0
    assert scans_pruned < scans_plain


def test_figure11c_accuracy_effect(workload, benchmark, capsys):
    """sMAPE with each estimator mode: effects are minuscule."""

    estimator = CardinalityEstimator(workload.index, "ISA")
    spec = workload.queries[0]
    probe_query = StrictPathQuery(
        path=spec.path[:4],
        interval=PeriodicInterval.around(spec.start_time, 900),
        beta=20,
    )
    benchmark(lambda: estimator.estimate(probe_query))

    n_queries = min(30, bench_queries())
    base = run_accuracy_config(
        workload, "temporal", "pi_Z", "regular", beta=20,
        max_queries=n_queries,
    )
    rows = [["none", f"{base.smape:.2f}"]]
    smapes = {"none": base.smape}
    for mode in MODES:
        result = run_accuracy_config(
            workload, "temporal", "pi_Z", "regular", beta=20,
            estimator_mode=mode, max_queries=n_queries,
        )
        rows.append([mode, f"{result.smape:.2f}"])
        smapes[mode] = result.smape
    print("\n" + format_table(
        ["estimator", "sMAPE %"],
        rows,
        title="Figure 11c: accuracy effect of the estimator "
        "(paper: minuscule)",
    ))
    # All modes within a few points of the no-estimator baseline.
    for mode, value in smapes.items():
        assert abs(value - smapes["none"]) < 5.0, (mode, value)


def test_bench_estimate_call(workload, benchmark):
    """Latency of one cardinality estimate (CSS-Acc)."""

    estimator = CardinalityEstimator(workload.index, "CSS-Acc")
    spec = workload.queries[0]
    query = StrictPathQuery(
        path=spec.path[:4],
        interval=PeriodicInterval.around(spec.start_time, 900),
        beta=20,
    )
    value = benchmark(lambda: estimator.estimate(query))
    assert value >= 0.0
