"""Closed-loop serving benchmark (ISSUE 8 acceptance bar).

The claim: the serving tier's collection window turns *concurrent*
clients into shared dedup rounds, so N closed-loop clients sustain
materially higher aggregate QPS than one sequential client — the
PR-5 batch-dedup win, measured end to end through real sockets.

Method: a :class:`~repro.server.BackgroundServer` fronts a session with
dedup on and the sub-query cache off (so every answer above the
sequential baseline is round-sharing and round overlap, not a warm
cache).  Phase one: a single client issues the repeated-path request
list sequentially.  Phase two: ``CLIENTS`` threads, each with its own
connection, issue the same list concurrently (closed loop — a client
fires its next request the moment the previous answer lands).  Both
phases are byte-checked against in-process answers.

Environment knobs (see ``conftest.py`` for the shared ones):

* ``REPRO_BENCH_SERVE_CLIENTS`` — concurrent clients (default ``6``).
* ``REPRO_BENCH_SERVE_SPEEDUP`` — minimum concurrent-over-sequential
  aggregate QPS ratio (default ``1.3``, the acceptance bar).
* ``REPRO_BENCH_JSON`` — path for the JSON results artifact (QPS for
  both phases, p50/p99 service latency, dedup hit rate).
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro import EngineConfig, TripRequest, open_db
from repro.server import BackgroundServer, ServerConfig, ServingClient

from .conftest import bench_queries

REPEAT = 3


def _write_artifact(payload: dict) -> None:
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target:
        return
    existing = {}
    if os.path.exists(target):
        with open(target) as handle:
            existing = json.load(handle)
    existing.update(payload)
    with open(target, "w") as handle:
        json.dump(existing, handle, indent=2)


def test_concurrent_clients_outpace_sequential_serving(workload):
    n_clients = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "6"))
    speedup_bar = float(
        os.environ.get("REPRO_BENCH_SERVE_SPEEDUP", "1.3")
    )

    n_distinct = min(8, bench_queries())
    specs = sorted(
        workload.queries, key=lambda s: len(s.path), reverse=True
    )[:n_distinct]
    requests = [
        TripRequest.from_spq(
            spec.to_query("temporal", 900, workload.t_max, 20),
            exclude_ids=(spec.traj_id,),
        )
        for spec in specs
    ] * REPEAT

    db = open_db(
        workload.index,
        network=workload.network,
        config=EngineConfig(dedup_subqueries=True, cache_enabled=False),
    )
    expected = {
        id(request): result.histogram
        for request, result in zip(requests, db.query_many(requests))
    }

    config = ServerConfig(
        port=0, window_s=0.01, max_batch=64,
        max_inflight=max(256, n_clients * len(requests)),
        executor_workers=2,
    )
    with BackgroundServer(db, config) as background:

        def run_client(_worker: int) -> int:
            answered = 0
            with ServingClient(port=background.port) as client:
                for request in requests:
                    result = client.query(request)
                    assert result.histogram == expected[id(request)], (
                        "served answer diverged from the in-process batch"
                    )
                    answered += 1
            return answered

        # Phase 1: one sequential client.
        started = time.perf_counter()
        sequential_answered = run_client(0)
        sequential_elapsed = time.perf_counter() - started
        sequential_qps = sequential_answered / sequential_elapsed

        # Phase 2: N closed-loop clients over their own connections.
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            answered = sum(pool.map(run_client, range(n_clients)))
        concurrent_elapsed = time.perf_counter() - started
        concurrent_qps = answered / concurrent_elapsed

        with ServingClient(port=background.port) as client:
            stats = client.stats()

    rounds = stats["rounds"]
    latency = stats["latency"]
    speedup = concurrent_qps / sequential_qps
    print(
        f"\nserving, closed loop ({n_distinct} distinct trips x{REPEAT} "
        f"per client):\n"
        f"  sequential: {sequential_answered} trips, "
        f"{sequential_qps:.0f} q/s\n"
        f"  concurrent: {n_clients} clients, {answered} trips, "
        f"{concurrent_qps:.0f} q/s ({speedup:.2f}x)\n"
        f"  rounds: {rounds['count']} "
        f"(dedup hit rate {rounds['dedup_hit_rate']:.0%}), "
        f"p50 {latency['p50_ms']:.1f} ms, p99 {latency['p99_ms']:.1f} ms"
    )
    _write_artifact(
        {
            "serving": {
                "n_clients": n_clients,
                "n_distinct": n_distinct,
                "repeat": REPEAT,
                "sequential_qps": sequential_qps,
                "concurrent_qps": concurrent_qps,
                "speedup": speedup,
                "rounds": rounds["count"],
                "dedup_hit_rate": rounds["dedup_hit_rate"],
                "scans_saved": rounds["scans_saved"],
                "p50_ms": latency["p50_ms"],
                "p99_ms": latency["p99_ms"],
                "rejected": stats["requests"]["rejected"],
            }
        }
    )

    assert stats["requests"]["rejected"] == 0, (
        "admission control rejected trips under an in-bound load"
    )
    assert rounds["scans_saved"] > 0, (
        "concurrent clients never shared a dedup round"
    )
    assert speedup >= speedup_bar, (
        f"concurrent clients reached {concurrent_qps:.0f} q/s, only "
        f"{speedup:.2f}x the sequential client's {sequential_qps:.0f} "
        f"q/s; bar is {speedup_bar:.2f}x"
    )
