"""Sharded build + serving benchmark (ISSUE 2 acceptance bar).

Two claims are held here:

* **Parallel build** — building K time-sliced shards in worker processes
  beats the monolithic build on real cores: suffix-array construction
  dominates build time and the shards are independent, so 4 workers must
  reach >= ``REPRO_BENCH_SHARD_SPEEDUP`` (default 1.5x) over the
  monolithic build of the same corpus.  The assertion needs real
  parallelism, so it is skipped on single-core machines (the comparison
  is still printed); CI runs it on multi-core runners to catch
  parallel-build regressions.
* **Serving parity** — a sharded index behind the warm shared cache must
  answer a repeated-path batch within 10% of the single-index service
  (cache hits never touch the index, and cold scans route to fewer,
  smaller shards).

Results are also written as JSON to ``REPRO_BENCH_JSON`` (when set) so
CI can archive the numbers as an artifact.

Environment knobs (see ``conftest.py`` for the shared ones):

* ``REPRO_BENCH_SHARD_SPEEDUP`` — minimum parallel-build speedup
  (default ``1.5``).
* ``REPRO_BENCH_SHARDS`` / ``REPRO_BENCH_BUILD_WORKERS`` — shard and
  worker counts (default ``4`` / ``4``).
* ``REPRO_BENCH_JSON`` — path for the JSON results artifact.
"""

import json
import os
import time

import pytest

from repro import (
    PeriodicInterval,
    ShardedSNTIndex,
    SNTIndex,
    StrictPathQuery,
    SubQueryCache,
    generate_dataset,
)

from .conftest import bench_queries, bench_scale

PARTITION_DAYS = 7


def shard_count() -> int:
    return int(os.environ.get("REPRO_BENCH_SHARDS", "4"))


def build_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_BUILD_WORKERS", "4"))


def speedup_bar() -> float:
    return float(os.environ.get("REPRO_BENCH_SHARD_SPEEDUP", "1.5"))


def _write_artifact(payload: dict) -> None:
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target:
        return
    existing = {}
    if os.path.exists(target):
        with open(target) as handle:
            existing = json.load(handle)
    existing.update(payload)
    with open(target, "w") as handle:
        json.dump(existing, handle, indent=2)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(bench_scale(), seed=0)


def test_parallel_shard_build_speedup(dataset, capsys):
    started = time.perf_counter()
    monolithic = SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=PARTITION_DAYS,
    )
    monolithic_s = time.perf_counter() - started

    started = time.perf_counter()
    sharded = ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=shard_count(),
        partition_days=PARTITION_DAYS,
        build_workers=build_workers(),
    )
    sharded_s = time.perf_counter() - started

    assert sharded.n_partitions == monolithic.n_partitions
    speedup = monolithic_s / sharded_s if sharded_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    print(
        f"\nBuild over {len(dataset.trajectories)} trajectories "
        f"(partition_days={PARTITION_DAYS}): monolithic {monolithic_s:.2f}s, "
        f"{sharded.n_shards} shards x {build_workers()} workers "
        f"{sharded_s:.2f}s -> {speedup:.2f}x on {cores} core(s)"
    )
    _write_artifact(
        {
            "sharded_build": {
                "scale": bench_scale(),
                "n_trajectories": len(dataset.trajectories),
                "monolithic_s": monolithic_s,
                "sharded_s": sharded_s,
                "n_shards": sharded.n_shards,
                "build_workers": build_workers(),
                "cpu_count": cores,
                "speedup": speedup,
            }
        }
    )
    if cores < 2:
        pytest.skip(
            "parallel-build speedup needs >= 2 cores; comparison printed "
            "and archived only"
        )
    assert speedup >= speedup_bar(), (
        f"parallel shard build reached only {speedup:.2f}x over the "
        f"monolithic build (bar: {speedup_bar():.2f}x)"
    )


def test_sharded_warm_cache_qps_parity(dataset, capsys):
    """Warm-cache QPS over a sharded index within 10% of single-index."""
    n_queries = min(20, bench_queries())
    repeat = 3
    trips = [tr for tr in dataset.trajectories if len(tr) >= 8]
    specs = trips[:n_queries]
    queries = [
        StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=20,
        )
        for trip in specs
    ] * repeat
    exclude_ids = [(trip.traj_id,) for trip in specs] * repeat

    from repro import TravelTimeDB, TripRequest

    requests = [
        TripRequest.from_spq(query, exclude_ids=excluded)
        for query, excluded in zip(queries, exclude_ids)
    ]

    def warm_qps(index) -> float:
        db = TravelTimeDB(index, dataset.network, cache=SubQueryCache())
        db.query_many(requests)  # warm
        started = time.perf_counter()
        answered = db.query_many(requests)
        elapsed = time.perf_counter() - started
        assert len(answered) == len(queries)
        return len(queries) / elapsed if elapsed > 0 else float("inf")

    monolithic = SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=PARTITION_DAYS,
    )
    sharded = ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=shard_count(),
        partition_days=PARTITION_DAYS,
    )
    # Interleave the passes so load drift on a shared machine cannot
    # systematically favour whichever index is measured last.
    mono_samples = []
    shard_samples = []
    for _ in range(2):
        mono_samples.append(warm_qps(monolithic))
        shard_samples.append(warm_qps(sharded))
    mono_qps = max(mono_samples)
    shard_qps = max(shard_samples)

    print(
        f"\nWarm-cache batch QPS ({len(queries)} queries, x{repeat} "
        f"repeats): monolithic {mono_qps:.0f} q/s, sharded "
        f"{shard_qps:.0f} q/s ({shard_qps / mono_qps:.2f}x)"
    )
    _write_artifact(
        {
            "sharded_warm_qps": {
                "monolithic_qps": mono_qps,
                "sharded_qps": shard_qps,
                "ratio": shard_qps / mono_qps,
            }
        }
    )
    assert shard_qps >= 0.9 * mono_qps, (
        f"sharded warm-cache QPS {shard_qps:.0f} fell more than 10% below "
        f"the single-index {mono_qps:.0f}"
    )
