"""Table 1: estimateTT on the example network of Figure 1.

Regenerates the paper's Table 1 exactly (speed-limit travel-time estimates
per segment) and benchmarks the ``estimateTT`` fallback path.
"""

import pytest

from repro import Edge, RoadCategory, RoadNetwork, ZoneType

ROWS = [
    # edge, source, target, category, zone, speed, length, paper estimateTT
    ("A", 1, 1, 2, RoadCategory.MOTORWAY, ZoneType.RURAL, 110, 900, 29.5),
    ("B", 2, 2, 3, RoadCategory.PRIMARY, ZoneType.CITY, 50, 120, 8.6),
    ("C", 3, 2, 4, RoadCategory.SECONDARY, ZoneType.CITY, 30, 40, 4.8),
    ("D", 4, 4, 3, RoadCategory.SECONDARY, ZoneType.CITY, 30, 80, 9.6),
    ("E", 5, 3, 5, RoadCategory.PRIMARY, ZoneType.CITY, 50, 100, 7.2),
    ("F", 6, 3, 6, RoadCategory.PRIMARY, ZoneType.RURAL, 80, 800, 36.0),
]


def build_network() -> RoadNetwork:
    network = RoadNetwork()
    for vertex in range(1, 7):
        network.add_vertex(vertex, (float(vertex), 0.0))
    for _, edge_id, s, t, category, zone, speed, length, _ in ROWS:
        network.add_edge(
            Edge(edge_id, s, t, category, zone, float(length), float(speed))
        )
    return network


def test_table1_regenerates(benchmark, capsys):
    network = benchmark(build_network)
    print("\nTable 1: paper vs measured estimateTT")
    print("e  c          z      sl   l     paper   measured")
    for name, edge_id, _, _, category, zone, speed, length, expected in ROWS:
        measured = network.estimate_tt(edge_id)
        print(
            f"{name}  {category.value:<9}  {zone.value:<5}  {speed:>3}  "
            f"{length:>4}  {expected:5.1f}   {measured:8.2f}"
        )
        assert measured == pytest.approx(expected, abs=0.05)


def test_bench_estimate_tt(benchmark):
    network = build_network()
    path = [1, 2, 5]

    def run():
        return network.path_estimate_tt(path)

    total = benchmark(run)
    assert total == pytest.approx(29.45 + 8.64 + 7.2, abs=0.1)
