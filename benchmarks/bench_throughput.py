"""Query throughput under concurrent readers (paper Section 7 outlook).

Not a paper figure: the paper *predicts* that "the overall query
throughput of the system most likely could [improve]" with
parallelization because the index is read-only.  This bench quantifies
that for the Python reproduction: the GIL caps pure-Python sections, the
numpy kernels release it, so scaling is real but sub-linear.
"""

import pytest

from repro.experiments import format_table, measure_throughput

from .conftest import bench_queries


def test_throughput_scaling(workload, benchmark, capsys):
    n_queries = min(40, bench_queries())
    benchmark.pedantic(
        measure_throughput,
        args=(workload,),
        kwargs={"worker_counts": (1,), "n_queries": min(10, n_queries)},
        rounds=2,
        iterations=1,
    )

    results = measure_throughput(
        workload, worker_counts=(1, 2, 4), n_queries=n_queries
    )
    base = results[0].queries_per_second
    rows = [
        [
            r.n_workers,
            f"{r.queries_per_second:.0f}",
            f"{r.queries_per_second / base:.2f}x",
        ]
        for r in results
    ]
    print("\n" + format_table(
        ["workers", "queries/s", "speed-up"],
        rows,
        title="Throughput: shared immutable index, N reader threads "
        "(paper section 7: throughput 'most likely could' improve)",
    ))
    print(
        "Finding: in this pure-Python reproduction thread-parallel reads "
        "do NOT pay off —\nthe per-query numpy kernels are microseconds "
        "long, so GIL hand-offs dominate.\nThe paper's prediction targets "
        "its C++ engine, where readers truly run in parallel."
    )
    # Sanity only: everything processed, no deadlock, single-thread sane.
    assert all(r.n_queries == n_queries for r in results)
    assert base > 0
    for result in results[1:]:
        assert result.queries_per_second > 0


def test_throughput_validation(workload, benchmark):
    benchmark.pedantic(
        measure_throughput,
        args=(workload,),
        kwargs={"worker_counts": (2,), "n_queries": 5},
        rounds=2,
        iterations=1,
    )
    with pytest.raises(ValueError):
        measure_throughput(workload, worker_counts=(0,))
