"""Shared fixtures for the benchmark harness.

One dataset/index/query-set (the *workload*) and one full accuracy sweep
are computed once per session and shared by the Figure 5-9 benchmarks,
since those figures are different metrics over the same runs.

Environment knobs:

* ``REPRO_BENCH_SCALE``    — dataset scale (default ``small``).
* ``REPRO_BENCH_QUERIES``  — max queries per configuration (default 60).
* ``REPRO_BENCH_BETAS``    — comma-separated beta values (default
  ``10,20,30,40,50``, the paper's grid).
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import pytest

from repro.experiments import (
    AccuracyResult,
    accuracy_sweep,
    build_workload,
)


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def bench_queries() -> int:
    return int(os.environ.get("REPRO_BENCH_QUERIES", "60"))


def bench_betas() -> Tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_BETAS", "10,20,30,40,50")
    return tuple(int(x) for x in raw.split(","))


@pytest.fixture(scope="session")
def workload():
    return build_workload(bench_scale(), seed=0)


@pytest.fixture(scope="session")
def sweep_results(workload) -> Dict[str, List[AccuracyResult]]:
    """The full Figures 5-9 grid, computed once."""
    betas = bench_betas()
    results = {}
    for query_type in ("temporal", "user", "spq"):
        results[query_type] = accuracy_sweep(
            workload,
            query_type,
            betas=betas,
            max_queries=bench_queries(),
        )
    return results


def series_by_method(
    results: List[AccuracyResult], metric: str, betas: Tuple[int, ...]
) -> Dict[str, List[float]]:
    """Pivot sweep results into {method-label: [value per beta]}."""
    table: Dict[str, Dict[int, float]] = {}
    for result in results:
        label = f"{result.partitioner}/{result.splitter}"
        table.setdefault(label, {})[result.beta] = getattr(result, metric)
    return {
        label: [values[beta] for beta in betas]
        for label, values in table.items()
    }


def bench_one_query(
    benchmark,
    workload,
    query_type: str,
    partitioner: str = "pi_Z",
    splitter: str = "regular",
    beta: int = 20,
):
    """Benchmark a single representative trip query of a configuration.

    Every figure test runs under ``--benchmark-only``, so each carries a
    micro-benchmark of the configuration it reports on.
    """
    from repro import EngineConfig, TripRequest, open_db

    db = open_db(
        workload.index,
        network=workload.network,
        cache=None,
        config=EngineConfig(partitioner=partitioner, splitter=splitter),
    )
    spec = max(workload.queries, key=lambda s: len(s.path))
    request = TripRequest.from_spq(
        spec.to_query(query_type, 900, workload.t_max, beta),
        exclude_ids=(spec.traj_id,),
    )

    result = benchmark(lambda: db.query(request))
    assert result.histogram.total > 0
    return result
