#!/usr/bin/env python3
"""Commute analysis: when should a driver leave for work?

Takes one driver's home-to-work route and computes travel-time histograms
for a grid of departure windows through the morning, both from everyone's
trajectories (temporal filters) and from the driver's own history (user
filters via the pi_MDM method).  This is the paper's motivating
application of time-varying, personal path weights.

Run:  python examples/commute_analysis.py
"""

from collections import Counter

from repro import (
    EngineConfig,
    PeriodicInterval,
    SNTIndex,
    TripRequest,
    generate_dataset,
    open_db,
)
from repro.config import SECONDS_PER_DAY


def pick_commuter(dataset):
    """The driver with the most morning trips over one fixed route."""
    routes = Counter()
    for trajectory in dataset.trajectories:
        tod = trajectory.start_time % SECONDS_PER_DAY
        if 6 * 3600 <= tod <= 10 * 3600 and len(trajectory) >= 8:
            routes[(trajectory.user_id, trajectory.path)] += 1
    (user_id, path), trips = routes.most_common(1)[0]
    return user_id, path, trips


def main() -> None:
    dataset = generate_dataset("tiny", seed=0)
    index = SNTIndex.build(
        dataset.trajectories, dataset.network.alphabet_size
    )
    user_id, path, n_trips = pick_commuter(dataset)
    km = dataset.network.path_length_m(list(path)) / 1000.0
    print(
        f"Driver u{user_id}: {n_trips} recorded morning trips over a "
        f"{km:.1f} km route of {len(path)} segments\n"
    )

    everyone = open_db(index, network=dataset.network,
                       config=EngineConfig(partitioner="pi_Z"))
    personal = open_db(index, network=dataset.network,
                       config=EngineConfig(partitioner="pi_MDM"))

    print("departure   everyone (median / p90)    personal (median / p90)")
    print("-" * 66)
    day0 = 0
    for minutes in range(7 * 60, 9 * 60 + 1, 15):
        departure = day0 + minutes * 60
        interval = PeriodicInterval.around(departure, 900)

        q_all = TripRequest(path=path, interval=interval, beta=10)
        q_personal = TripRequest(
            path=path, interval=interval, user=user_id, beta=5
        )
        h_all = everyone.query(q_all).histogram
        h_personal = personal.query(q_personal).histogram

        label = f"{minutes // 60:02d}:{minutes % 60:02d}"
        print(
            f"  {label}       {h_all.quantile(0.5):5.0f}s / "
            f"{h_all.quantile(0.9):5.0f}s            "
            f"{h_personal.quantile(0.5):5.0f}s / "
            f"{h_personal.quantile(0.9):5.0f}s"
        )

    print(
        "\nThe rush-hour peak is visible as a bump in the medians; the"
        "\npersonal histograms condition on the driver's own behaviour"
        "\non main roads (pi_MDM applies the user filter selectively)."
    )


if __name__ == "__main__":
    main()
