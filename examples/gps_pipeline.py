#!/usr/bin/env python3
"""Full preprocessing pipeline: raw GPS -> map matching -> NCT -> index.

Reproduces the paper's data path (Section 5.1.3): 1 Hz GPS points are
split into trips at 180 s gaps, map-matched with an HMM (Newson & Krumm),
turned into network-constrained trajectories with per-segment entry times
and durations, and finally indexed and queried.

Run:  python examples/gps_pipeline.py
"""

import numpy as np

from repro import (
    FixedInterval,
    SNTIndex,
    StrictPathQuery,
    generate_dataset,
    get_travel_times,
    simulate_gps,
    trajectories_from_gps,
)
from repro.network import generate_network


def main() -> None:
    synthetic = generate_network("tiny", seed=0)
    network = synthetic.network
    dataset = generate_dataset("tiny", seed=0, synthetic=synthetic)
    rng = np.random.default_rng(42)

    # Take a handful of real trips and re-emit them as raw GPS streams
    # with 5 m sensor noise, separated by >180 s gaps.
    donors = sorted(dataset.trajectories, key=len, reverse=True)[:5]
    streams = []
    for trajectory in donors:
        fixes = simulate_gps(
            network, trajectory.points, rate_hz=1.0, noise_std_m=5.0, rng=rng
        )
        streams.append((trajectory.user_id, fixes))
        print(
            f"trajectory {trajectory.traj_id}: {len(trajectory)} segments "
            f"-> {len(fixes)} GPS fixes"
        )

    # GPS -> trips -> HMM map matching -> NCTs.
    matched = trajectories_from_gps(network, streams)
    print(f"\nmap matching recovered {len(matched)} trajectories")
    from repro import MapMatcher

    matcher = MapMatcher(network)
    for donor, recovered in zip(donors, matched):
        truth = set(donor.path)
        fixes = simulate_gps(
            network, donor.points, rate_hz=1.0, noise_std_m=5.0,
            rng=np.random.default_rng(donor.traj_id),
        )
        edges, _ = matcher.match_trace(fixes)
        per_fix = sum(1 for e in edges if e in truth) / max(1, len(edges))
        print(
            f"  trajectory {donor.traj_id}: {len(recovered)} segments in "
            f"the recovered NCT, {100 * per_fix:.0f}% per-fix accuracy"
        )

    # The matched NCTs are ordinary trajectories: index and query them.
    index = SNTIndex.build(matched, network.alphabet_size)
    probe = matched[0]
    sub_path = probe.path[1:4]
    result = get_travel_times(
        index,
        StrictPathQuery(
            path=sub_path, interval=FixedInterval(0, index.t_max + 1)
        ),
    )
    print(
        f"\nquery over matched data: path {sub_path} -> "
        f"travel times {result.values.tolist()}"
    )
    print("(compare the donor's true sub-path duration: "
          f"{probe.duration_of_path(list(sub_path))}s)")


if __name__ == "__main__":
    main()
