#!/usr/bin/env python3
"""The paper's running example, reproduced number by number.

Builds the Figure 1 network and the four example trajectories of
Section 2.2, prints Table 1, the trajectory string and BWT of Figure 3,
the ISA ranges of Section 4.1.1, and the worked query of Section 2.3 with
its histograms and convolution.

Run:  python examples/paper_example.py
"""

from repro import (
    Edge,
    FixedInterval,
    Histogram,
    RoadCategory,
    RoadNetwork,
    SNTIndex,
    StrictPathQuery,
    ZoneType,
    get_travel_times,
)
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

NAMES = {1: "A", 2: "B", 3: "C", 4: "D", 5: "E", 6: "F", 0: "$"}


def build_network() -> RoadNetwork:
    """Figure 1 / Table 1: six directed edges A..F."""
    network = RoadNetwork()
    for vertex in range(1, 7):
        network.add_vertex(vertex, (float(vertex), 0.0))
    rows = [
        # edge, source, target, category, zone, length, speed limit
        (1, 1, 2, RoadCategory.MOTORWAY, ZoneType.RURAL, 900.0, 110.0),
        (2, 2, 3, RoadCategory.PRIMARY, ZoneType.CITY, 120.0, 50.0),
        (3, 2, 4, RoadCategory.SECONDARY, ZoneType.CITY, 40.0, 30.0),
        (4, 4, 3, RoadCategory.SECONDARY, ZoneType.CITY, 80.0, 30.0),
        (5, 3, 5, RoadCategory.PRIMARY, ZoneType.CITY, 100.0, 50.0),
        (6, 3, 6, RoadCategory.PRIMARY, ZoneType.RURAL, 800.0, 80.0),
    ]
    for edge_id, s, t, category, zone, length, speed in rows:
        network.add_edge(
            Edge(edge_id, s, t, category, zone, length, speed)
        )
    return network


def build_trajectories() -> TrajectorySet:
    """The example trajectory set tr0..tr3 of Section 2.2."""
    data = [
        (0, 1, [(1, 0, 3.0), (2, 3, 4.0), (5, 7, 4.0)]),
        (1, 2, [(1, 2, 4.0), (3, 6, 2.0), (4, 8, 4.0), (5, 12, 5.0)]),
        (2, 2, [(1, 4, 3.0), (2, 7, 3.0), (6, 10, 6.0)]),
        (3, 1, [(1, 6, 3.0), (2, 9, 3.0), (5, 12, 4.0)]),
    ]
    return TrajectorySet(
        [
            Trajectory(d, u, [TrajectoryPoint(*p) for p in seq])
            for d, u, seq in data
        ]
    )


def main() -> None:
    network = build_network()
    trajectories = build_trajectories()

    print("Table 1: estimateTT per segment")
    print("  e  category   zone   sl   l     estimateTT")
    for edge in network.edges():
        print(
            f"  {NAMES[edge.edge_id]}  {edge.category.value:<9}  "
            f"{edge.zone.value:<5}  {edge.speed_limit_kmh:>3.0f}  "
            f"{edge.length_m:>4.0f}  {network.estimate_tt(edge.edge_id):5.1f} s"
        )

    index = SNTIndex.build(trajectories, alphabet_size=7)

    print("\nFigure 3: the spatial FM-index")
    fm = index.partitions[0].fm
    bwt = "".join(NAMES[fm.bwt.access(i)] for i in range(len(fm)))
    print(f"  Tbwt = {bwt}   (paper: EFEE$$$$AAAACBDBB)")
    for path, label in [((1,), "<A>"), ((1, 2), "<A,B>")]:
        (w, st, ed) = index.isa_ranges(path)[0]
        print(f"  R({label}) = [{st}, {ed})")

    print("\nSection 2.3: Q = spq(<A,B,E>, [0,15), u=u1, 2)")
    result = get_travel_times(
        index,
        StrictPathQuery(
            path=(1, 2, 5), interval=FixedInterval(0, 15), user=1, beta=2
        ),
    )
    print(f"  travel times: {sorted(result.values.tolist())}  "
          "(Dur(tr3)=10, Dur(tr0)=11)")
    h = Histogram.from_values(result.values, 1.0)
    print(f"  H  = {h.as_dict()}")

    print("\nSplit into Q1 = spq(<A,B>, [0,15), {}, 3) and "
          "Q2 = spq(<E>, [0,15), {}, 3):")
    h1 = Histogram.from_values(
        get_travel_times(
            index,
            StrictPathQuery(path=(1, 2), interval=FixedInterval(0, 15), beta=3),
        ).values,
        1.0,
    )
    h2 = Histogram.from_values(
        get_travel_times(
            index,
            StrictPathQuery(path=(5,), interval=FixedInterval(0, 15), beta=3),
        ).values,
        1.0,
    )
    print(f"  H1 = {h1.as_dict()}   (paper: {{6: 2, 7: 1}})")
    print(f"  H2 = {h2.as_dict()}   (paper: {{4: 2, 5: 1}})")
    print(f"  H1 * H2 = {(h1 * h2).as_dict()}   "
          "(paper: {10: 4, 11: 4, 12: 1})")


if __name__ == "__main__":
    main()
