#!/usr/bin/env python3
"""Quickstart: build an SNT-index and ask for a travel-time histogram.

Generates a small synthetic city, indexes its trajectories, and answers a
strict path query for one commute path — the 60-second tour of the
library's public API.

Run:  python examples/quickstart.py
"""

from repro import (
    PeriodicInterval,
    SNTIndex,
    TripRequest,
    generate_dataset,
    open_db,
)


def main() -> None:
    # 1. A synthetic world: road network + two months of driving.
    print("Generating dataset (tiny scale)...")
    dataset = generate_dataset("tiny", seed=0)
    print(
        f"  {dataset.network.n_edges} directed edges, "
        f"{len(dataset.trajectories)} trajectories, "
        f"{dataset.trajectories.total_traversals()} segment traversals"
    )

    # 2. Build the SNT-index (FM-index + temporal CSS-tree forest).
    index = SNTIndex.build(
        dataset.trajectories, dataset.network.alphabet_size
    )
    stats = index.build_stats
    print(
        f"  index built in {stats.setup_seconds:.2f}s "
        f"({stats.n_traversals} leaf records)"
    )

    # 3. Pick a real commute path and ask: how long does this take around
    #    this time of day?
    trip = max(dataset.trajectories, key=len)
    request = TripRequest(
        path=trip.path,
        # 15-minute periodic window around the trip's departure time,
        # matched on every day in the dataset.
        interval=PeriodicInterval.around(trip.start_time, 900),
        beta=10,  # require at least 10 supporting trajectories
        exclude_ids=(trip.traj_id,),  # keep the trip out of its own answer
    )

    db = open_db(index, network=dataset.network)
    result = db.query(request)

    # 4. The answer is a travel-time distribution, not a single number.
    histogram = result.histogram
    print(f"\nPath of {len(trip.path)} segments "
          f"({dataset.network.path_length_m(list(trip.path)) / 1000:.1f} km)")
    print(f"  actual duration of the sampled trip: {trip.duration():.0f}s")
    print(f"  estimated mean:    {result.estimated_mean:.0f}s")
    print(f"  estimated median:  {histogram.quantile(0.5):.0f}s")
    print(f"  90th percentile:   {histogram.quantile(0.9):.0f}s")
    print(
        f"  answered with {len(result.outcomes)} sub-queries, "
        f"{result.n_index_scans} index scans, "
        f"{result.elapsed_s * 1000:.1f} ms"
    )

    print("\nTravel-time histogram (10s buckets):")
    unit = histogram.scaled_to_unit_mass()
    for bucket, mass in sorted(unit.as_dict().items()):
        if mass >= 0.01:
            bar = "#" * max(1, int(mass * 60))
            print(f"  [{bucket * 10:4.0f}s - {bucket * 10 + 10:4.0f}s) {bar}")


if __name__ == "__main__":
    main()
