#!/usr/bin/env python3
"""Risk-averse routing with travel-time histograms as edge weights.

The paper's introduction motivates online histogram retrieval with routing:
"These histograms can be used as edge weights by routing algorithms to
compute better results."  This example generates route alternatives
between two towns, costs each with a strict-path travel-time histogram at
the desired departure time, and picks routes by different risk profiles:

* the *mean* chooser takes the fastest route on average,
* the *p95* chooser prefers reliability: the route whose 95th-percentile
  arrival is earliest (risk-averse, e.g. for catching a flight).

Run:  python examples/risk_averse_routing.py
"""

from repro import (
    PeriodicInterval,
    SNTIndex,
    TripRequest,
    alternative_paths,
    generate_dataset,
    open_db,
)


def main() -> None:
    dataset = generate_dataset("tiny", seed=0)
    network = dataset.network
    index = SNTIndex.build(dataset.trajectories, network.alphabet_size)
    db = open_db(index, network=network)

    # Route from a home in the first town to a workplace in the last.
    synthetic = dataset.synthetic
    origin = synthetic.towns[0].home_vertices[0]
    destination = synthetic.towns[-1].work_vertices[0]
    routes = alternative_paths(network, origin, destination, k=3)
    print(f"{len(routes)} route alternatives from v{origin} to "
          f"v{destination}\n")

    departure = 7 * 3600 + 45 * 60  # 07:45, rush hour
    candidates = []
    for i, route in enumerate(routes):
        request = TripRequest(
            path=tuple(route),
            interval=PeriodicInterval.around(departure, 1800),
            beta=10,
        )
        result = db.query(request)
        histogram = result.histogram
        km = network.path_length_m(route) / 1000.0
        mean = result.estimated_mean
        p50 = histogram.quantile(0.5)
        p95 = histogram.quantile(0.95)
        candidates.append((i, route, mean, p50, p95))
        print(
            f"route {i}: {len(route):3d} segments, {km:5.1f} km   "
            f"mean {mean:5.0f}s   median {p50:5.0f}s   p95 {p95:5.0f}s"
        )

    by_mean = min(candidates, key=lambda c: c[2])
    by_p95 = min(candidates, key=lambda c: c[4])
    print(f"\nfastest on average:   route {by_mean[0]} "
          f"(mean {by_mean[2]:.0f}s)")
    print(f"most reliable (p95):  route {by_p95[0]} "
          f"(p95 {by_p95[4]:.0f}s)")
    if by_mean[0] != by_p95[0]:
        print("-> the risk-averse choice differs from the mean-optimal one:"
              "\n   distributions, not point estimates, change the decision.")
    else:
        print("-> here one route dominates under both criteria.")


if __name__ == "__main__":
    main()
