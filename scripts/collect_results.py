#!/usr/bin/env python3
"""Collect the full paper-reproduction measurement set into one report.

Runs every figure experiment at the benchmark scale and writes an
aligned-text report (used to fill EXPERIMENTS.md).

Run:  python scripts/collect_results.py [output-path]
"""

import sys
import time

from repro.experiments import (
    accuracy_sweep,
    baseline_numbers,
    build_workload,
    estimator_report,
    format_series,
    format_table,
    mib,
    partitioning_report,
)

def series_by_method(results, metric, betas):
    """Pivot sweep results into {method-label: [value per beta]}."""
    table = {}
    for result in results:
        label = f"{result.partitioner}/{result.splitter}"
        table.setdefault(label, {})[result.beta] = getattr(result, metric)
    return {
        label: [values[beta] for beta in betas]
        for label, values in table.items()
    }


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "results_report.txt"
    betas = (10, 20, 30, 40, 50)
    lines = []

    started = time.time()
    workload = build_workload("small", seed=0)
    lines.append(
        f"workload: scale=small, {len(workload.dataset.trajectories)} "
        f"trajectories, {workload.index.build_stats.n_traversals} "
        f"traversals, {len(workload.queries)} queries, "
        f"{workload.network.n_edges} edges"
    )

    numbers = baseline_numbers(workload)
    lines.append(
        f"baselines: speed-limit sMAPE "
        f"{numbers['speed_limit_smape']:.2f}% (paper 34.3%), "
        f"segment-level sMAPE {numbers['segment_level_smape']:.2f}% "
        f"(paper 13.8%)"
    )

    for query_type in ("temporal", "user", "spq"):
        results = accuracy_sweep(workload, query_type, betas=betas, max_queries=60)
        for metric, fig in (
            ("smape", "Figure 5"),
            ("weighted_error", "Figure 6"),
            ("mean_subpath_length", "Figure 7"),
            ("log_likelihood", "Figure 8"),
            ("ms_per_query", "Figure 9"),
        ):
            series = series_by_method(results, metric, betas)
            lines.append("")
            lines.append(
                format_series(
                    f"{fig} ({query_type}): {metric} vs beta",
                    "method",
                    betas,
                    series,
                )
            )

    lines.append("")
    report = partitioning_report(workload)
    rows = []
    for row in report:
        label = (
            "BT"
            if row["kind"] == "btree"
            else ("FULL" if row["partition_days"] is None else str(row["partition_days"]))
        )
        c = row["component_bytes"]
        rows.append(
            [
                label,
                row["n_partitions"],
                f"{mib(c['C']):.3f}",
                f"{mib(c['WT']):.3f}",
                f"{mib(c['user']):.3f}",
                f"{mib(c['Forest']):.3f}",
                f"{mib(row['tod_store_bytes'][1]):.3f}",
                f"{mib(row['tod_store_bytes'][5]):.3f}",
                f"{mib(row['tod_store_bytes'][10]):.3f}",
                f"{row['setup_seconds']:.2f}",
            ]
        )
    lines.append(
        format_table(
            [
                "partition", "W", "C MiB", "WT MiB", "user MiB",
                "Forest MiB", "ToD h=1m", "h=5m", "h=10m", "setup s",
            ],
            rows,
            title="Figure 10: temporal partitioning (memory + setup)",
        )
    )

    lines.append("")
    qerrors = estimator_report(workload, max_queries=40)
    lines.append(
        format_table(
            ["mode", "q-error (10^y)"],
            [
                [mode, f"{data['mean_q_error_log10']:.3f}"]
                for mode, data in qerrors.items()
            ],
            title="Figure 11a: cardinality estimator q-error",
        )
    )

    lines.append("")
    lines.append(f"total collection time: {time.time() - started:.0f}s")
    text = "\n".join(lines)
    with open(out_path, "w") as handle:
        handle.write(text + "\n")
    print(text)


if __name__ == "__main__":
    main()
