#!/usr/bin/env bash
# Strict type checking, scoped to the typed API surface (ISSUE 3) plus
# the cache-tier backend layer (ISSUE 4), the staged query pipeline
# (ISSUE 5), the succinct rank bitvector (ISSUE 6), and the vectorized
# scan/probe stage (ISSUE 7), the HTTP serving tier (ISSUE 8), and
# the shard lifecycle layer (ISSUE 9):
# src/repro/api (TripRequest / EngineConfig / TravelTimeDB), the error
# hierarchy, service/cachetier.py (CacheBackend / SharedCacheTier),
# core/plan.py + core/exec.py (the planner, the trip machine, and the
# deduplicating batch executor), fmindex/bitvector.py (the word-packed
# rank directory under every wavelet tree), sntindex/procedures.py (the
# retrieval procedures and their grouped forms), temporal/forest.py
# (the per-edge temporal trees and sort permutations), src/repro/
# server (ServerConfig / collector / HTTP framing / client), and
# sntindex/store.py + sntindex/compaction.py (the ShardStore protocol,
# its local/object backends, and the sealed-shard compactor).  These
# call into the not-yet-annotated
# core/service/sntindex modules, so untyped *calls* are allowed and
# imports are followed silently; everything the checked files
# themselves define is held to --strict.
set -euo pipefail
cd "$(dirname "$0")/.."
if ! python -m mypy --version >/dev/null 2>&1; then
  echo "mypy is not installed; skipping type check (CI installs it)" >&2
  exit 0
fi
exec python -m mypy --strict \
  --follow-imports=silent \
  --allow-untyped-calls \
  --allow-subclassing-any \
  --no-warn-return-any \
  src/repro/api src/repro/errors.py src/repro/service/cachetier.py \
  src/repro/core/plan.py src/repro/core/exec.py \
  src/repro/fmindex/bitvector.py \
  src/repro/sntindex/procedures.py src/repro/temporal/forest.py \
  src/repro/sntindex/store.py src/repro/sntindex/compaction.py \
  src/repro/server
