"""repro — reproduction of *Indexing Trajectories for Travel-Time Histogram
Retrieval* (Waury, Jensen, Koide, Ishikawa, Xiao; EDBT 2019).

The library answers **strict path queries**: given a path in a road
network, a time predicate, and optional user filters, it retrieves the
travel times of all trajectories that strictly followed the path and
returns them as a histogram — online, from an in-memory SNT-index
(FM-index + per-segment temporal forest), with greedy predicate relaxation
and SPQ cardinality estimation.

Quickstart
----------
>>> from repro import (
...     generate_dataset, SNTIndex, TripRequest, PeriodicInterval, open_db,
... )
>>> dataset = generate_dataset("tiny", seed=0)
>>> index = SNTIndex.build(
...     dataset.trajectories, dataset.network.alphabet_size
... )
>>> db = open_db(index, network=dataset.network)
>>> trip = dataset.trajectories[100]
>>> result = db.query(TripRequest(
...     path=trip.path,
...     interval=PeriodicInterval.around(trip.start_time, 900),
...     beta=20,
... ))
>>> result.histogram.total > 0
True
"""

from .api import (
    EngineConfig,
    EstimatorMode,
    TravelTimeDB,
    TripRequest,
    open_db,
)
from .config import ExperimentScale, available_scales, get_scale
from .core import (
    ESTIMATOR_MODES,
    PARTITIONER_NAMES,
    CardinalityEstimator,
    DedupStats,
    FixedInterval,
    PeriodicInterval,
    QueryEngine,
    StrictPathQuery,
    SubQueryOutcome,
    TripQueryResult,
    naive_match_count,
    naive_travel_times,
)
from .histogram import Histogram, TimeOfDayHistogramStore, log_likelihood
from .network import (
    Edge,
    RoadCategory,
    RoadNetwork,
    ZoneMap,
    ZoneType,
    alternative_paths,
    generate_network,
    shortest_path,
)
from .service import (
    CacheBackend,
    CacheStats,
    SharedCacheTier,
    SubQueryCache,
    TravelTimeService,
)
from .sntindex import (
    IndexReader,
    ShardedSNTIndex,
    ShardStats,
    SNTIndex,
    TravelTimeResult,
    count_matches,
    get_travel_times,
    load_any_index,
)
from .trajectories import (
    GeneratedDataset,
    MapMatcher,
    Trajectory,
    TrajectoryPoint,
    TrajectorySet,
    generate_dataset,
    simulate_gps,
    trajectories_from_gps,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # typed query API (the unified serving surface)
    "open_db",
    "TravelTimeDB",
    "TripRequest",
    "EngineConfig",
    "EstimatorMode",
    # configuration
    "ExperimentScale",
    "available_scales",
    "get_scale",
    # network
    "Edge",
    "RoadNetwork",
    "RoadCategory",
    "ZoneMap",
    "ZoneType",
    "generate_network",
    "shortest_path",
    "alternative_paths",
    # trajectories
    "Trajectory",
    "TrajectoryPoint",
    "TrajectorySet",
    "GeneratedDataset",
    "generate_dataset",
    "MapMatcher",
    "simulate_gps",
    "trajectories_from_gps",
    # histograms
    "Histogram",
    "TimeOfDayHistogramStore",
    "log_likelihood",
    # index
    "SNTIndex",
    "ShardedSNTIndex",
    "ShardStats",
    "IndexReader",
    "load_any_index",
    "TravelTimeResult",
    "get_travel_times",
    "count_matches",
    # queries
    "StrictPathQuery",
    "FixedInterval",
    "PeriodicInterval",
    "QueryEngine",
    "TripQueryResult",
    "SubQueryOutcome",
    "DedupStats",
    "CardinalityEstimator",
    "ESTIMATOR_MODES",
    "PARTITIONER_NAMES",
    "naive_travel_times",
    "naive_match_count",
    # serving layer
    "TravelTimeService",
    "SubQueryCache",
    "CacheStats",
    "CacheBackend",
    "SharedCacheTier",
]
