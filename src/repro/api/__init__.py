"""Typed public query API (the unified serving surface).

* :class:`TripRequest` / :class:`EstimatorMode` — one validated,
  immutable query object with a stable JSON wire form;
* :class:`EngineConfig` — frozen engine + serving configuration;
* :class:`TravelTimeDB` / :func:`open_db` — the session facade that owns
  the index reader, configuration, and shared cache, and answers
  ``query``, ``query_many``, and order-preserving streaming batches.

This is the *only* public query surface: the PR-3 legacy shims were
removed on the deprecation schedule (README "API"), so every workload —
library, CLI, experiments, benchmarks — enters through ``open_db`` /
:class:`TripRequest`.
"""

from .config import SPLITTER_NAMES, EngineConfig
from .db import TravelTimeDB, open_db
from .request import EstimatorMode, TripRequest

__all__ = [
    "EngineConfig",
    "EstimatorMode",
    "SPLITTER_NAMES",
    "TravelTimeDB",
    "TripRequest",
    "open_db",
]
