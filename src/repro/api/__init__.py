"""Typed public query API (the unified serving surface).

* :class:`TripRequest` / :class:`EstimatorMode` — one validated,
  immutable query object with a stable JSON wire form;
* :class:`EngineConfig` — frozen engine + serving configuration;
* :class:`TravelTimeDB` / :func:`open_db` — the session facade that owns
  the index reader, configuration, and shared cache, and answers
  ``query``, ``query_many``, and order-preserving streaming batches.

The legacy surfaces (``QueryEngine.trip_query``,
``TravelTimeService.trip_query_many``) delegate here and emit
``DeprecationWarning``; see README "API" for the deprecation policy.
"""

from .config import SPLITTER_NAMES, EngineConfig
from .db import TravelTimeDB, open_db
from .request import EstimatorMode, TripRequest

__all__ = [
    "EngineConfig",
    "EstimatorMode",
    "SPLITTER_NAMES",
    "TravelTimeDB",
    "TripRequest",
    "open_db",
]
