"""`EngineConfig`: one frozen, validated configuration object.

Replaces the constructor-kwarg sprawl of
:class:`repro.core.engine.QueryEngine` and
:class:`repro.service.TravelTimeService`: everything that shapes *how*
queries are answered (partitioner, splitter, ladder, bucket width,
estimator default, relaxation limits, serving knobs) lives here, is
validated once at construction, and is hashable/comparable — so two
sessions configured the same way compare equal and a config can key an
external cache tier.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Tuple, Union

from ..config import DEFAULT_BUCKET_WIDTH_S, DEFAULT_INTERVAL_LADDER_S
from ..config import DEFAULT_USER_SELECTIVITY
from ..core.partitioning import PARTITIONER_NAMES
from ..errors import ConfigurationError
from .request import EstimatorMode

__all__ = ["EngineConfig", "SPLITTER_NAMES"]

SPLITTER_NAMES: Tuple[str, ...] = ("regular", "longest_prefix")

#: ``beta_policy`` signature: (sub-path, query beta) -> effective beta.
BetaPolicy = Callable[[Tuple[int, ...], Optional[int]], Optional[int]]


@dataclass(frozen=True)
class EngineConfig:
    """Immutable engine + serving configuration.

    Attributes
    ----------
    partitioner:
        ``pi`` method name (``pi_1``..``pi_3``, ``pi_C``, ``pi_Z``,
        ``pi_ZC``, ``pi_N``, ``pi_MDM``).
    splitter:
        ``"regular"`` (sigma_R) or ``"longest_prefix"`` (sigma_L).
    ladder:
        The interval-size list ``A`` in seconds, strictly ascending.
    bucket_width_s:
        Histogram bucket width ``h``.
    estimator_mode:
        Default cardinality-estimator mode for requests that don't set
        one; ``None`` (or :attr:`EstimatorMode.NONE`) disables the
        pre-check by default.
    user_selectivity:
        ``sel_u`` used when estimators are built from a mode.
    max_relaxations:
        Safety valve against pathological relaxation loops.
    shift_and_enlarge:
        Apply Dai et al.'s interval adaptation to later sub-queries.
    beta_policy:
        Optional per-sub-query cardinality policy.  Compared (and
        hashed) by callable identity: policies change effective betas
        and therefore answers, so two configs differing only here must
        NOT compare equal — ROADMAP designates EngineConfig identity as
        part of the external cache-tier key.
    n_workers:
        Default fan-out width for batch/stream execution.
    dedup_subqueries:
        Answer ``query_many``/``stream`` batches through the staged
        deduplicating executor (:class:`repro.core.exec.BatchExecutor`):
        the planned sub-queries of all in-flight trips are collected,
        identical ``(path, interval, user, beta, exclude)`` tasks are
        scanned once, and the answer fans out to every owning trip —
        bit-identical to the per-trip loop, so this is serving plumbing
        and excluded from :meth:`cache_identity`.  Off by default; the
        win is cold-cache repeated-path batches (a warm shared cache
        already deduplicates across sequential trips).
    cache_enabled:
        Whether sessions build a shared cross-query
        :class:`~repro.service.SubQueryCache`.
    cache_entries:
        Per-section LRU bound of that cache (``None`` = unbounded).
    cache:
        Cache-backend spec consumed by
        :func:`repro.service.cachetier.resolve_cache_backend`:
        ``None`` keeps the legacy ``cache_enabled`` behaviour,
        ``"memory"`` the in-process LRU, ``"off"`` no shared cache,
        ``"shared"`` a cross-process :class:`SharedCacheTier` under the
        index directory, ``"shared:<dir>"`` one at an explicit
        directory.  Serving plumbing only — the spec never changes
        answers, so it is excluded from :meth:`cache_identity`.
    cache_store_entries:
        Bound on the cross-process shared tier's *store* (the SQLite
        file; ``None`` = unbounded).  Enforced as insertion-order GC on
        insert and ``sync_epoch``; eviction only ever forces a
        recomputation, never a different answer, so this too is
        excluded from :meth:`cache_identity`.  Ignored by the
        in-process backends (their ``cache_entries`` LRU bound already
        caps memory).
    store:
        Optional index location — a directory path or shard-store URI
        (``file:...``, ``object://...``; see
        :mod:`repro.sntindex.store`) that :func:`repro.open_db` falls
        back to when no explicit ``path_or_index`` is given.  Where the
        index lives never changes what a query returns, so this is
        serving plumbing and excluded from :meth:`cache_identity`.
    cache_ttl_s:
        Maximum age in seconds of entries in the cross-process shared
        tier's store (``None`` = no age limit).  Rows older than this
        are treated as misses on read and garbage-collected lazily
        (on ``sync_epoch`` and amortised during writes) — the
        long-running-server knob: a serving process that stays up for
        weeks keeps the store from accumulating entries for paths
        nobody asks about any more.  Expiry only ever forces a
        recomputation, never a different answer (entries are keyed by
        everything that shapes one), so it is excluded from
        :meth:`cache_identity`.  Ignored by the in-process backends.

    All validation failures raise :class:`ConfigurationError` (a
    :class:`~repro.errors.QueryError`), never a bare ``ValueError``.
    """

    partitioner: str = "pi_Z"
    splitter: str = "regular"
    ladder: Tuple[int, ...] = tuple(DEFAULT_INTERVAL_LADDER_S)
    bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S
    estimator_mode: Optional[EstimatorMode] = None
    user_selectivity: float = DEFAULT_USER_SELECTIVITY
    max_relaxations: int = 10_000
    shift_and_enlarge: bool = True
    beta_policy: Optional[BetaPolicy] = None
    n_workers: int = 1
    dedup_subqueries: bool = False
    cache_enabled: bool = True
    cache_entries: Optional[int] = 65_536
    cache: Optional[str] = None
    cache_store_entries: Optional[int] = None
    cache_ttl_s: Optional[float] = None
    store: Optional[str] = None

    def __post_init__(self) -> None:
        if self.partitioner not in PARTITIONER_NAMES:
            raise ConfigurationError(
                f"unknown partitioner {self.partitioner!r}; expected one of "
                f"{PARTITIONER_NAMES}"
            )
        if self.splitter not in SPLITTER_NAMES:
            raise ConfigurationError(
                f"unknown splitter {self.splitter!r}; expected one of "
                f"{SPLITTER_NAMES}"
            )
        try:
            ladder = tuple(int(step) for step in self.ladder)
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"ladder must be a sequence of seconds; got {self.ladder!r}"
            ) from error
        if not ladder:
            raise ConfigurationError("ladder must not be empty")
        if any(step <= 0 for step in ladder):
            raise ConfigurationError("ladder steps must be positive")
        if any(b <= a for a, b in zip(ladder, ladder[1:])):
            raise ConfigurationError("ladder must be strictly ascending")
        object.__setattr__(self, "ladder", ladder)
        if not self.bucket_width_s > 0:
            raise ConfigurationError("bucket_width_s must be positive")
        object.__setattr__(self, "bucket_width_s", float(self.bucket_width_s))
        try:
            mode = EstimatorMode.coerce(self.estimator_mode)
        except Exception as error:
            raise ConfigurationError(str(error)) from error
        object.__setattr__(self, "estimator_mode", mode)
        if not 0 < self.user_selectivity <= 1:
            raise ConfigurationError("user_selectivity must be in (0, 1]")
        if self.max_relaxations < 1:
            raise ConfigurationError("max_relaxations must be positive")
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be positive")
        if self.cache_entries is not None and self.cache_entries < 1:
            raise ConfigurationError(
                "cache_entries must be positive or None (unbounded)"
            )
        if not isinstance(self.dedup_subqueries, bool):
            raise ConfigurationError(
                "dedup_subqueries must be a bool; got "
                f"{self.dedup_subqueries!r}"
            )
        if self.cache_store_entries is not None and (
            not isinstance(self.cache_store_entries, int)
            or isinstance(self.cache_store_entries, bool)
            or self.cache_store_entries < 1
        ):
            raise ConfigurationError(
                "cache_store_entries must be positive or None (unbounded)"
            )
        if self.cache_ttl_s is not None:
            try:
                ttl = float(self.cache_ttl_s)
            except (TypeError, ValueError) as error:
                raise ConfigurationError(
                    "cache_ttl_s must be a positive number of seconds or "
                    f"None (no age limit); got {self.cache_ttl_s!r}"
                ) from error
            if not ttl > 0:
                raise ConfigurationError(
                    "cache_ttl_s must be a positive number of seconds or "
                    f"None (no age limit); got {self.cache_ttl_s!r}"
                )
            object.__setattr__(self, "cache_ttl_s", ttl)
        if self.store is not None and (
            not isinstance(self.store, str) or not self.store
        ):
            raise ConfigurationError(
                "store must be None, a directory path, or a store URI "
                f"(file:..., object://...); got {self.store!r}"
            )
        if self.cache is not None:
            if not isinstance(self.cache, str):
                raise ConfigurationError(
                    "cache must be None, 'memory', 'off', 'shared', or "
                    f"'shared:<dir>'; got {self.cache!r}"
                )
            if self.cache not in ("memory", "off", "shared") and not (
                self.cache.startswith("shared:")
                and len(self.cache) > len("shared:")
            ):
                raise ConfigurationError(
                    "cache must be None, 'memory', 'off', 'shared', or "
                    f"'shared:<dir>'; got {self.cache!r}"
                )
            if self.cache.startswith("shared") and self.beta_policy is not None:
                # Fail at construction, not first query: a callable has
                # no cross-process identity, so a shared tier could
                # serve another policy's (differently-shaped) entries.
                raise ConfigurationError(
                    "a shared cache tier cannot be combined with a "
                    "beta_policy (callables have no cross-process "
                    "identity); use cache='memory' or drop the policy"
                )

    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)

    def cache_identity(self) -> str:
        """Stable cross-process fingerprint of the answer-shaping fields.

        Part of every :class:`~repro.service.cachetier.SharedCacheTier`
        key (the ROADMAP external-cache-tier contract: request wire form
        + EngineConfig identity + index epoch).  Two processes whose
        configs agree on every field that can change an answer produce
        the same identity and therefore share entries; serving knobs
        (``n_workers``, the ``cache*`` plumbing) are excluded, since
        they never change what a query returns.  ``beta_policy`` is a
        callable and has no cross-process identity, so configs carrying
        one are rejected.
        """
        if self.beta_policy is not None:
            raise ConfigurationError(
                "an EngineConfig with a beta_policy has no stable "
                "cross-process cache identity"
            )
        mode = self.estimator_mode
        return json.dumps(
            {
                "partitioner": self.partitioner,
                "splitter": self.splitter,
                "ladder": list(self.ladder),
                "bucket_width_s": self.bucket_width_s,
                "estimator_mode": mode.value if mode is not None else None,
                "user_selectivity": self.user_selectivity,
                "max_relaxations": self.max_relaxations,
                "shift_and_enlarge": self.shift_and_enlarge,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
