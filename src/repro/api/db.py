"""The :class:`TravelTimeDB` session facade and :func:`open_db`.

One entry point for every workload over one index::

    import repro

    db = repro.open_db("world/index", network="world/network.json")
    result = db.query(repro.TripRequest(path=(1, 2, 3), interval=...))
    for result in db.stream(requests):      # order-preserving, bounded
        ...

A session owns the index reader (monolithic :class:`~repro.SNTIndex` or
sharded :class:`~repro.ShardedSNTIndex`, loaded transparently via
``load_any_index`` when a path is given), the road network, one
:class:`~repro.api.EngineConfig`, and the shared cross-query
:class:`~repro.service.SubQueryCache`.  All three batch surfaces —
:meth:`TravelTimeDB.query`, :meth:`~TravelTimeDB.query_many`, and the
streaming generator :meth:`~TravelTimeDB.stream` — answer bit-identically
to sequential Procedure 6; they differ only in scheduling.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from os import PathLike
from pathlib import Path
from typing import (
    Any,
    Deque,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

from ..core.engine import QueryEngine, TripQueryResult
from ..core.exec import DedupStats
from ..errors import ConfigurationError, RequestValidationError
from ..network.graph import RoadNetwork
from ..network.io import load_network
from ..service.cache import CacheStats
from ..service.cachetier import CacheBackend
from ..service.service import TravelTimeService, TripTask
from ..sntindex.reader import IndexReader
from ..sntindex.sharded import load_any_index
from .config import EngineConfig
from .request import TripRequest

__all__ = ["TravelTimeDB", "open_db"]

PathSource = Union[str, PathLike]


def _as_task(request: TripRequest) -> TripTask:
    return (request.to_spq(), request.exclude_ids, request.estimator)


class TravelTimeDB:
    """A query session over one travel-time index.

    Build via :func:`open_db` (or directly from an in-memory reader).
    The session is cheap to keep open: the index is immutable, the cache
    is LRU-bounded, and every public method is safe to call from
    multiple threads (the engine is stateless per call and the cache is
    locked).

    Usable as a context manager; closing clears the shared cache.
    """

    def __init__(
        self,
        index: IndexReader,
        network: Optional[RoadNetwork],
        config: Optional[EngineConfig] = None,
        cache: Union[CacheBackend, None, str] = "default",
    ) -> None:
        if network is None:
            # Fail fast with the typed error surface: partitioners and
            # the estimateTT fallback need the network, and a session
            # without one would only crash (opaquely) on its first query.
            raise ConfigurationError(
                "a TravelTimeDB session requires the road network the "
                "index was built over — pass network=RoadNetwork or a "
                "path to its network.json"
            )
        self._config = config if config is not None else EngineConfig()
        # A cache object the caller passed in may be shared with other
        # sessions over the same index; only a session-built cache is
        # cleared on close().
        self._owns_cache = cache == "default"
        self._service = TravelTimeService(
            index,
            cast(RoadNetwork, network),
            cache=cache,
            config=self._config,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def index(self) -> IndexReader:
        return cast(IndexReader, self._service.index)

    @property
    def network(self) -> Optional[RoadNetwork]:
        return cast(Optional[RoadNetwork], self._service.network)

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def engine(self) -> QueryEngine:
        """The underlying engine (advanced use; prefer the db methods)."""
        return cast(QueryEngine, self._service.engine)

    def cache_stats(self) -> Optional[CacheStats]:
        """Shared-cache statistics, or ``None`` when caching is off."""
        return cast(
            Optional[CacheStats], self._service.cache_stats()
        )

    @property
    def last_dedup_stats(self) -> Optional[DedupStats]:
        """Dedup accounting of the most recent batch.

        Populated when ``config.dedup_subqueries`` routed the batch
        through the deduplicating executor: how many sub-queries the
        batch planned, how many were unique, and how many scans the
        deduplication absorbed.  ``None`` before the first such batch
        (or after one that ran without dedup).
        """
        return cast(
            Optional[DedupStats], self._service.last_dedup_stats
        )

    def clear_cache(self) -> None:
        self._service.clear_cache()

    def __enter__(self) -> "TravelTimeDB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Release session resources.

        Closes the session's own cache backend: an in-process
        :class:`SubQueryCache` empties, a cross-process
        :class:`~repro.service.cachetier.SharedCacheTier` releases its
        store connection but *keeps its entries* (warming later
        sessions is the point of the tier).  A caller-provided backend
        is left untouched — other sessions may still be serving warm
        hits from it.  Use :meth:`clear_cache` to empty one explicitly.
        """
        if self._owns_cache:
            self._service.close_cache()

    def __repr__(self) -> str:
        return (
            f"TravelTimeDB(index={type(self.index).__name__}, "
            f"partitioner={self._config.partitioner!r}, "
            f"n_workers={self._config.n_workers})"
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, request: TripRequest) -> TripQueryResult:
        """Answer one :class:`TripRequest` through the shared cache."""
        # engine.query guards the request type itself.
        return cast(
            TripQueryResult, self.engine.query(request)
        )

    def query_many(
        self,
        requests: Sequence[TripRequest],
        n_workers: Optional[int] = None,
        use_processes: bool = False,
    ) -> List[TripQueryResult]:
        """Answer a batch of independent requests.

        Results come back in submission order regardless of worker count
        or execution mode.  With ``config.dedup_subqueries`` the batch
        runs through the deduplicating staged executor (identical
        sub-queries scanned once; accounting in
        :attr:`last_dedup_stats`).  ``use_processes`` fans out over
        forked worker processes instead (Linux/macOS; see
        :meth:`repro.service.TravelTimeService._run_batch_forked` for
        the quiescing contract).
        """
        results, _ = self.query_many_with_stats(
            requests, n_workers=n_workers, use_processes=use_processes
        )
        return results

    def query_many_with_stats(
        self,
        requests: Sequence[TripRequest],
        n_workers: Optional[int] = None,
        use_processes: bool = False,
    ) -> Tuple[List[TripQueryResult], Optional[DedupStats]]:
        """:meth:`query_many`, also returning this batch's dedup stats.

        :attr:`last_dedup_stats` is last-writer-wins, so a caller
        running *concurrent* batches over one session — the HTTP
        serving tier's collection rounds — must take the accounting
        from the return value, where it cannot be clobbered by another
        batch.  ``None`` when the batch did not run through the
        deduplicating executor (``config.dedup_subqueries`` off, or
        process fan-out).
        """
        requests = list(requests)
        for request in requests:
            self._check_request(request)
        batch = self._service._run_batch_with_stats(
            [_as_task(r) for r in requests],
            n_workers=n_workers,
            use_processes=use_processes,
        )
        results = cast(List[TripQueryResult], batch[0])
        stats = cast(Optional[DedupStats], batch[1])
        for request, result in zip(requests, results):
            result.request = request
        return results, stats

    def stream(
        self,
        requests: Iterable[TripRequest],
        n_workers: Optional[int] = None,
        window: Optional[int] = None,
    ) -> Iterator[TripQueryResult]:
        """Answer a request stream, yielding results in request order.

        An order-preserving generator over an *iterable* of requests:
        at most ``window`` requests (default ``4 x n_workers``) are
        in flight at once, so a million-request batch is answered with
        bounded memory — results are yielded as the worker fan-out
        completes them, never materialised as a list, and the input
        iterable is consumed lazily as capacity frees up.

        With ``n_workers=1`` execution stays on the calling thread
        (fully lazy: one request is answered per ``next()``).

        With ``config.dedup_subqueries`` the stream is answered in
        ``window``-sized chunks through the deduplicating batch
        executor: each chunk's sub-queries are collected, identical
        tasks are scanned once, and results still come back in request
        order with at most ``window`` requests materialised.
        """
        workers = self._config.n_workers if n_workers is None else n_workers
        if workers < 1:
            raise ConfigurationError("n_workers must be positive")
        if window is None:
            window = workers * 4
        if window < 1:
            raise ConfigurationError("window must be positive")
        if self._config.dedup_subqueries:
            # window=1 degenerates to per-request chunks — no cross-trip
            # dedup to find, but the stats stay coherent per stream.
            return self._stream_dedup(requests, workers, window)
        if workers == 1:
            return (
                self.query(request) for request in requests
            )
        return self._stream_fanout(requests, workers, window)

    def _stream_dedup(
        self,
        requests: Iterable[TripRequest],
        workers: int,
        window: int,
    ) -> Iterator[TripQueryResult]:
        """Chunked dedup streaming: one executor batch per window.

        :attr:`last_dedup_stats` aggregates over the whole stream — the
        chunks are a scheduling detail, and per-chunk numbers would
        misreport a long stream as its final ``window`` requests.
        """
        from itertools import islice

        total = DedupStats()
        iterator = iter(requests)
        while True:
            chunk = list(islice(iterator, window))
            if not chunk:
                return
            for request in chunk:
                self._check_request(request)
            batch = self._service._run_batch_with_stats(
                [_as_task(r) for r in chunk], n_workers=workers
            )
            results = cast(List[TripQueryResult], batch[0])
            chunk_stats = cast(Optional[DedupStats], batch[1])
            if chunk_stats is not None:
                total.absorb(chunk_stats)
                self._service.last_dedup_stats = total
            for request, result in zip(chunk, results):
                result.request = request
                yield result

    def _stream_fanout(
        self,
        requests: Iterable[TripRequest],
        workers: int,
        window: int,
    ) -> Iterator[TripQueryResult]:
        def answer(request: TripRequest) -> TripQueryResult:
            # self.query validates and attaches the request back-ref;
            # the engine-bound shared cache serves all workers.
            return self.query(request)

        iterator = iter(requests)
        pool: Executor = ThreadPoolExecutor(max_workers=workers)
        try:
            pending: Deque["Future[TripQueryResult]"] = deque()
            for request in iterator:
                pending.append(pool.submit(answer, request))
                if len(pending) >= window:
                    break
            while pending:
                result = pending.popleft().result()
                # Refill before yielding so the pool stays saturated
                # while the consumer processes this result.
                for request in iterator:
                    pending.append(pool.submit(answer, request))
                    break
                yield result
        finally:
            # On early generator close, drop unconsumed work quickly.
            pool.shutdown(wait=True, cancel_futures=True)

    def _check_request(self, request: TripRequest) -> None:
        if not isinstance(request, TripRequest):
            # A malformed *request* is client input, not a session
            # misconfiguration — keep the documented error taxonomy
            # (RequestValidationError -> e.g. HTTP 400 at a front end).
            raise RequestValidationError(
                "expected a TripRequest; got "
                f"{type(request).__name__} — legacy StrictPathQuery "
                "callers should use TripRequest.from_spq(...) or the "
                "deprecated TravelTimeService methods"
            )


def open_db(
    path_or_index: Union[PathSource, IndexReader, None] = None,
    network: Union[RoadNetwork, PathSource, None] = None,
    config: Optional[EngineConfig] = None,
    cache: Union[CacheBackend, None, str] = "default",
) -> TravelTimeDB:
    """Open a travel-time query session — the one public entry point.

    Parameters
    ----------
    path_or_index:
        A saved index directory (monolithic ``meta.json`` layout or
        sharded ``manifest.json`` layout, auto-detected), a shard-store
        URI (``file:...`` or ``object://...``, see
        :mod:`repro.sntindex.store`), or an in-memory
        :class:`IndexReader`.  ``None`` falls back to
        ``config.store``; omitting both is a
        :class:`ConfigurationError`.
    network:
        The road network the index was built over — a
        :class:`RoadNetwork` or a path to its ``network.json``.  When a
        network is given and the index is loaded from disk, the
        manifest's alphabet size is validated *before* any FM partition
        is unpickled.
    config:
        An :class:`EngineConfig`; ``None`` uses defaults.
    cache:
        As for :class:`repro.service.TravelTimeService`: ``"default"``
        resolves the backend from ``config`` (its ``cache`` spec can
        select the cross-process shared tier), ``None`` disables
        cross-query caching, or pass a backend
        (:class:`SubQueryCache` /
        :class:`~repro.service.cachetier.SharedCacheTier`) directly.
    """
    if path_or_index is None:
        # The config can carry the index location (EngineConfig.store)
        # so deployments name it once; an explicit argument wins.
        if config is None or config.store is None:
            raise ConfigurationError(
                "open_db needs an index: pass path_or_index (a "
                "directory, store URI, or IndexReader) or set "
                "EngineConfig.store"
            )
        path_or_index = config.store
    if network is None:
        # Fail before load_any_index touches disk: unpickling a large
        # sharded index only to reject the session would waste minutes.
        raise ConfigurationError(
            "open_db requires the road network the index was built over "
            "— pass network=RoadNetwork or a path to its network.json"
        )
    loaded_network: RoadNetwork
    if isinstance(network, RoadNetwork):
        loaded_network = network
    else:
        loaded_network = cast(RoadNetwork, load_network(Path(network)))

    index: IndexReader
    if isinstance(path_or_index, (str, PathLike)):
        # Pass strings through untouched: a store URI such as
        # ``object://...`` must reach as_store() un-mangled (Path()
        # collapses the double slash).
        index = cast(
            IndexReader,
            load_any_index(
                path_or_index,
                expected_alphabet_size=getattr(
                    loaded_network, "alphabet_size", None
                ),
            ),
        )
    else:
        index = path_or_index
    return TravelTimeDB(index, loaded_network, config=config, cache=cache)
