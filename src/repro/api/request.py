"""Typed query objects: :class:`TripRequest` and :class:`EstimatorMode`.

One trip query used to be encoded three different ways — positional
arguments to the engine's legacy entry point, parallel lists handed to
the service's legacy batch method, and ad-hoc CLI argument plumbing.
:class:`TripRequest` is the single validated, immutable value object all
entry points consume: path, temporal predicate, optional user filter,
excluded trajectory ids, cardinality requirement ``beta``, and the
per-request cardinality-estimator mode.

Every request has a stable wire form (:meth:`TripRequest.to_dict` /
:meth:`TripRequest.from_dict`) designed for the planned external cache /
HTTP tier: plain JSON-compatible scalars and lists, round-tripping to an
equal object (canonicalisation happens at construction, so equality
survives the round trip).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..core.intervals import FixedInterval, PeriodicInterval, TimeInterval
from ..core.spq import StrictPathQuery
from ..errors import IntervalError, RequestValidationError

__all__ = ["EstimatorMode", "TripRequest"]


class EstimatorMode(enum.Enum):
    """Cardinality-estimator modes of paper Section 4.4, plus ``NONE``.

    ``NONE`` explicitly disables the pre-check for one request even when
    the engine is configured with a default estimator; a request whose
    ``estimator`` is ``None`` (the default) inherits the engine default.
    """

    ISA = "ISA"
    BT_FAST = "BT-Fast"
    BT_ACC = "BT-Acc"
    CSS_FAST = "CSS-Fast"
    CSS_ACC = "CSS-Acc"
    NONE = "none"

    @classmethod
    def coerce(
        cls, value: Union["EstimatorMode", str, None]
    ) -> Optional["EstimatorMode"]:
        """Accept an :class:`EstimatorMode`, its string value, or ``None``.

        Raises :class:`RequestValidationError` for unknown strings — a
        typed error, so the CLI maps it to a one-line message + exit 1.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                raise RequestValidationError(
                    f"unknown estimator mode {value!r}; expected one of "
                    f"{[m.value for m in cls]}"
                ) from None
        raise RequestValidationError(
            f"estimator mode must be an EstimatorMode, str, or None; "
            f"got {type(value).__name__}"
        )


def _as_id(value: Any, what: str) -> int:
    """Coerce an id-like number to ``int``, rejecting fractional values.

    ``1.0`` (e.g. a JSON number from a JS client) is accepted; ``1.9``
    must not silently answer a query about id ``1``.
    """
    try:
        as_int = int(value)
    except (TypeError, ValueError) as error:
        raise RequestValidationError(
            f"{what} must be an integer; got {value!r}"
        ) from error
    if as_int != value:
        raise RequestValidationError(
            f"{what} must be an integer; got {value!r}"
        )
    return as_int


def _interval_to_dict(interval: TimeInterval) -> Dict[str, Any]:
    if isinstance(interval, FixedInterval):
        return {"type": "fixed", "start": interval.start, "end": interval.end}
    return {
        "type": "periodic",
        "start_tod": interval.start_tod,
        "duration": interval.duration,
    }


def _interval_from_dict(payload: Mapping[str, Any]) -> TimeInterval:
    try:
        kind = payload["type"]
        if kind == "fixed":
            return FixedInterval(
                _as_id(payload["start"], "interval start"),
                _as_id(payload["end"], "interval end"),
            )
        if kind == "periodic":
            return PeriodicInterval(
                _as_id(payload["start_tod"], "interval start_tod"),
                _as_id(payload["duration"], "interval duration"),
            )
    except IntervalError as error:
        # Degenerate payloads (inverted / zero-width) surface as the
        # request-level typed error, keeping wire-form validation uniform.
        raise RequestValidationError(f"invalid interval: {error}") from error
    except (KeyError, TypeError, ValueError) as error:
        raise RequestValidationError(
            f"malformed interval payload {payload!r}"
        ) from error
    raise RequestValidationError(
        f"unknown interval type {payload.get('type')!r}; "
        "expected 'fixed' or 'periodic'"
    )


@dataclass(frozen=True)
class TripRequest:
    """One validated trip query ``spq(P, I, f, beta)`` plus execution hints.

    Attributes
    ----------
    path:
        The edge-id sequence ``P`` (non-empty; canonicalised to a tuple
        of ``int``).
    interval:
        Temporal predicate ``I`` — a :class:`FixedInterval` or
        :class:`PeriodicInterval`.
    user:
        Non-temporal filter ``f``: restrict to this user id, or ``None``.
    exclude_ids:
        Trajectory ids excluded from retrieval (evaluation workloads keep
        each query trajectory out of its own answer).  Canonicalised to a
        sorted, deduplicated tuple, so equal exclusion sets compare equal.
    beta:
        Cardinality requirement; ``None`` retrieves all eligible
        trajectories.
    estimator:
        Per-request cardinality-estimator mode.  ``None`` inherits the
        engine default; :attr:`EstimatorMode.NONE` disables the pre-check
        for this request.

    All validation failures raise :class:`RequestValidationError` (a
    :class:`~repro.errors.QueryError`), never a bare ``ValueError``.
    """

    path: Tuple[int, ...]
    interval: TimeInterval
    user: Optional[int] = None
    exclude_ids: Tuple[int, ...] = ()
    beta: Optional[int] = None
    estimator: Optional[EstimatorMode] = None

    def __post_init__(self) -> None:
        if isinstance(self.path, (str, bytes)):
            # tuple("12") would silently decompose into digit characters.
            raise RequestValidationError(
                f"path must be a sequence of edge ids, not a string; "
                f"got {self.path!r}"
            )
        try:
            path = tuple(_as_id(edge, "path edge id") for edge in self.path)
        except TypeError as error:
            raise RequestValidationError(
                f"path must be a sequence of edge ids; got {self.path!r}"
            ) from error
        if not path:
            raise RequestValidationError("trip request requires a non-empty path")
        object.__setattr__(self, "path", path)
        if not isinstance(self.interval, (FixedInterval, PeriodicInterval)):
            raise RequestValidationError(
                "interval must be a FixedInterval or PeriodicInterval; "
                f"got {type(self.interval).__name__}"
            )
        if self.user is not None:
            object.__setattr__(self, "user", _as_id(self.user, "user"))
        if isinstance(self.exclude_ids, (str, bytes)):
            # tuple("307") would silently exclude trajectories 3, 0, 7.
            raise RequestValidationError(
                f"exclude_ids must be a sequence of trajectory ids, not "
                f"a string; got {self.exclude_ids!r}"
            )
        try:
            excluded = tuple(
                sorted(
                    {_as_id(i, "exclude_ids entry") for i in self.exclude_ids}
                )
            )
        except TypeError as error:
            raise RequestValidationError(
                f"exclude_ids must be trajectory ids; got {self.exclude_ids!r}"
            ) from error
        object.__setattr__(self, "exclude_ids", excluded)
        if self.beta is not None:
            beta = _as_id(self.beta, "beta")
            if beta < 1:
                raise RequestValidationError(
                    f"beta must be positive when given; got {beta}"
                )
            object.__setattr__(self, "beta", beta)
        object.__setattr__(
            self, "estimator", EstimatorMode.coerce(self.estimator)
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    def to_spq(self) -> StrictPathQuery:
        """The engine-level strict path query this request describes.

        Uses the trusted constructor: this request already canonicalised
        and validated every field, and ``to_spq`` runs once per batch
        item on the serving hot path.
        """
        return StrictPathQuery._from_validated(
            self.path, self.interval, self.user, self.beta
        )

    @classmethod
    def from_spq(
        cls,
        query: StrictPathQuery,
        exclude_ids: Sequence[int] = (),
        estimator: Union[EstimatorMode, str, None] = None,
    ) -> "TripRequest":
        """Lift a legacy :class:`StrictPathQuery` into a request."""
        return cls(
            path=query.path,
            interval=query.interval,
            user=query.user,
            exclude_ids=tuple(exclude_ids),
            beta=query.beta,
            estimator=EstimatorMode.coerce(estimator),
        )

    def with_estimator(
        self, estimator: Union[EstimatorMode, str, None]
    ) -> "TripRequest":
        return replace(self, estimator=EstimatorMode.coerce(estimator))

    # ------------------------------------------------------------------ #
    # Wire form
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible wire form — the contract for the external
        cache / HTTP tier (see ROADMAP)."""
        return {
            "path": list(self.path),
            "interval": _interval_to_dict(self.interval),
            "user": self.user,
            "exclude_ids": list(self.exclude_ids),
            "beta": self.beta,
            "estimator": (
                self.estimator.value if self.estimator is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TripRequest":
        """Inverse of :meth:`to_dict`; validates the payload.

        ``TripRequest.from_dict(r.to_dict()) == r`` for every request.
        """
        if not isinstance(payload, Mapping):
            raise RequestValidationError(
                f"request payload must be a mapping; got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "path", "interval", "user", "exclude_ids", "beta", "estimator"
        }
        if unknown:
            raise RequestValidationError(
                f"unknown request fields {sorted(unknown)!r}"
            )
        try:
            raw_path = payload["path"]
            raw_interval = payload["interval"]
        except KeyError as error:
            raise RequestValidationError(
                f"request payload is missing field {error.args[0]!r}"
            ) from error
        if not isinstance(raw_interval, Mapping):
            raise RequestValidationError(
                f"interval payload must be a mapping; got {raw_interval!r}"
            )
        if isinstance(raw_path, (str, bytes)) or not isinstance(
            raw_path, Sequence
        ):
            raise RequestValidationError(
                f"path payload must be a list of edge ids; got {raw_path!r}"
            )
        raw_excluded = payload.get("exclude_ids")
        if raw_excluded is None:
            raw_excluded = ()
        if isinstance(raw_excluded, (str, bytes)) or not isinstance(
            raw_excluded, Sequence
        ):
            raise RequestValidationError(
                f"exclude_ids payload must be a list of trajectory ids; "
                f"got {raw_excluded!r}"
            )
        return cls(
            path=tuple(raw_path),
            interval=_interval_from_dict(raw_interval),
            user=payload.get("user"),
            exclude_ids=tuple(raw_excluded),
            beta=payload.get("beta"),
            estimator=EstimatorMode.coerce(payload.get("estimator")),
        )
