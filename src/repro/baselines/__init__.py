"""Baselines the paper compares against: speed limits and segment-level
histogram convolution."""

from .segment_level import SegmentLevelBaseline
from .speed_limit import SpeedLimitBaseline

__all__ = ["SegmentLevelBaseline", "SpeedLimitBaseline"]
