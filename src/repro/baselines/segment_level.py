"""Segment-level histogram baseline (paper Sections 1 and 6.1).

The classic approach the paper improves on: pre-compute one travel-time
histogram per segment (optionally one per time-of-day interval, e.g. the
96 15-minute windows mentioned in the introduction), then answer a path
query by convolving the per-segment histograms.  This treats segments as
independent, so turn costs conditioned on the *next* segment and
within-trip correlation are averaged away — which is exactly why it loses
to the strict-path approach ("if all available trajectories for each
segment are used, the error is 13.8 %").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_BUCKET_WIDTH_S, SECONDS_PER_DAY
from ..histogram.histogram import Histogram
from ..network.graph import RoadNetwork
from ..sntindex.index import SNTIndex

__all__ = ["SegmentLevelBaseline"]


class SegmentLevelBaseline:
    """Pre-computed per-segment histograms + convolution at query time."""

    def __init__(
        self,
        index: SNTIndex,
        network: RoadNetwork,
        bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S,
        tod_window_s: Optional[int] = None,
    ):
        """
        Parameters
        ----------
        index:
            The SNT-index (used purely as trajectory storage here).
        network:
            Road network for the speed-limit fallback on data-free edges.
        bucket_width_s:
            Histogram bucket width ``h``.
        tod_window_s:
            When given, one histogram is kept per time-of-day window of
            this width per segment (e.g. 900 for the 96 quarter-hour
            windows); ``None`` pools all data per segment.
        """
        if tod_window_s is not None and not 0 < tod_window_s <= SECONDS_PER_DAY:
            raise ValueError("tod_window_s must be within (0, 1 day]")
        self._network = network
        self._h = float(bucket_width_s)
        self._tod_window = tod_window_s
        self._histograms: Dict[Tuple[int, int], Histogram] = {}
        self._build(index)

    def _build(self, index: SNTIndex) -> None:
        for edge in index.forest.edges():
            columns = index.forest.get(edge).columns
            if self._tod_window is None:
                self._histograms[(edge, 0)] = Histogram.from_values(
                    columns.tt, self._h
                )
                continue
            windows = (
                np.mod(columns.t, SECONDS_PER_DAY) // self._tod_window
            ).astype(np.int64)
            for window in np.unique(windows):
                mask = windows == window
                self._histograms[(edge, int(window))] = Histogram.from_values(
                    columns.tt[mask], self._h
                )

    @property
    def n_histograms(self) -> int:
        """Pre-computation footprint (the paper's storage argument)."""
        return len(self._histograms)

    def _window_of(self, timestamp: int) -> int:
        if self._tod_window is None:
            return 0
        return (timestamp % SECONDS_PER_DAY) // self._tod_window

    def segment_histogram(self, edge: int, timestamp: int) -> Histogram:
        """Histogram of one segment (speed-limit fallback when empty)."""
        histogram = self._histograms.get((edge, self._window_of(timestamp)))
        if histogram is None and self._tod_window is not None:
            # Fall back to pooled data before the speed limit.
            pooled = [
                h for (e, _), h in self._histograms.items() if e == edge
            ]
            if pooled:
                histogram = pooled[0]
                for h in pooled[1:]:
                    histogram = histogram.merge(h)
        if histogram is None or histogram.is_empty():
            histogram = Histogram.from_values(
                [self._network.estimate_tt(edge)], self._h
            )
        return histogram

    def path_histogram(self, path: Sequence[int], timestamp: int) -> Histogram:
        """Convolution of the per-segment histograms along ``path``.

        ``timestamp`` selects the time-of-day window (entry time of the
        trip; the paper's segment-level systems use the departure window).
        """
        if not path:
            raise ValueError("path must be non-empty")
        # Normalise each factor: the product of raw counts over a long
        # path overflows float64, and the distribution is unchanged.
        result = self.segment_histogram(path[0], timestamp).scaled_to_unit_mass()
        for edge in path[1:]:
            factor = self.segment_histogram(edge, timestamp)
            result = result * factor.scaled_to_unit_mass()
        return result

    def estimate(self, path: Sequence[int], timestamp: int = 0) -> float:
        """Point estimate: sum of per-segment mean travel times."""
        return float(
            sum(
                self.segment_histogram(edge, timestamp).mean()
                for edge in path
            )
        )
