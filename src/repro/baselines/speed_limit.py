"""Speed-limit baseline (paper Section 6.1).

"If only the speed limits are used to estimate the travel time, sMAPE is
34.3%" — the weakest baseline: every segment is traversed exactly at its
(possibly imputed) speed limit, durations are summed, no distribution.
"""

from __future__ import annotations

from typing import Sequence

from ..network.graph import RoadNetwork

__all__ = ["SpeedLimitBaseline"]


class SpeedLimitBaseline:
    """Point estimates from ``estimateTT`` only."""

    def __init__(self, network: RoadNetwork):
        self._network = network

    def estimate(self, path: Sequence[int]) -> float:
        """Estimated trip duration in seconds."""
        return self._network.path_estimate_tt(path)
