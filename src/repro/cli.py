"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Generate a synthetic world and write it to disk
    (``network.json`` + ``trajectories.txt``).
``info``
    Print statistics of a stored world.
``query``
    Build the SNT-index over a stored world and answer one strict path
    query, printing the travel-time histogram.

Example
-------
::

    python -m repro generate --scale tiny --seed 0 --out world/
    python -m repro info --world world/
    python -m repro query --world world/ --path 1,2,3 --tod 08:00 \\
        --window-min 15 --beta 10
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.engine import QueryEngine
from .core.intervals import FixedInterval, PeriodicInterval
from .core.partitioning import PARTITIONER_NAMES
from .core.spq import StrictPathQuery
from .network.generator import generate_network
from .network.io import (
    load_network,
    load_trajectories,
    save_network,
    save_trajectories,
)
from .sntindex.index import SNTIndex
from .trajectories.generator import generate_dataset

__all__ = ["main", "build_parser"]

NETWORK_FILE = "network.json"
TRAJECTORY_FILE = "trajectories.txt"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Travel-time histogram retrieval over trajectory data "
            "(EDBT 2019 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic world and store it"
    )
    generate.add_argument("--scale", default="tiny")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output directory")

    info = commands.add_parser("info", help="describe a stored world")
    info.add_argument("--world", required=True, help="world directory")

    query = commands.add_parser(
        "query", help="answer one strict path query over a stored world"
    )
    query.add_argument("--world", required=True)
    query.add_argument(
        "--path",
        required=True,
        help="comma-separated edge ids, e.g. 1,2,3",
    )
    query.add_argument(
        "--tod",
        default=None,
        help="time of day HH:MM for a periodic window (omit: full history)",
    )
    query.add_argument("--window-min", type=int, default=15)
    query.add_argument("--user", type=int, default=None)
    query.add_argument("--beta", type=int, default=None)
    query.add_argument(
        "--partitioner", default="pi_Z", choices=PARTITIONER_NAMES
    )
    query.add_argument(
        "--splitter", default="regular", choices=("regular", "longest_prefix")
    )
    return parser


def _cmd_generate(args) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    dataset = generate_dataset(args.scale, seed=args.seed)
    save_network(dataset.network, out / NETWORK_FILE)
    save_trajectories(dataset.trajectories, out / TRAJECTORY_FILE)
    print(
        f"generated scale={args.scale} seed={args.seed}: "
        f"{dataset.network.n_edges} edges, "
        f"{len(dataset.trajectories)} trajectories -> {out}"
    )
    return 0


def _load_world(world: str):
    base = Path(world)
    network = load_network(base / NETWORK_FILE)
    trajectories = load_trajectories(base / TRAJECTORY_FILE)
    return network, trajectories


def _cmd_info(args) -> int:
    network, trajectories = _load_world(args.world)
    start, end = trajectories.time_span()
    print(f"network:      {network.n_vertices} vertices, "
          f"{network.n_edges} directed edges")
    print(f"trajectories: {len(trajectories)}")
    print(f"traversals:   {trajectories.total_traversals()}")
    print(f"drivers:      {len(set(tr.user_id for tr in trajectories))}")
    print(f"span:         {(end - start) / 86_400:.1f} days")
    return 0


def _parse_tod(text: str) -> int:
    try:
        hours, minutes = text.split(":")
        tod = int(hours) * 3600 + int(minutes) * 60
    except ValueError:
        raise SystemExit(f"invalid --tod {text!r}; expected HH:MM")
    if not 0 <= tod < 86_400:
        raise SystemExit(f"--tod {text!r} out of range")
    return tod


def _cmd_query(args) -> int:
    network, trajectories = _load_world(args.world)
    index = SNTIndex.build(trajectories, network.alphabet_size)
    try:
        path = tuple(int(token) for token in args.path.split(","))
    except ValueError:
        raise SystemExit(f"invalid --path {args.path!r}")
    for edge in path:
        if not network.has_edge(edge):
            raise SystemExit(f"edge {edge} is not part of the network")
    if not network.is_path(list(path)):
        raise SystemExit(f"--path {args.path!r} is not traversable")

    if args.tod is not None:
        interval = PeriodicInterval(
            start_tod=_parse_tod(args.tod) - args.window_min * 30,
            duration=args.window_min * 60,
        )
    else:
        interval = FixedInterval(0, index.t_max)

    engine = QueryEngine(
        index,
        network,
        partitioner=args.partitioner,
        splitter=args.splitter,
    )
    result = engine.trip_query(
        StrictPathQuery(
            path=path, interval=interval, user=args.user, beta=args.beta
        )
    )
    histogram = result.histogram
    print(
        f"answered with {len(result.outcomes)} sub-queries in "
        f"{result.elapsed_s * 1000:.1f} ms"
    )
    print(f"estimated mean: {result.estimated_mean:.1f}s")
    if not histogram.is_empty():
        print(f"median: {histogram.quantile(0.5):.1f}s   "
              f"p90: {histogram.quantile(0.9):.1f}s")
        unit = histogram.scaled_to_unit_mass()
        for bucket, mass in sorted(unit.as_dict().items()):
            if mass >= 0.02:
                width = histogram.bucket_width
                bar = "#" * max(1, int(mass * 50))
                print(f"  [{bucket * width:6.0f}s) {bar}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "query": _cmd_query,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; standard CLI etiquette.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
