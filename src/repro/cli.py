"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Generate a synthetic world and write it to disk
    (``network.json`` + ``trajectories.txt``).
``info``
    Print statistics of a stored world.
``query``
    Build (or load) the SNT-index over a stored world and answer one
    strict path query, printing the travel-time histogram.
``index``
    Build the SNT-index over a stored world and save it to disk, so
    later ``query``/``batch`` runs skip the build.
``batch``
    Answer a file (or inline list) of strict path queries through the
    :class:`~repro.service.TravelTimeService` — shared sub-query cache,
    optional thread-pool fan-out.
``serve``
    Serve a stored world over HTTP: concurrent connections are
    multiplexed onto shared dedup rounds (``POST /v1/query``,
    ``POST /v1/query_batch``, ``GET /healthz``, ``GET /stats``).
``compact``
    Merge runs of small adjacent sealed shards of a saved sharded
    index in place (atomic manifest swap, epoch/lineage bump) —
    answers stay bit-identical, per-query shard fan-out drops.
``migrate``
    Upgrade a pre-v2 saved index directory (monolithic or sharded) to
    the current on-disk format, in place.

``query``/``batch``/``serve`` accept the saved index as ``--index DIR``
or ``--store URI`` (``file:...`` or ``object://...`` — see
:mod:`repro.sntindex.store`); ``compact``/``migrate`` take the
directory or URI directly.

Example
-------
::

    python -m repro generate --scale tiny --seed 0 --out world/
    python -m repro info --world world/
    python -m repro index --world world/ --out world/index/
    python -m repro query --world world/ --index world/index/ \\
        --path 1,2,3 --tod 08:00 --window-min 15 --beta 10
    python -m repro batch --world world/ --index world/index/ \\
        --paths "1,2,3;4,5,6" --workers 4
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import __version__
from .api import EngineConfig, EstimatorMode, TripRequest, open_db
from .core.intervals import FixedInterval, PeriodicInterval
from .errors import ReproError
from .core.partitioning import PARTITIONER_NAMES
from .network.generator import generate_network
from .network.io import (
    load_network,
    load_trajectories,
    save_network,
    save_trajectories,
)
from .sntindex.compaction import CompactionPolicy, compact_index_dir
from .sntindex.index import SNTIndex
from .sntindex.migrate import migrate_index_dir
from .sntindex.sharded import ShardedSNTIndex, load_any_index, read_any_meta
from .sntindex.store import is_store_uri
from .trajectories.generator import generate_dataset

__all__ = ["main", "build_parser"]

NETWORK_FILE = "network.json"
TRAJECTORY_FILE = "trajectories.txt"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Travel-time histogram retrieval over trajectory data "
            "(EDBT 2019 reproduction)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def _add_index_source(subparser) -> None:
        group = subparser.add_mutually_exclusive_group()
        group.add_argument(
            "--index",
            default=None,
            help="saved index directory (skips the in-process build)",
        )
        group.add_argument(
            "--store",
            default=None,
            help="saved index as a shard-store URI (file:... or "
            "object://...; skips the in-process build)",
        )

    generate = commands.add_parser(
        "generate", help="generate a synthetic world and store it"
    )
    generate.add_argument("--scale", default="tiny")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output directory")

    info = commands.add_parser("info", help="describe a stored world")
    info.add_argument("--world", required=True, help="world directory")

    query = commands.add_parser(
        "query", help="answer one strict path query over a stored world"
    )
    query.add_argument("--world", required=True)
    _add_index_source(query)
    query.add_argument(
        "--path",
        required=True,
        help="comma-separated edge ids, e.g. 1,2,3",
    )
    query.add_argument(
        "--tod",
        default=None,
        help="time of day HH:MM for a periodic window (omit: full history)",
    )
    query.add_argument("--window-min", type=int, default=15)
    query.add_argument("--user", type=int, default=None)
    query.add_argument("--beta", type=int, default=None)
    query.add_argument(
        "--partitioner", default="pi_Z", choices=PARTITIONER_NAMES
    )
    query.add_argument(
        "--splitter", default="regular", choices=("regular", "longest_prefix")
    )
    query.add_argument(
        "--estimator",
        default=None,
        choices=tuple(mode.value for mode in EstimatorMode),
        help="cardinality-estimator mode (default: no pre-check)",
    )

    index = commands.add_parser(
        "index", help="build the SNT-index over a stored world and save it"
    )
    index.add_argument("--world", required=True)
    index.add_argument(
        "--out",
        required=True,
        help="output directory or store URI (file:... / object://...)",
    )
    index.add_argument("--partition-days", type=int, default=None)
    index.add_argument("--kind", default="css", choices=("css", "btree"))
    index.add_argument(
        "--shards",
        type=int,
        default=None,
        help="build a time-sliced sharded index with K shards (requires "
        "--partition-days; query/batch detect the layout automatically)",
    )
    index.add_argument(
        "--build-workers",
        type=int,
        default=1,
        help="worker processes for the parallel shard build (with --shards)",
    )

    batch = commands.add_parser(
        "batch",
        help="answer a batch of strict path queries via the service",
    )
    batch.add_argument("--world", required=True)
    _add_index_source(batch)
    source = batch.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--paths",
        default=None,
        help="semicolon-separated paths of comma-separated edge ids, "
        "e.g. '1,2,3;4,5,6'",
    )
    source.add_argument(
        "--paths-file",
        default=None,
        help="file with one query per line: 'EDGE,EDGE,... [HH:MM]'; "
        "blank lines and #-comments are skipped",
    )
    batch.add_argument(
        "--tod",
        default=None,
        help="default time of day HH:MM (lines may override; omit: full "
        "history)",
    )
    batch.add_argument("--window-min", type=int, default=15)
    batch.add_argument("--beta", type=int, default=None)
    batch.add_argument("--workers", type=int, default=1)
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="answer the batch N times (demonstrates the warm cache)",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared sub-query cache",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        help="answer through the cross-process shared cache tier stored "
        "in this directory (created if missing); separate runs — and "
        "forked workers — warm each other's caches",
    )
    batch.add_argument(
        "--partitioner", default="pi_Z", choices=PARTITIONER_NAMES
    )
    batch.add_argument(
        "--splitter", default="regular", choices=("regular", "longest_prefix")
    )
    batch.add_argument(
        "--estimator",
        default=None,
        choices=tuple(mode.value for mode in EstimatorMode),
        help="cardinality-estimator mode (default: no pre-check)",
    )
    batch.add_argument(
        "--stream",
        action="store_true",
        help="stream results as they complete (order-preserving; the "
        "batch is never materialised as a list)",
    )
    batch.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable cross-trip sub-query deduplication (the batch "
        "executor scans each distinct sub-query once per batch by "
        "default; answers are bit-identical either way)",
    )

    serve = commands.add_parser(
        "serve",
        help="serve a stored world over HTTP (shared dedup rounds)",
    )
    serve.add_argument("--world", required=True)
    _add_index_source(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8374,
        help="listen port (0 binds an ephemeral port, printed on start)",
    )
    serve.add_argument(
        "--window-ms",
        type=float,
        default=5.0,
        help="collection window: trips arriving within this many ms "
        "join one dedup round (0 disables windowing)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="maximum trips per collection round",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="admission bound: trips in flight beyond this are "
        "rejected with HTTP 429 + Retry-After",
    )
    serve.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="executor threads running collection rounds",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker threads inside each round",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared sub-query cache",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="serve through the cross-process shared cache tier stored "
        "in this directory (created if missing)",
    )
    serve.add_argument(
        "--cache-ttl-s",
        type=float,
        default=None,
        help="expire shared-tier cache entries older than this many "
        "seconds (requires --cache-dir)",
    )
    serve.add_argument(
        "--partitioner", default="pi_Z", choices=PARTITIONER_NAMES
    )
    serve.add_argument(
        "--splitter", default="regular", choices=("regular", "longest_prefix")
    )

    compact = commands.add_parser(
        "compact",
        help="merge runs of small adjacent sealed shards of a saved "
        "sharded index in place (answers stay bit-identical)",
    )
    compact.add_argument(
        "path",
        help="saved sharded index: a directory or store URI",
    )
    compact.add_argument(
        "--small-traversals",
        type=int,
        default=None,
        help="only shards with at most this many traversals are merge "
        "candidates (default: every sealed shard)",
    )
    compact.add_argument(
        "--min-run",
        type=int,
        default=2,
        help="minimum adjacent candidates worth merging (default: 2)",
    )
    compact.add_argument(
        "--max-group",
        type=int,
        default=None,
        help="cap on shards merged into one (default: unbounded)",
    )

    migrate = commands.add_parser(
        "migrate",
        help="upgrade a pre-v2 saved index directory to the current "
        "on-disk format, in place",
    )
    migrate.add_argument(
        "path",
        help="saved index (monolithic or sharded): a directory or "
        "store URI",
    )
    return parser


def _cmd_generate(args) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    dataset = generate_dataset(args.scale, seed=args.seed)
    save_network(dataset.network, out / NETWORK_FILE)
    save_trajectories(dataset.trajectories, out / TRAJECTORY_FILE)
    print(
        f"generated scale={args.scale} seed={args.seed}: "
        f"{dataset.network.n_edges} edges, "
        f"{len(dataset.trajectories)} trajectories -> {out}"
    )
    return 0


def _load_world(world: str):
    base = Path(world)
    network = load_network(base / NETWORK_FILE)
    trajectories = load_trajectories(base / TRAJECTORY_FILE)
    return network, trajectories


def _cmd_info(args) -> int:
    network, trajectories = _load_world(args.world)
    start, end = trajectories.time_span()
    print(f"network:      {network.n_vertices} vertices, "
          f"{network.n_edges} directed edges")
    print(f"trajectories: {len(trajectories)}")
    print(f"traversals:   {trajectories.total_traversals()}")
    print(f"drivers:      {len(set(tr.user_id for tr in trajectories))}")
    print(f"span:         {(end - start) / 86_400:.1f} days")
    return 0


def _parse_tod(text: str) -> int:
    try:
        hours, minutes = text.split(":")
        tod = int(hours) * 3600 + int(minutes) * 60
    except ValueError:
        raise SystemExit(f"invalid --tod {text!r}; expected HH:MM")
    if not 0 <= tod < 86_400:
        raise SystemExit(f"--tod {text!r} out of range")
    return tod


def _parse_path(text: str, network) -> tuple:
    try:
        path = tuple(int(token) for token in text.split(","))
    except ValueError:
        raise SystemExit(f"invalid path {text!r}")
    for edge in path:
        if not network.has_edge(edge):
            raise SystemExit(f"edge {edge} is not part of the network")
    if not network.is_path(list(path)):
        raise SystemExit(f"path {text!r} is not traversable")
    return path


WORLD_DIGEST_KEY = "world_trajectories_sha256"


def _world_digest(world: str) -> str:
    """SHA-256 of the world's trajectory file (streamed, never parsed)."""
    try:
        with open(Path(world) / TRAJECTORY_FILE, "rb") as handle:
            return hashlib.file_digest(handle, "sha256").hexdigest()
    except OSError as error:
        raise SystemExit(f"cannot read world trajectories: {error}")


def _obtain_index(args, network):
    """Load the saved index (``--index`` dir or ``--store`` URI), else
    build one in process.

    The on-disk layout (monolithic ``meta.json`` dir vs sharded
    ``manifest.json`` dir) is detected automatically; both carry a
    digest of the world they were built from (recorded by the ``index``
    command), so the wrong-world mistake is caught without parsing the
    trajectory file — the point of the rebuild-free cold start.
    Library-made saves without the digest fall back to a parsed
    fingerprint.  The network's alphabet size is checked against the
    manifest *before* any FM partition is unpickled.
    """
    source = getattr(args, "store", None) or getattr(args, "index", None)
    if source is not None:
        _, meta = read_any_meta(source)
        recorded = (meta.get("extra") or {}).get(WORLD_DIGEST_KEY)
        if recorded is not None:
            if recorded != _world_digest(args.world):
                raise SystemExit(
                    f"saved index at {source} was built over a "
                    "different world (trajectory digest mismatch)"
                )
            return load_any_index(
                source,
                expected_alphabet_size=network.alphabet_size,
            )
        trajectories = load_trajectories(
            Path(args.world) / TRAJECTORY_FILE
        )
        index = load_any_index(
            source, expected_alphabet_size=network.alphabet_size
        )
        t_min, t_max = trajectories.time_span()
        if (
            index.build_stats.n_trajectories != len(trajectories)
            or (index.t_min, index.t_max) != (t_min, t_max)
        ):
            raise SystemExit(
                f"saved index at {source} does not match this world "
                f"(trajectories {index.build_stats.n_trajectories} vs "
                f"{len(trajectories)}); was it built over a different "
                "world?"
            )
        return index
    trajectories = load_trajectories(Path(args.world) / TRAJECTORY_FILE)
    return SNTIndex.build(trajectories, network.alphabet_size)


def _interval_for(tod: Optional[str], window_min: int, t_max: int):
    if tod is not None:
        return PeriodicInterval(
            start_tod=_parse_tod(tod) - window_min * 30,
            duration=window_min * 60,
        )
    return FixedInterval(0, t_max)


def _cmd_index(args) -> int:
    network, trajectories = _load_world(args.world)
    if args.shards is not None:
        index = ShardedSNTIndex.build(
            trajectories,
            network.alphabet_size,
            n_shards=args.shards,
            partition_days=args.partition_days,
            kind=args.kind,
            build_workers=args.build_workers,
        )
        layout = f"{index.n_shards} shard(s), "
    else:
        index = SNTIndex.build(
            trajectories,
            network.alphabet_size,
            partition_days=args.partition_days,
            kind=args.kind,
        )
        layout = ""
    target = index.save(
        args.out, extra={WORLD_DIGEST_KEY: _world_digest(args.world)}
    )
    # For a store URI, save() returns the localized cache path — echo
    # the URI the user addressed, not where the bytes were staged.
    shown = args.out if is_store_uri(str(args.out)) else target
    sizes = index.component_sizes()
    print(
        f"built index over {len(trajectories)} trajectories in "
        f"{index.build_stats.setup_seconds:.1f}s "
        f"({layout}{index.n_partitions} partition(s), kind={args.kind}) "
        f"-> {shown}"
    )
    print(f"component bytes: {sizes}")
    return 0


def _cmd_query(args) -> int:
    network = load_network(Path(args.world) / NETWORK_FILE)
    index = _obtain_index(args, network)
    path = _parse_path(args.path, network)
    interval = _interval_for(args.tod, args.window_min, index.t_max)

    db = open_db(
        index,
        network=network,
        config=EngineConfig(
            partitioner=args.partitioner, splitter=args.splitter
        ),
    )
    result = db.query(
        TripRequest(
            path=path,
            interval=interval,
            user=args.user,
            beta=args.beta,
            estimator=args.estimator,
        )
    )
    histogram = result.histogram
    print(
        f"answered with {len(result.outcomes)} sub-queries in "
        f"{result.elapsed_s * 1000:.1f} ms"
    )
    print(f"estimated mean: {result.estimated_mean:.1f}s")
    if not histogram.is_empty():
        print(f"median: {histogram.quantile(0.5):.1f}s   "
              f"p90: {histogram.quantile(0.9):.1f}s")
        unit = histogram.scaled_to_unit_mass()
        for bucket, mass in sorted(unit.as_dict().items()):
            if mass >= 0.02:
                width = histogram.bucket_width
                bar = "#" * max(1, int(mass * 50))
                print(f"  [{bucket * width:6.0f}s) {bar}")
    return 0


def _read_batch_specs(args) -> List[tuple]:
    """Parse the batch source into ``(path_text, tod_text)`` pairs."""
    specs: List[tuple] = []
    if args.paths is not None:
        for chunk in args.paths.split(";"):
            chunk = chunk.strip()
            if chunk:
                specs.append((chunk, args.tod))
    else:
        try:
            lines = Path(args.paths_file).read_text().splitlines()
        except OSError as error:
            raise SystemExit(f"cannot read --paths-file: {error}")
        for line in lines:
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            if len(tokens) > 2:
                raise SystemExit(
                    f"bad query line {line!r}; expected 'PATH [HH:MM]'"
                )
            specs.append(
                (tokens[0], tokens[1] if len(tokens) == 2 else args.tod)
            )
    if not specs:
        raise SystemExit("batch contains no queries")
    return specs


def _result_line(path_text: str, result) -> str:
    histogram = result.histogram
    summary = (
        f"median {histogram.quantile(0.5):7.1f}s  "
        f"p90 {histogram.quantile(0.9):7.1f}s"
        if not histogram.is_empty()
        else "empty histogram"
    )
    return (
        f"{path_text:24s} mean {result.estimated_mean:7.1f}s  {summary}  "
        f"({len(result.outcomes)} sub-queries, "
        f"{result.n_index_scans} scans, {result.n_cache_hits} hits)"
    )


def _cmd_batch(args) -> int:
    if args.workers < 1:
        raise SystemExit("--workers must be positive")
    if args.repeat < 1:
        raise SystemExit("--repeat must be positive")
    if args.cache_dir is not None and args.no_cache:
        raise SystemExit("--cache-dir and --no-cache are mutually exclusive")
    network = load_network(Path(args.world) / NETWORK_FILE)
    index = _obtain_index(args, network)
    specs = _read_batch_specs(args)

    requests = [
        TripRequest(
            path=_parse_path(path_text, network),
            interval=_interval_for(tod, args.window_min, index.t_max),
            beta=args.beta,
            estimator=args.estimator,
        )
        for path_text, tod in specs
    ]

    db = open_db(
        index,
        network=network,
        cache=None if args.no_cache else "default",
        config=EngineConfig(
            partitioner=args.partitioner,
            splitter=args.splitter,
            n_workers=args.workers,
            dedup_subqueries=not args.no_dedup,
            cache=(
                f"shared:{args.cache_dir}"
                if args.cache_dir is not None
                else None
            ),
        ),
    )
    started = time.perf_counter()
    if args.stream:
        # Order-preserving streaming: each answer prints as the fan-out
        # completes it; the warm-up repeats run first so the printed
        # (final) pass reflects the warmed cache like the batched path.
        for _ in range(args.repeat - 1):
            for _result in db.stream(requests):
                pass
        elapsed = 0.0
        for (path_text, _), result in zip(specs, db.stream(requests)):
            # Stamp elapsed at each arrival so the final print is
            # outside the window.  Earlier prints necessarily interleave
            # with in-flight workers — that consumer I/O is part of what
            # streaming measures, so q/s here can trail the batched mode
            # on a slow terminal.
            elapsed = time.perf_counter() - started
            print(_result_line(path_text, result))
    else:
        for _ in range(args.repeat):
            results = db.query_many(requests)
        elapsed = time.perf_counter() - started
        for (path_text, _), result in zip(specs, results):
            print(_result_line(path_text, result))
    n_answered = len(requests) * args.repeat
    qps = n_answered / elapsed if elapsed > 0 else 0.0
    print(
        f"answered {n_answered} queries in {elapsed * 1000:.1f} ms "
        f"({qps:.0f} q/s, workers={args.workers})"
    )
    stats = db.cache_stats()
    if stats is not None:
        print(f"cache: {stats.summary()}")
    dedup = db.last_dedup_stats
    if dedup is not None:
        print(f"dedup: {dedup.summary()}")
    tier_stats = getattr(db.engine.cache, "tier_stats", None)
    if tier_stats is not None:
        print(f"shared tier: {tier_stats().summary()}")
    shard_stats = getattr(index, "shard_stats", None)
    if shard_stats is not None:
        routing = shard_stats()
        print(
            f"shards: per-shard scans {routing.per_shard_scans}; "
            f"{routing.n_shards_pruned} pruned "
            f"({routing.prune_rate:.0%} of routing decisions)"
        )
    return 0


def _cmd_serve(args) -> int:
    from .server import ServerConfig, run_server

    if args.cache_ttl_s is not None and args.cache_dir is None:
        raise SystemExit("--cache-ttl-s requires --cache-dir")
    if args.cache_dir is not None and args.no_cache:
        raise SystemExit("--cache-dir and --no-cache are mutually exclusive")
    network = load_network(Path(args.world) / NETWORK_FILE)
    index = _obtain_index(args, network)
    db = open_db(
        index,
        network=network,
        cache=None if args.no_cache else "default",
        config=EngineConfig(
            partitioner=args.partitioner,
            splitter=args.splitter,
            n_workers=args.workers,
            dedup_subqueries=True,
            cache=(
                f"shared:{args.cache_dir}"
                if args.cache_dir is not None
                else None
            ),
            cache_ttl_s=args.cache_ttl_s,
        ),
    )
    server_config = ServerConfig(
        host=args.host,
        port=args.port,
        window_s=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        executor_workers=args.serve_workers,
    )

    def _announce(server) -> None:
        print(
            f"serving {args.world} on http://{args.host}:{server.port} "
            f"(window {args.window_ms:g} ms, max_batch {args.max_batch}, "
            f"max_inflight {args.max_inflight}); Ctrl-C to stop",
            flush=True,
        )

    # Bind failures (port in use, bad host) raise ServerError — a
    # ReproError — so main() prints one `error: ...` line and exits 1.
    run_server(db, server_config, on_started=_announce)
    print("server stopped (drained)")
    return 0


def _cmd_compact(args) -> int:
    policy = CompactionPolicy(
        small_traversals=args.small_traversals,
        min_run=args.min_run,
        max_group=args.max_group,
    )
    report = compact_index_dir(args.path, policy)
    if report.did_compact:
        merged = ", ".join(
            "+".join(group) for group in report.merged_groups
        )
        print(
            f"compacted {args.path}: {report.n_sealed_before} -> "
            f"{report.n_sealed_after} sealed shard(s) "
            f"(merged {merged}; epoch {report.epoch})"
        )
    else:
        print(
            f"nothing to compact at {args.path}: "
            f"{report.n_sealed_before} sealed shard(s), no run of "
            f"{args.min_run}+ adjacent candidates"
        )
    return 0


def _cmd_migrate(args) -> int:
    report = migrate_index_dir(args.path)
    if report.changed:
        print(
            f"migrated {args.path} ({report.layout}) from format "
            f"version {report.from_version} to {report.to_version} "
            f"({len(report.shard_dirs_migrated)} dir(s) rewritten)"
        )
    else:
        print(
            f"{args.path} ({report.layout}) is already at format "
            f"version {report.to_version}; nothing to do"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes (the documented CLI contract):

    * ``0`` — success;
    * ``1`` — any :class:`~repro.errors.ReproError` (bad saved index,
      malformed request, ...): exactly one ``error: ...`` line on stderr;
    * ``2`` — usage errors (argparse), including ``python -m repro``
      with no arguments, which prints the usage text.
    """
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    if not argv:
        # argparse would reject this too, but with a bare "arguments
        # required" message; the documented contract is usage + exit 2.
        parser.print_usage(sys.stderr)
        print(
            "repro: error: a command is required "
            "(try 'repro --help')",
            file=sys.stderr,
        )
        raise SystemExit(2)
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "query": _cmd_query,
        "index": _cmd_index,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "compact": _cmd_compact,
        "migrate": _cmd_migrate,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        # Library errors (bad saved index, malformed queries, ...) are
        # user input problems, not crashes: exactly one line, exit 1 —
        # for every ReproError subclass, multi-line payloads collapsed.
        message = " ".join(str(error).split()) or type(error).__name__
        print(f"error: {message}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; standard CLI etiquette.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
