"""Experiment scale configuration.

The paper evaluates on 1.4 million trajectories over a 1.46 M-edge network
on a 512 GiB server with a C++17 implementation.  A pure-Python build cannot
hold that scale at benchmark speed (reproduction band: repro = 3/5), so every
dataset-dependent quantity is derived from an :class:`ExperimentScale`.  The
default scale for the benchmark harness is ``small``; tests use ``tiny``.

The scale can be selected with the ``REPRO_SCALE`` environment variable
(``tiny`` / ``small`` / ``medium`` / ``large``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Seconds per day; timestamps in the library are seconds from dataset epoch.
SECONDS_PER_DAY = 86_400

#: Minute resolution of entry timestamps, as in the ITSP dataset (paper 5.1.3).
ENTRY_TIME_RESOLUTION_S = 60

#: Gap (seconds) after which a new trajectory is started (paper 5.1.3).
TRAJECTORY_GAP_S = 180

#: The interval-size ladder A = <15, 30, 45, 60, 90, 120> minutes (paper 5.2).
DEFAULT_INTERVAL_LADDER_S = (900, 1800, 2700, 3600, 5400, 7200)

#: Default histogram bucket width in seconds (paper 6.1 uses h = 10 s).
DEFAULT_BUCKET_WIDTH_S = 10.0

#: Smoothing weight for log-likelihood evaluation (paper 6.1, gamma = 0.99).
DEFAULT_GAMMA = 0.99

#: Default user-predicate selectivity (Selinger et al., paper 4.4).
DEFAULT_USER_SELECTIVITY = 0.1


@dataclass(frozen=True)
class ExperimentScale:
    """All dataset-size knobs for one experiment scale.

    Attributes
    ----------
    name:
        Scale label (``tiny``/``small``/``medium``/``large``).
    grid_towns:
        Number of town grids in the synthetic network.
    town_blocks:
        Side length, in blocks, of each town grid.
    n_drivers:
        Number of distinct drivers (the ITSP dataset has 458 vehicles).
    n_days:
        Length of the data-collection span in days (ITSP: ~944 days).
    trips_per_driver_day:
        Mean number of trips a driver makes per day.
    query_sample_fraction:
        Fraction of second-half trajectories sampled into the query set
        (the paper samples 1 %).
    max_queries:
        Hard cap on the query-set size so benches stay tractable.
    """

    name: str
    grid_towns: int
    town_blocks: int
    n_drivers: int
    n_days: int
    trips_per_driver_day: float
    query_sample_fraction: float
    max_queries: int


_SCALES = {
    "tiny": ExperimentScale(
        name="tiny",
        grid_towns=2,
        town_blocks=4,
        n_drivers=12,
        n_days=56,
        trips_per_driver_day=2.0,
        query_sample_fraction=0.05,
        max_queries=40,
    ),
    "small": ExperimentScale(
        name="small",
        grid_towns=3,
        town_blocks=6,
        n_drivers=60,
        n_days=365,
        trips_per_driver_day=2.2,
        query_sample_fraction=0.01,
        max_queries=120,
    ),
    "medium": ExperimentScale(
        name="medium",
        grid_towns=4,
        town_blocks=8,
        n_drivers=150,
        n_days=540,
        trips_per_driver_day=2.5,
        query_sample_fraction=0.01,
        max_queries=300,
    ),
    "large": ExperimentScale(
        name="large",
        grid_towns=6,
        town_blocks=10,
        n_drivers=458,
        n_days=944,
        trips_per_driver_day=2.5,
        query_sample_fraction=0.01,
        max_queries=1000,
    ),
}


def available_scales() -> tuple:
    """Return the names of all known experiment scales."""
    return tuple(_SCALES)


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve an :class:`ExperimentScale` by name.

    ``None`` falls back to the ``REPRO_SCALE`` environment variable and then
    to ``small``.

    Raises
    ------
    KeyError
        If the name is not a known scale.
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; expected one of {sorted(_SCALES)}"
        ) from None
