"""Core query processing: SPQs, planning, execution, estimation, engine.

Procedure 6 runs as a staged pipeline: :mod:`repro.core.plan` (pure
planning — partitioning, beta policy, shift-and-enlarge, relaxation
expansion), :mod:`repro.core.exec` (the fetch/combine stages and the
deduplicating batch executor), and :class:`QueryEngine` as the thin
driver over them.
"""

from .engine import PerTripCache, QueryEngine, SubQueryOutcome, TripQueryResult
from .estimator import ESTIMATOR_MODES, CardinalityEstimator
from .exec import BatchExecutor, DedupStats, TripMachine
from .intervals import FixedInterval, PeriodicInterval, TimeInterval, is_periodic
from .plan import PlanPolicy, SubQueryTask
from .naive import naive_match_count, naive_travel_times
from .partitioning import PARTITIONER_NAMES, PathSegment, get_partitioner
from .policies import BetaPolicy, uniform_beta_policy, zone_beta_policy
from .splitting import longest_prefix_splitter, modify_subquery, regular_split
from .spq import StrictPathQuery

__all__ = [
    "StrictPathQuery",
    "FixedInterval",
    "PeriodicInterval",
    "TimeInterval",
    "is_periodic",
    "PathSegment",
    "get_partitioner",
    "PARTITIONER_NAMES",
    "regular_split",
    "longest_prefix_splitter",
    "modify_subquery",
    "CardinalityEstimator",
    "ESTIMATOR_MODES",
    "QueryEngine",
    "PerTripCache",
    "TripQueryResult",
    "SubQueryOutcome",
    "PlanPolicy",
    "SubQueryTask",
    "TripMachine",
    "BatchExecutor",
    "DedupStats",
    "naive_travel_times",
    "naive_match_count",
    "BetaPolicy",
    "uniform_beta_policy",
    "zone_beta_policy",
]
