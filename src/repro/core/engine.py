"""The travel-time query engine: ``tripQuery`` (paper Procedure 6).

Pipeline per query (Figure 2):

1. the **Query Partitioner** splits the trip path into sub-queries using a
   ``pi`` method,
2. per sub-query, the optional **Cardinality Estimator** predicts the
   result size and pre-emptively relaxes doomed sub-queries via the
   **Sub-query Splitter** (``sigma``) without touching the temporal index,
3. ``getTravelTimes`` retrieves the travel times from the SNT-index; empty
   or insufficient results are relaxed and retried,
4. later sub-queries' periodic intervals are adapted with shift-and-enlarge
   (Dai et al.), and
5. the **Histogram Builder** turns each travel-time set into a histogram
   and convolves them into the answer for the full path.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_BUCKET_WIDTH_S, DEFAULT_INTERVAL_LADDER_S
from ..errors import QueryError
from ..histogram.histogram import Histogram
from ..network.graph import RoadNetwork
from ..sntindex.reader import IndexReader
from .estimator import CardinalityEstimator
from .intervals import is_periodic
from .partitioning import get_partitioner
from .splitting import longest_prefix_splitter, modify_subquery, regular_split
from .spq import StrictPathQuery

__all__ = [
    "SubQueryOutcome",
    "TripQueryResult",
    "QueryEngine",
    "PerTripCache",
]


class PerTripCache:
    """Default sub-query cache: one FM-index backward search per distinct
    sub-path per trip (estimator, retrieval, and interval-widening retries
    share it), discarded when the trip completes.

    This is the behaviour the engine always had; it implements the same
    protocol as :class:`repro.service.SubQueryCache` but caches ranges
    only — retrieval results and histograms are never shared, because
    within one trip a sub-query is retrieved at most once per interval.
    """

    __slots__ = ("_ranges",)

    def __init__(self):
        self._ranges: dict = {}

    def get_ranges(self, path):
        return self._ranges.get(path)

    def put_ranges(self, path, ranges):
        self._ranges[path] = ranges

    def get_result(self, key):
        return None

    def put_result(self, key, result):
        pass

    def get_histogram(self, key):
        return None

    def put_histogram(self, key, histogram):
        pass


@dataclass
class SubQueryOutcome:
    """One completed sub-query, in path order."""

    query: StrictPathQuery
    values: np.ndarray
    histogram: Histogram
    from_fallback: bool

    @property
    def mean(self) -> float:
        """``X_bar_j`` — used by the sMAPE / weighted-error metrics."""
        return float(self.values.mean())

    @property
    def path_length(self) -> int:
        return self.query.length


@dataclass
class TripQueryResult:
    """Answer for a full trip path."""

    histogram: Histogram
    outcomes: List[SubQueryOutcome]
    #: Number of getTravelTimes index dispatches (including retries).
    n_index_scans: int
    #: Sub-queries skipped by the cardinality estimator before any scan.
    n_estimator_skips: int
    elapsed_s: float
    #: Sub-query retrievals answered from a shared cache instead of an
    #: index scan; always 0 with the default per-trip cache.  The scan
    #: count of an uncached run equals ``n_index_scans + n_cache_hits``,
    #: except under concurrent fan-out, where two threads missing the
    #: same key simultaneously may each scan it once (answers are still
    #: identical; the sum can only over-count scans, never miss work).
    n_cache_hits: int = 0

    @property
    def estimated_mean(self) -> float:
        """Sum of sub-query means — the paper's point estimate."""
        return float(sum(o.mean for o in self.outcomes))

    @property
    def final_subpaths(self) -> List[Tuple[int, ...]]:
        return [o.query.path for o in self.outcomes]

    @property
    def mean_subpath_length(self) -> float:
        """Average final sub-query path length (Figure 7)."""
        lengths = [o.path_length for o in self.outcomes]
        return float(np.mean(lengths)) if lengths else 0.0


class QueryEngine:
    """Answers strict path queries over any :class:`IndexReader`.

    The engine never touches index internals: spatial lookups, estimator
    statistics, and retrieval all go through the reader protocol, so the
    monolithic :class:`repro.sntindex.SNTIndex` and the time-sliced
    :class:`repro.sntindex.ShardedSNTIndex` answer identically here.
    """

    def __init__(
        self,
        index: IndexReader,
        network: RoadNetwork,
        partitioner: str = "pi_Z",
        splitter: str = "regular",
        ladder: Sequence[int] = DEFAULT_INTERVAL_LADDER_S,
        bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S,
        estimator: Optional[CardinalityEstimator] = None,
        max_relaxations: int = 10_000,
        shift_and_enlarge: bool = True,
        beta_policy=None,
        cache=None,
    ):
        """
        Parameters
        ----------
        index, network:
            The index reader (monolithic or sharded SNT-index) and its
            road network.
        partitioner:
            ``pi`` method name (``pi_1``..``pi_3``, ``pi_C``, ``pi_Z``,
            ``pi_ZC``, ``pi_N``, ``pi_MDM``).
        splitter:
            ``"regular"`` (sigma_R) or ``"longest_prefix"`` (sigma_L).
        ladder:
            The interval-size list ``A`` in seconds (ascending).
        bucket_width_s:
            Histogram bucket width ``h``.
        estimator:
            Optional :class:`CardinalityEstimator`; ``None`` disables the
            pre-check (every sub-query goes straight to the index).
        max_relaxations:
            Safety valve against pathological relaxation loops.
        shift_and_enlarge:
            Apply Dai et al.'s interval adaptation to later sub-queries
            (Procedure 6 line 4).  Disable for the ablation study.
        beta_policy:
            Optional per-sub-query cardinality policy (paper Section 7
            future work; see :mod:`repro.core.policies`).  Applied to the
            initial partitioning.
        cache:
            Optional sub-query cache shared across trips (e.g.
            :class:`repro.service.SubQueryCache`).  ``None`` keeps the
            historical behaviour: a fresh :class:`PerTripCache` per
            ``trip_query`` call.  A shared cache must be thread-safe when
            the engine is used from multiple threads.
        """
        if splitter not in ("regular", "longest_prefix"):
            raise QueryError(f"unknown splitter {splitter!r}")
        # A mismatched pair answers silently wrong: edges beyond the
        # index's alphabet get empty ISA ranges and fall through to the
        # other network's estimateTT fallback.
        network_alphabet = getattr(network, "alphabet_size", None)
        if network_alphabet is not None and network_alphabet != index.alphabet_size:
            raise QueryError(
                f"index alphabet size {index.alphabet_size} does not match "
                f"the network's {network_alphabet}; index and network must "
                "come from the same world"
            )
        self.index = index
        self.network = network
        self.partitioner_name = partitioner
        self._partition = get_partitioner(partitioner)
        self.splitter_name = splitter
        self.ladder = tuple(ladder)
        self.bucket_width_s = float(bucket_width_s)
        self.estimator = estimator
        self._max_relaxations = max_relaxations
        self.shift_and_enlarge = shift_and_enlarge
        self.beta_policy = beta_policy
        self.cache = cache
        self._bind_cache(cache)

    def _bind_cache(self, cache) -> None:
        """Pin a shared cache to this engine's index and network (keys
        carry no data identity — and cached fallback results embed the
        network's ``estimateTT`` — so cross-data sharing must be
        rejected)."""
        bind = getattr(cache, "bind_index", None)
        if bind is not None:
            bind(self.index, self.network)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def trip_query(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int] = (),
        cache=None,
    ) -> TripQueryResult:
        """Procedure 6: partition, retrieve, relax, convolve.

        ``cache`` overrides the engine-level cache for this call; by
        default a fresh :class:`PerTripCache` is used, preserving the
        single-trip semantics.  A shared cache returns bit-identical
        histograms — cached retrievals re-enter the procedure at the
        exact point the index scan would have, so only ``n_index_scans``
        (and ``n_cache_hits``) differ.
        """
        started = time.perf_counter()
        split_fn = self._make_split_fn(exclude_ids)
        if cache is None:
            cache = self.cache if self.cache is not None else PerTripCache()
        else:
            self._bind_cache(cache)
        # Appendable readers bump their epoch on mutation; a shared
        # cache drops entries cached against the earlier index state.
        sync_epoch = getattr(cache, "sync_epoch", None)
        if sync_epoch is not None:
            sync_epoch(self.index)
        exclude_key = tuple(sorted({int(i) for i in exclude_ids}))

        segments = self._partition(query.path, self.network)
        queue = deque()
        for segment in segments:
            sub_path = query.path[segment.start : segment.end]
            beta = (
                self.beta_policy(sub_path, query.beta)
                if self.beta_policy is not None
                else query.beta
            )
            queue.append(
                StrictPathQuery(
                    path=sub_path,
                    interval=query.interval,
                    user=query.user if segment.keep_user else None,
                    beta=beta,
                )
            )

        outcomes: List[SubQueryOutcome] = []
        shift_s = 0.0  # S_i: sum of earlier histogram minima
        enlarge_s = 0.0  # R_i: sum of earlier histogram ranges
        n_scans = 0
        n_skips = 0
        n_hits = 0
        relaxations = 0

        while queue:
            sub = queue.popleft()
            ranges = cache.get_ranges(sub.path)
            if ranges is None:
                ranges = self.index.isa_ranges(sub.path)
                cache.put_ranges(sub.path, ranges)

            # Shift-and-enlarge (Procedure 6 line 4), once per chain.
            if (
                self.shift_and_enlarge
                and is_periodic(sub.interval)
                and not sub.shift_applied
                and outcomes
            ):
                sub = sub.with_interval(
                    sub.interval.shifted_and_enlarged(
                        int(shift_s), int(np.ceil(enlarge_s))
                    )
                ).marked_shifted()

            # Cardinality estimator pre-check (Section 4.4).
            if (
                self.estimator is not None
                and sub.beta is not None
                and self.estimator.estimate(sub, isa_ranges=ranges) < sub.beta
            ):
                n_skips += 1
                relaxations += 1
                if relaxations > self._max_relaxations:
                    raise QueryError("relaxation limit exceeded")
                queue.extendleft(
                    reversed(
                        modify_subquery(
                            sub, self.ladder, self.index.t_max, split_fn
                        )
                    )
                )
                continue

            # Every input Procedure 5 reads is part of the key, so a hit
            # is indistinguishable from a scan (bar the timing).
            result_key = (
                sub.path,
                sub.interval,
                sub.user,
                sub.beta,
                exclude_key,
            )
            result = cache.get_result(result_key)
            if result is not None:
                n_hits += 1
            else:
                result = self.index.get_travel_times(
                    sub,
                    fallback_tt=self.network.estimate_tt,
                    exclude_ids=exclude_ids,
                    isa_ranges=ranges,
                )
                n_scans += 1
                cache.put_result(result_key, result)
            if result.is_empty:
                relaxations += 1
                if relaxations > self._max_relaxations:
                    raise QueryError("relaxation limit exceeded")
                queue.extendleft(
                    reversed(
                        modify_subquery(
                            sub, self.ladder, self.index.t_max, split_fn
                        )
                    )
                )
                continue

            histogram_key = (result_key, self.bucket_width_s)
            histogram = cache.get_histogram(histogram_key)
            if histogram is None:
                histogram = Histogram.from_values(
                    result.values, self.bucket_width_s
                )
                cache.put_histogram(histogram_key, histogram)
            outcomes.append(
                SubQueryOutcome(
                    query=sub,
                    values=result.values,
                    histogram=histogram,
                    from_fallback=result.from_fallback,
                )
            )
            shift_s += histogram.min_value
            enlarge_s += histogram.value_range

        histogram = self._convolve([o.histogram for o in outcomes])
        return TripQueryResult(
            histogram=histogram,
            outcomes=outcomes,
            n_index_scans=n_scans,
            n_estimator_skips=n_skips,
            elapsed_s=time.perf_counter() - started,
            n_cache_hits=n_hits,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _make_split_fn(self, exclude_ids: Sequence[int]):
        if self.splitter_name == "regular":
            return regular_split

        def counter(path, interval, user, limit):
            return self.index.count_matches(
                path,
                interval,
                user=user,
                exclude_ids=exclude_ids,
                limit=limit,
            )

        return longest_prefix_splitter(counter)

    def _convolve(self, histograms: List[Histogram]) -> Histogram:
        """Convolve sub-query histograms into one probability histogram.

        Each factor is normalised to unit mass first; convolving dozens of
        raw count histograms would overflow float64 (the product of the
        totals), and the normalised convolution describes the same
        distribution.
        """
        if not histograms:
            return Histogram(self.bucket_width_s, 0, np.zeros(0))
        result = histograms[0].scaled_to_unit_mass()
        for histogram in histograms[1:]:
            result = result * histogram.scaled_to_unit_mass()
        return result
