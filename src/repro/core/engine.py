"""The travel-time query engine: ``tripQuery`` (paper Procedure 6).

Pipeline per query (Figure 2):

1. the **Query Partitioner** splits the trip path into sub-queries using a
   ``pi`` method,
2. per sub-query, the optional **Cardinality Estimator** predicts the
   result size and pre-emptively relaxes doomed sub-queries via the
   **Sub-query Splitter** (``sigma``) without touching the temporal index,
3. ``getTravelTimes`` retrieves the travel times from the SNT-index; empty
   or insufficient results are relaxed and retried,
4. later sub-queries' periodic intervals are adapted with shift-and-enlarge
   (Dai et al.), and
5. the **Histogram Builder** turns each travel-time set into a histogram
   and convolves them into the answer for the full path.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_BUCKET_WIDTH_S, DEFAULT_INTERVAL_LADDER_S
from ..errors import QueryError
from ..histogram.histogram import Histogram
from ..network.graph import RoadNetwork
from ..sntindex.index import SNTIndex
from ..sntindex.procedures import count_matches, get_travel_times
from .estimator import CardinalityEstimator
from .intervals import is_periodic
from .partitioning import get_partitioner
from .splitting import longest_prefix_splitter, modify_subquery, regular_split
from .spq import StrictPathQuery

__all__ = ["SubQueryOutcome", "TripQueryResult", "QueryEngine"]


@dataclass
class SubQueryOutcome:
    """One completed sub-query, in path order."""

    query: StrictPathQuery
    values: np.ndarray
    histogram: Histogram
    from_fallback: bool

    @property
    def mean(self) -> float:
        """``X_bar_j`` — used by the sMAPE / weighted-error metrics."""
        return float(self.values.mean())

    @property
    def path_length(self) -> int:
        return self.query.length


@dataclass
class TripQueryResult:
    """Answer for a full trip path."""

    histogram: Histogram
    outcomes: List[SubQueryOutcome]
    #: Number of getTravelTimes index dispatches (including retries).
    n_index_scans: int
    #: Sub-queries skipped by the cardinality estimator before any scan.
    n_estimator_skips: int
    elapsed_s: float

    @property
    def estimated_mean(self) -> float:
        """Sum of sub-query means — the paper's point estimate."""
        return float(sum(o.mean for o in self.outcomes))

    @property
    def final_subpaths(self) -> List[Tuple[int, ...]]:
        return [o.query.path for o in self.outcomes]

    @property
    def mean_subpath_length(self) -> float:
        """Average final sub-query path length (Figure 7)."""
        lengths = [o.path_length for o in self.outcomes]
        return float(np.mean(lengths)) if lengths else 0.0


class QueryEngine:
    """Answers strict path queries over an SNT-index."""

    def __init__(
        self,
        index: SNTIndex,
        network: RoadNetwork,
        partitioner: str = "pi_Z",
        splitter: str = "regular",
        ladder: Sequence[int] = DEFAULT_INTERVAL_LADDER_S,
        bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S,
        estimator: Optional[CardinalityEstimator] = None,
        max_relaxations: int = 10_000,
        shift_and_enlarge: bool = True,
        beta_policy=None,
    ):
        """
        Parameters
        ----------
        index, network:
            The SNT-index and its road network.
        partitioner:
            ``pi`` method name (``pi_1``..``pi_3``, ``pi_C``, ``pi_Z``,
            ``pi_ZC``, ``pi_N``, ``pi_MDM``).
        splitter:
            ``"regular"`` (sigma_R) or ``"longest_prefix"`` (sigma_L).
        ladder:
            The interval-size list ``A`` in seconds (ascending).
        bucket_width_s:
            Histogram bucket width ``h``.
        estimator:
            Optional :class:`CardinalityEstimator`; ``None`` disables the
            pre-check (every sub-query goes straight to the index).
        max_relaxations:
            Safety valve against pathological relaxation loops.
        shift_and_enlarge:
            Apply Dai et al.'s interval adaptation to later sub-queries
            (Procedure 6 line 4).  Disable for the ablation study.
        beta_policy:
            Optional per-sub-query cardinality policy (paper Section 7
            future work; see :mod:`repro.core.policies`).  Applied to the
            initial partitioning.
        """
        if splitter not in ("regular", "longest_prefix"):
            raise QueryError(f"unknown splitter {splitter!r}")
        self.index = index
        self.network = network
        self.partitioner_name = partitioner
        self._partition = get_partitioner(partitioner)
        self.splitter_name = splitter
        self.ladder = tuple(ladder)
        self.bucket_width_s = float(bucket_width_s)
        self.estimator = estimator
        self._max_relaxations = max_relaxations
        self.shift_and_enlarge = shift_and_enlarge
        self.beta_policy = beta_policy

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def trip_query(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int] = (),
    ) -> TripQueryResult:
        """Procedure 6: partition, retrieve, relax, convolve."""
        started = time.perf_counter()
        split_fn = self._make_split_fn(exclude_ids)

        segments = self._partition(query.path, self.network)
        queue = deque()
        for segment in segments:
            sub_path = query.path[segment.start : segment.end]
            beta = (
                self.beta_policy(sub_path, query.beta)
                if self.beta_policy is not None
                else query.beta
            )
            queue.append(
                StrictPathQuery(
                    path=sub_path,
                    interval=query.interval,
                    user=query.user if segment.keep_user else None,
                    beta=beta,
                )
            )

        outcomes: List[SubQueryOutcome] = []
        shift_s = 0.0  # S_i: sum of earlier histogram minima
        enlarge_s = 0.0  # R_i: sum of earlier histogram ranges
        n_scans = 0
        n_skips = 0
        relaxations = 0
        # One FM-index backward search per distinct sub-path per trip:
        # estimator, retrieval, and interval-widening retries share it.
        ranges_cache: dict = {}

        while queue:
            sub = queue.popleft()
            ranges = ranges_cache.get(sub.path)
            if ranges is None:
                ranges = self.index.isa_ranges(sub.path)
                ranges_cache[sub.path] = ranges

            # Shift-and-enlarge (Procedure 6 line 4), once per chain.
            if (
                self.shift_and_enlarge
                and is_periodic(sub.interval)
                and not sub.shift_applied
                and outcomes
            ):
                sub = sub.with_interval(
                    sub.interval.shifted_and_enlarged(
                        int(shift_s), int(np.ceil(enlarge_s))
                    )
                ).marked_shifted()

            # Cardinality estimator pre-check (Section 4.4).
            if (
                self.estimator is not None
                and sub.beta is not None
                and self.estimator.estimate(sub, isa_ranges=ranges) < sub.beta
            ):
                n_skips += 1
                relaxations += 1
                if relaxations > self._max_relaxations:
                    raise QueryError("relaxation limit exceeded")
                queue.extendleft(
                    reversed(
                        modify_subquery(
                            sub, self.ladder, self.index.t_max, split_fn
                        )
                    )
                )
                continue

            result = get_travel_times(
                self.index,
                sub,
                fallback_tt=self.network.estimate_tt,
                exclude_ids=exclude_ids,
                isa_ranges=ranges,
            )
            n_scans += 1
            if result.is_empty:
                relaxations += 1
                if relaxations > self._max_relaxations:
                    raise QueryError("relaxation limit exceeded")
                queue.extendleft(
                    reversed(
                        modify_subquery(
                            sub, self.ladder, self.index.t_max, split_fn
                        )
                    )
                )
                continue

            histogram = Histogram.from_values(
                result.values, self.bucket_width_s
            )
            outcomes.append(
                SubQueryOutcome(
                    query=sub,
                    values=result.values,
                    histogram=histogram,
                    from_fallback=result.from_fallback,
                )
            )
            shift_s += histogram.min_value
            enlarge_s += histogram.value_range

        histogram = self._convolve([o.histogram for o in outcomes])
        return TripQueryResult(
            histogram=histogram,
            outcomes=outcomes,
            n_index_scans=n_scans,
            n_estimator_skips=n_skips,
            elapsed_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _make_split_fn(self, exclude_ids: Sequence[int]):
        if self.splitter_name == "regular":
            return regular_split

        def counter(path, interval, user, limit):
            return count_matches(
                self.index,
                path,
                interval,
                user=user,
                exclude_ids=exclude_ids,
                limit=limit,
            )

        return longest_prefix_splitter(counter)

    def _convolve(self, histograms: List[Histogram]) -> Histogram:
        """Convolve sub-query histograms into one probability histogram.

        Each factor is normalised to unit mass first; convolving dozens of
        raw count histograms would overflow float64 (the product of the
        totals), and the normalised convolution describes the same
        distribution.
        """
        if not histograms:
            return Histogram(self.bucket_width_s, 0, np.zeros(0))
        result = histograms[0].scaled_to_unit_mass()
        for histogram in histograms[1:]:
            result = result * histogram.scaled_to_unit_mass()
        return result
