"""The travel-time query engine: ``tripQuery`` (paper Procedure 6).

Pipeline per query (Figure 2), run as an explicit staged pipeline:

1. **plan** (:mod:`repro.core.plan`) — the Query Partitioner splits the
   trip path into sub-queries using a ``pi`` method, the optional
   Cardinality Estimator pre-emptively relaxes doomed sub-queries via
   the Sub-query Splitter (``sigma``), later sub-queries' periodic
   intervals are adapted with shift-and-enlarge (Dai et al.), and empty
   or insufficient retrievals are expanded through the relaxation ladder;
2. **fetch** (:mod:`repro.core.exec`) — ``getTravelTimes`` answers each
   planned sub-query from the cache backend or an SNT-index scan;
3. **combine** — the Histogram Builder turns each travel-time set into a
   histogram and convolves them into the answer for the full path.

The engine itself is a thin driver over those stages: :meth:`query`
drives one :class:`~repro.core.exec.TripMachine` sequentially, and
:meth:`run_batch` drives many through the deduplicating
:class:`~repro.core.exec.BatchExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError, RequestValidationError
from ..histogram.histogram import Histogram
from ..network.graph import RoadNetwork
from ..sntindex.reader import IndexReader
from .estimator import CardinalityEstimator
from .exec import (
    BatchExecutor,
    DedupStats,
    TripMachine,
    convolve_histograms,
    execute_fetch,
    prefetch_ranges_many,
)
from .plan import PlanPolicy
from .spq import StrictPathQuery

if TYPE_CHECKING:  # the api layer sits above core; runtime imports are lazy
    from ..api.config import EngineConfig
    from ..api.request import TripRequest

__all__ = [
    "SubQueryOutcome",
    "TripQueryResult",
    "QueryEngine",
    "PerTripCache",
]

#: Sentinel distinguishing "use the engine default estimator" from an
#: explicit ``None`` ("no estimator for this trip").
_DEFAULT_ESTIMATOR = object()


def _default_config() -> "EngineConfig":
    """The default :class:`EngineConfig` (lazy: api sits above core)."""
    from ..api.config import EngineConfig

    return EngineConfig()


class PerTripCache:
    """Default sub-query cache: one FM-index backward search per distinct
    sub-path per trip (estimator, retrieval, and interval-widening retries
    share it), discarded when the trip completes.

    This is the behaviour the engine always had; it implements the same
    protocol as :class:`repro.service.SubQueryCache` but caches ranges
    only — retrieval results and histograms are never shared, because
    within one trip a sub-query is retrieved at most once per interval.
    """

    __slots__ = ("_ranges",)

    def __init__(self):
        self._ranges: dict = {}

    def get_ranges(self, path):
        return self._ranges.get(path)

    def put_ranges(self, path, ranges):
        self._ranges[path] = ranges

    def get_result(self, key):
        return None

    def put_result(self, key, result):
        pass

    def get_histogram(self, key):
        return None

    def put_histogram(self, key, histogram):
        pass


@dataclass
class SubQueryOutcome:
    """One completed sub-query, in path order."""

    query: StrictPathQuery
    values: np.ndarray
    histogram: Histogram
    from_fallback: bool

    @property
    def mean(self) -> float:
        """``X_bar_j`` — used by the sMAPE / weighted-error metrics."""
        return float(self.values.mean())

    @property
    def path_length(self) -> int:
        return self.query.length


@dataclass
class TripQueryResult:
    """Answer for a full trip path."""

    histogram: Histogram
    outcomes: List[SubQueryOutcome]
    #: Number of getTravelTimes index dispatches (including retries).
    n_index_scans: int
    #: Sub-queries skipped by the cardinality estimator before any scan.
    n_estimator_skips: int
    #: Wall-clock seconds until this trip's answer was ready.  Under the
    #: deduplicating batch executor this is completion latency relative
    #: to the *batch* start (trips wait on shared rounds), so summing it
    #: across a batch overcounts the batch's actual work.
    elapsed_s: float
    #: Sub-query retrievals answered from a shared cache instead of an
    #: index scan; always 0 with the default per-trip cache.  The scan
    #: count of an uncached run equals ``n_index_scans + n_cache_hits``,
    #: except under concurrent fan-out, where two threads missing the
    #: same key simultaneously may each scan it once (answers are still
    #: identical; the sum can only over-count scans, never miss work).
    n_cache_hits: int = 0
    #: The :class:`repro.api.TripRequest` this result answers, when the
    #: query entered through the typed API (``None`` on legacy paths).
    request: Optional["TripRequest"] = None

    @property
    def estimated_mean(self) -> float:
        """Sum of sub-query means — the paper's point estimate."""
        return float(sum(o.mean for o in self.outcomes))

    # ------------------------------------------------------------------ #
    # Wire form (external cache / HTTP tier contract)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible wire form, inverse of :meth:`from_dict`.

        Carries everything a remote consumer (or an external cache tier)
        needs to reconstruct the answer: the convolved histogram, the
        per-sub-query outcomes (query, raw travel times, histogram), the
        accounting counters, and the originating request's wire form.
        """

        def outcome_payload(outcome: SubQueryOutcome) -> Dict[str, Any]:
            from ..api.request import _interval_to_dict

            return {
                "path": list(outcome.query.path),
                "interval": _interval_to_dict(outcome.query.interval),
                "user": outcome.query.user,
                "beta": outcome.query.beta,
                "shift_applied": outcome.query.shift_applied,
                "values": [float(v) for v in outcome.values],
                "histogram": outcome.histogram.to_wire(),
                "from_fallback": outcome.from_fallback,
            }

        return {
            "histogram": self.histogram.to_wire(),
            "outcomes": [outcome_payload(o) for o in self.outcomes],
            "n_index_scans": self.n_index_scans,
            "n_estimator_skips": self.n_estimator_skips,
            "elapsed_s": self.elapsed_s,
            "n_cache_hits": self.n_cache_hits,
            "request": self.request.to_dict() if self.request else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TripQueryResult":
        """Reconstruct a result from its wire form."""
        from ..api.request import TripRequest, _interval_from_dict

        outcomes = [
            SubQueryOutcome(
                query=StrictPathQuery(
                    path=tuple(o["path"]),
                    interval=_interval_from_dict(o["interval"]),
                    user=o.get("user"),
                    beta=o.get("beta"),
                    shift_applied=bool(o.get("shift_applied", False)),
                ),
                values=np.asarray(o["values"], dtype=np.float64),
                histogram=Histogram.from_wire(o["histogram"]),
                from_fallback=bool(o["from_fallback"]),
            )
            for o in payload["outcomes"]
        ]
        request = payload.get("request")
        return cls(
            histogram=Histogram.from_wire(payload["histogram"]),
            outcomes=outcomes,
            n_index_scans=int(payload["n_index_scans"]),
            n_estimator_skips=int(payload["n_estimator_skips"]),
            elapsed_s=float(payload["elapsed_s"]),
            n_cache_hits=int(payload.get("n_cache_hits", 0)),
            request=(
                TripRequest.from_dict(request) if request is not None else None
            ),
        )

    @property
    def final_subpaths(self) -> List[Tuple[int, ...]]:
        return [o.query.path for o in self.outcomes]

    @property
    def mean_subpath_length(self) -> float:
        """Average final sub-query path length (Figure 7)."""
        lengths = [o.path_length for o in self.outcomes]
        return float(np.mean(lengths)) if lengths else 0.0


class QueryEngine:
    """Answers strict path queries over any :class:`IndexReader`.

    The engine never touches index internals: spatial lookups, estimator
    statistics, and retrieval all go through the reader protocol, so the
    monolithic :class:`repro.sntindex.SNTIndex` and the time-sliced
    :class:`repro.sntindex.ShardedSNTIndex` answer identically here.
    """

    def __init__(
        self,
        index: IndexReader,
        network: RoadNetwork,
        config: Optional["EngineConfig"] = None,
        *,
        estimator: Optional[CardinalityEstimator] = None,
        cache=None,
    ):
        """
        Parameters
        ----------
        index, network:
            The index reader (monolithic or sharded SNT-index) and its
            road network.
        config:
            An :class:`repro.api.EngineConfig`; ``None`` uses defaults.
            (The pre-redesign keyword/positional forms — ``partitioner=``
            and friends — were removed on the PR-3 deprecation schedule;
            pass a config object.)
        estimator:
            Optional :class:`CardinalityEstimator` instance used as the
            engine default.  When omitted and ``config.estimator_mode``
            is set, one is built from the mode.  A request's own
            ``estimator`` mode always overrides the engine default.
        cache:
            Optional sub-query cache shared across trips (e.g.
            :class:`repro.service.SubQueryCache`).  ``None`` keeps the
            historical behaviour: a fresh :class:`PerTripCache` per
            trip.  A shared cache must be thread-safe when the engine is
            used from multiple threads.
        """
        if config is None:
            config = _default_config()
        if not hasattr(config, "partitioner"):
            raise TypeError(
                f"config must be an EngineConfig; got "
                f"{type(config).__name__} — pass "
                "config=repro.EngineConfig(...)"
            )
        # A mismatched pair answers silently wrong: edges beyond the
        # index's alphabet get empty ISA ranges and fall through to the
        # other network's estimateTT fallback.
        network_alphabet = getattr(network, "alphabet_size", None)
        if network_alphabet is not None and network_alphabet != index.alphabet_size:
            raise QueryError(
                f"index alphabet size {index.alphabet_size} does not match "
                f"the network's {network_alphabet}; index and network must "
                "come from the same world"
            )
        self.index = index
        self.network = network
        self.config = config
        #: The planner's config snapshot; shared by every trip machine.
        self.policy = PlanPolicy.from_config(config)
        self.partitioner_name = self.policy.partitioner_name
        self.splitter_name = self.policy.splitter
        self.ladder = self.policy.ladder
        self.bucket_width_s = self.policy.bucket_width_s
        self.shift_and_enlarge = self.policy.shift_and_enlarge
        self.beta_policy = self.policy.beta_policy
        #: Estimators built per requested mode, shared across trips.  A
        #: CardinalityEstimator is stateless after construction, so one
        #: instance per mode serves concurrent threads; the dict itself
        #: is only mutated under the GIL (worst case two threads build
        #: the same mode once each — identical objects, last write wins).
        self._estimators: Dict[str, CardinalityEstimator] = {}
        if estimator is None and config.estimator_mode is not None:
            estimator = self._resolve_estimator(config.estimator_mode)
        self.estimator = estimator
        self.cache = cache
        self._bind_cache(cache)

    def _bind_cache(self, cache) -> None:
        """Pin a shared cache to this engine's index and network (keys
        carry no data identity — and cached fallback results embed the
        network's ``estimateTT`` — so cross-data sharing must be
        rejected)."""
        bind = getattr(cache, "bind_index", None)
        if bind is not None:
            bind(self.index, self.network)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def query(
        self, request: "TripRequest", cache=None
    ) -> TripQueryResult:
        """Answer one typed :class:`repro.api.TripRequest`.

        The unified entry point (also what :class:`repro.api.TravelTimeDB`
        calls): the request's estimator mode overrides the engine default,
        and the result carries the request as a back-reference.
        """
        if not hasattr(request, "to_spq"):
            # The exact migration mistake the deprecation message invites:
            # passing a legacy StrictPathQuery here.  Keep it typed.
            raise RequestValidationError(
                f"QueryEngine.query expects a TripRequest; got "
                f"{type(request).__name__} — wrap legacy queries with "
                "TripRequest.from_spq(...)"
            )
        result = self._run_task(
            request.to_spq(), request.exclude_ids, request.estimator,
            cache=cache,
        )
        result.request = request
        return result

    def _resolve_estimator(
        self, mode
    ) -> Optional[CardinalityEstimator]:
        """Map a per-request estimator mode to an estimator instance.

        ``None`` inherits the engine default; the ``"none"`` mode
        (``EstimatorMode.NONE``) explicitly disables the pre-check; any
        other mode is built once and shared across trips.
        """
        if mode is None:
            return self.estimator
        value = str(getattr(mode, "value", mode))
        if value == "none":
            return None
        built = self._estimators.get(value)
        if built is None:
            built = CardinalityEstimator(
                self.index,
                mode=value,
                user_selectivity=self.config.user_selectivity,
            )
            self._estimators[value] = built
        return built

    def _run_task(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int],
        estimator_mode,
        cache=None,
    ) -> TripQueryResult:
        """One batch item: spq + exclusions + per-request estimator mode.

        The shared execution primitive behind the service fan-out and the
        streaming API (thread and fork workers both land here).
        """
        return self._run_trip(
            query,
            exclude_ids=exclude_ids,
            cache=cache,
            estimator=self._resolve_estimator(estimator_mode),
        )

    def _run_trip(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int] = (),
        cache=None,
        estimator=_DEFAULT_ESTIMATOR,
    ) -> TripQueryResult:
        """Procedure 6 as a staged pipeline: plan, fetch, combine.

        A thin driver: the :class:`~repro.core.exec.TripMachine` owns
        planning and combining, and every retrieval goes through the
        fetch stage (:func:`~repro.core.exec.execute_fetch`).

        ``cache`` overrides the engine-level cache for this call; by
        default a fresh :class:`PerTripCache` is used, preserving the
        single-trip semantics.  A shared cache returns bit-identical
        histograms — cached retrievals re-enter the procedure at the
        exact point the index scan would have, so only ``n_index_scans``
        (and ``n_cache_hits``) differ.  ``estimator`` overrides the
        engine default for this trip (``None`` disables the pre-check).
        """
        machine = self._make_machine(query, exclude_ids, cache, estimator)
        demand = machine.advance()
        while demand is not None:
            result, from_scan = execute_fetch(
                self.index, self.network, machine.cache, demand
            )
            demand = machine.resume(result, from_scan)
        assert machine.result is not None
        return machine.result

    def run_batch(
        self,
        tasks: Sequence[Tuple[StrictPathQuery, Tuple[int, ...], Any]],
        n_workers: int = 1,
        cache=None,
    ) -> Tuple[List[TripQueryResult], DedupStats]:
        """Answer a batch with cross-trip sub-query deduplication.

        ``tasks`` are ``(query, exclude_ids, estimator_mode)`` triples
        (the service's batch item shape).  All trips plan against the
        shared cache backend (the engine's, or ``cache`` when given; a
        ``None`` engine cache means per-trip caches and in-batch dedup
        only), and the :class:`~repro.core.exec.BatchExecutor` scans
        each unique planned sub-query once per round — bit-identical to
        the sequential per-trip loop, including relaxation re-planning
        when a shared scan comes back empty.  Returns the results in
        submission order plus the batch's dedup accounting.
        """
        shared = cache if cache is not None else self.cache
        if shared is not None:
            self._prepare_cache(shared)
        # Machines are built (and their clocks started) together, so in
        # batch mode a result's ``elapsed_s`` is its completion latency
        # relative to the batch start — the serving-side metric — not
        # the trip's solo service time; timing is explicitly outside
        # the bit-identity contract.
        # Prefetch is deferred and pooled: the whole batch's planned
        # sub-queries resolve through one batched backward search (the
        # levelwise frontier descent needs batch-of-trips scale to pay
        # off), instead of one small per-trip prefetch each.
        machines = [
            TripMachine(
                self.policy,
                self.index,
                self.network,
                shared if shared is not None else PerTripCache(),
                self._resolve_estimator(estimator_mode),
                query,
                exclude_ids,
                prefetch=False,
            )
            for query, exclude_ids, estimator_mode in tasks
        ]
        prefetch_ranges_many(self.index, machines)
        executor = BatchExecutor(
            self.index,
            self.network,
            cache=shared,
            n_workers=n_workers,
        )
        return executor.run(machines), executor.stats

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _prepare_cache(self, cache) -> None:
        """Bind a cache backend and adopt the reader's current epoch."""
        self._bind_cache(cache)
        # Appendable readers bump their epoch on mutation; a shared
        # cache drops entries cached against the earlier index state.
        sync_epoch = getattr(cache, "sync_epoch", None)
        if sync_epoch is not None:
            sync_epoch(self.index)

    def _make_machine(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int],
        cache,
        estimator=_DEFAULT_ESTIMATOR,
    ) -> TripMachine:
        if estimator is _DEFAULT_ESTIMATOR:
            estimator = self.estimator
        if cache is None:
            cache = self.cache if self.cache is not None else PerTripCache()
        self._prepare_cache(cache)
        return TripMachine(
            self.policy,
            self.index,
            self.network,
            cache,
            estimator,
            query,
            exclude_ids,
        )

    def _convolve(self, histograms: List[Histogram]) -> Histogram:
        """Combine stage over this engine's bucket width
        (:func:`repro.core.exec.convolve_histograms`)."""
        return convolve_histograms(histograms, self.bucket_width_s)
