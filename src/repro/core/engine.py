"""The travel-time query engine: ``tripQuery`` (paper Procedure 6).

Pipeline per query (Figure 2):

1. the **Query Partitioner** splits the trip path into sub-queries using a
   ``pi`` method,
2. per sub-query, the optional **Cardinality Estimator** predicts the
   result size and pre-emptively relaxes doomed sub-queries via the
   **Sub-query Splitter** (``sigma``) without touching the temporal index,
3. ``getTravelTimes`` retrieves the travel times from the SNT-index; empty
   or insufficient results are relaxed and retried,
4. later sub-queries' periodic intervals are adapted with shift-and-enlarge
   (Dai et al.), and
5. the **Histogram Builder** turns each travel-time set into a histogram
   and convolves them into the answer for the full path.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    QueryError,
    ReproDeprecationWarning,
    RequestValidationError,
)
from ..histogram.histogram import Histogram
from ..network.graph import RoadNetwork
from ..sntindex.reader import IndexReader
from .estimator import CardinalityEstimator
from .intervals import is_periodic
from .partitioning import get_partitioner
from .splitting import longest_prefix_splitter, modify_subquery, regular_split
from .spq import StrictPathQuery

if TYPE_CHECKING:  # the api layer sits above core; runtime imports are lazy
    from ..api.config import EngineConfig
    from ..api.request import TripRequest

__all__ = [
    "SubQueryOutcome",
    "TripQueryResult",
    "QueryEngine",
    "PerTripCache",
]

#: Constructor kwargs of the pre-EngineConfig ``QueryEngine`` signature,
#: still accepted through the deprecation shim.
_LEGACY_ENGINE_KWARGS = frozenset(
    {
        "partitioner",
        "splitter",
        "ladder",
        "bucket_width_s",
        "max_relaxations",
        "shift_and_enlarge",
        "beta_policy",
    }
)

#: Sentinel distinguishing "use the engine default estimator" from an
#: explicit ``None`` ("no estimator for this trip").
_DEFAULT_ESTIMATOR = object()


def _legacy_config(kwargs: Dict[str, Any]) -> "EngineConfig":
    """Build an :class:`EngineConfig` from pre-redesign constructor kwargs.

    Imported lazily: ``repro.api`` is the layer above core, so core only
    touches it when a caller uses the deprecated signature.
    """
    from ..api.config import EngineConfig

    return EngineConfig(**kwargs)


class PerTripCache:
    """Default sub-query cache: one FM-index backward search per distinct
    sub-path per trip (estimator, retrieval, and interval-widening retries
    share it), discarded when the trip completes.

    This is the behaviour the engine always had; it implements the same
    protocol as :class:`repro.service.SubQueryCache` but caches ranges
    only — retrieval results and histograms are never shared, because
    within one trip a sub-query is retrieved at most once per interval.
    """

    __slots__ = ("_ranges",)

    def __init__(self):
        self._ranges: dict = {}

    def get_ranges(self, path):
        return self._ranges.get(path)

    def put_ranges(self, path, ranges):
        self._ranges[path] = ranges

    def get_result(self, key):
        return None

    def put_result(self, key, result):
        pass

    def get_histogram(self, key):
        return None

    def put_histogram(self, key, histogram):
        pass


@dataclass
class SubQueryOutcome:
    """One completed sub-query, in path order."""

    query: StrictPathQuery
    values: np.ndarray
    histogram: Histogram
    from_fallback: bool

    @property
    def mean(self) -> float:
        """``X_bar_j`` — used by the sMAPE / weighted-error metrics."""
        return float(self.values.mean())

    @property
    def path_length(self) -> int:
        return self.query.length


@dataclass
class TripQueryResult:
    """Answer for a full trip path."""

    histogram: Histogram
    outcomes: List[SubQueryOutcome]
    #: Number of getTravelTimes index dispatches (including retries).
    n_index_scans: int
    #: Sub-queries skipped by the cardinality estimator before any scan.
    n_estimator_skips: int
    elapsed_s: float
    #: Sub-query retrievals answered from a shared cache instead of an
    #: index scan; always 0 with the default per-trip cache.  The scan
    #: count of an uncached run equals ``n_index_scans + n_cache_hits``,
    #: except under concurrent fan-out, where two threads missing the
    #: same key simultaneously may each scan it once (answers are still
    #: identical; the sum can only over-count scans, never miss work).
    n_cache_hits: int = 0
    #: The :class:`repro.api.TripRequest` this result answers, when the
    #: query entered through the typed API (``None`` on legacy paths).
    request: Optional["TripRequest"] = None

    @property
    def estimated_mean(self) -> float:
        """Sum of sub-query means — the paper's point estimate."""
        return float(sum(o.mean for o in self.outcomes))

    # ------------------------------------------------------------------ #
    # Wire form (external cache / HTTP tier contract)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible wire form, inverse of :meth:`from_dict`.

        Carries everything a remote consumer (or an external cache tier)
        needs to reconstruct the answer: the convolved histogram, the
        per-sub-query outcomes (query, raw travel times, histogram), the
        accounting counters, and the originating request's wire form.
        """

        def outcome_payload(outcome: SubQueryOutcome) -> Dict[str, Any]:
            from ..api.request import _interval_to_dict

            return {
                "path": list(outcome.query.path),
                "interval": _interval_to_dict(outcome.query.interval),
                "user": outcome.query.user,
                "beta": outcome.query.beta,
                "shift_applied": outcome.query.shift_applied,
                "values": [float(v) for v in outcome.values],
                "histogram": outcome.histogram.to_wire(),
                "from_fallback": outcome.from_fallback,
            }

        return {
            "histogram": self.histogram.to_wire(),
            "outcomes": [outcome_payload(o) for o in self.outcomes],
            "n_index_scans": self.n_index_scans,
            "n_estimator_skips": self.n_estimator_skips,
            "elapsed_s": self.elapsed_s,
            "n_cache_hits": self.n_cache_hits,
            "request": self.request.to_dict() if self.request else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TripQueryResult":
        """Reconstruct a result from its wire form."""
        from ..api.request import TripRequest, _interval_from_dict

        outcomes = [
            SubQueryOutcome(
                query=StrictPathQuery(
                    path=tuple(o["path"]),
                    interval=_interval_from_dict(o["interval"]),
                    user=o.get("user"),
                    beta=o.get("beta"),
                    shift_applied=bool(o.get("shift_applied", False)),
                ),
                values=np.asarray(o["values"], dtype=np.float64),
                histogram=Histogram.from_wire(o["histogram"]),
                from_fallback=bool(o["from_fallback"]),
            )
            for o in payload["outcomes"]
        ]
        request = payload.get("request")
        return cls(
            histogram=Histogram.from_wire(payload["histogram"]),
            outcomes=outcomes,
            n_index_scans=int(payload["n_index_scans"]),
            n_estimator_skips=int(payload["n_estimator_skips"]),
            elapsed_s=float(payload["elapsed_s"]),
            n_cache_hits=int(payload.get("n_cache_hits", 0)),
            request=(
                TripRequest.from_dict(request) if request is not None else None
            ),
        )

    @property
    def final_subpaths(self) -> List[Tuple[int, ...]]:
        return [o.query.path for o in self.outcomes]

    @property
    def mean_subpath_length(self) -> float:
        """Average final sub-query path length (Figure 7)."""
        lengths = [o.path_length for o in self.outcomes]
        return float(np.mean(lengths)) if lengths else 0.0


class QueryEngine:
    """Answers strict path queries over any :class:`IndexReader`.

    The engine never touches index internals: spatial lookups, estimator
    statistics, and retrieval all go through the reader protocol, so the
    monolithic :class:`repro.sntindex.SNTIndex` and the time-sliced
    :class:`repro.sntindex.ShardedSNTIndex` answer identically here.
    """

    def __init__(
        self,
        index: IndexReader,
        network: RoadNetwork,
        config: Optional["EngineConfig"] = None,
        *,
        estimator: Optional[CardinalityEstimator] = None,
        cache=None,
        **legacy_kwargs,
    ):
        """
        Parameters
        ----------
        index, network:
            The index reader (monolithic or sharded SNT-index) and its
            road network.
        config:
            An :class:`repro.api.EngineConfig`; ``None`` uses defaults.
        estimator:
            Optional :class:`CardinalityEstimator` instance used as the
            engine default.  When omitted and ``config.estimator_mode``
            is set, one is built from the mode.  A request's own
            ``estimator`` mode always overrides the engine default.
        cache:
            Optional sub-query cache shared across trips (e.g.
            :class:`repro.service.SubQueryCache`).  ``None`` keeps the
            historical behaviour: a fresh :class:`PerTripCache` per
            trip.  A shared cache must be thread-safe when the engine is
            used from multiple threads.
        **legacy_kwargs:
            The pre-redesign kwargs (``partitioner``, ``splitter``,
            ``ladder``, ``bucket_width_s``, ``max_relaxations``,
            ``shift_and_enlarge``, ``beta_policy``), still accepted but
            deprecated — pass an :class:`EngineConfig` instead.
        """
        if isinstance(config, str):
            # Pre-redesign third positional: QueryEngine(index, net, "pi_Z").
            if "partitioner" in legacy_kwargs:
                raise TypeError("partitioner given twice")
            legacy_kwargs["partitioner"] = config
            config = None
        if legacy_kwargs:
            unknown = set(legacy_kwargs) - _LEGACY_ENGINE_KWARGS
            if unknown:
                raise TypeError(
                    f"QueryEngine() got unexpected keyword arguments "
                    f"{sorted(unknown)!r}"
                )
            if config is not None:
                raise TypeError(
                    "pass either config=EngineConfig(...) or the legacy "
                    "keyword arguments, not both"
                )
            warnings.warn(
                "QueryEngine(partitioner=..., splitter=..., ...) keyword "
                "arguments are deprecated; pass "
                "config=repro.EngineConfig(...) instead",
                ReproDeprecationWarning,
                stacklevel=2,
            )
            config = _legacy_config(legacy_kwargs)
        elif config is None:
            config = _legacy_config({})
        if not hasattr(config, "partitioner"):
            raise TypeError(
                f"config must be an EngineConfig; got "
                f"{type(config).__name__} — pass "
                "config=repro.EngineConfig(...)"
            )
        # A mismatched pair answers silently wrong: edges beyond the
        # index's alphabet get empty ISA ranges and fall through to the
        # other network's estimateTT fallback.
        network_alphabet = getattr(network, "alphabet_size", None)
        if network_alphabet is not None and network_alphabet != index.alphabet_size:
            raise QueryError(
                f"index alphabet size {index.alphabet_size} does not match "
                f"the network's {network_alphabet}; index and network must "
                "come from the same world"
            )
        self.index = index
        self.network = network
        self.config = config
        self.partitioner_name = config.partitioner
        self._partition = get_partitioner(config.partitioner)
        self.splitter_name = config.splitter
        self.ladder = tuple(config.ladder)
        self.bucket_width_s = float(config.bucket_width_s)
        self._max_relaxations = config.max_relaxations
        self.shift_and_enlarge = config.shift_and_enlarge
        self.beta_policy = config.beta_policy
        #: Estimators built per requested mode, shared across trips.  A
        #: CardinalityEstimator is stateless after construction, so one
        #: instance per mode serves concurrent threads; the dict itself
        #: is only mutated under the GIL (worst case two threads build
        #: the same mode once each — identical objects, last write wins).
        self._estimators: Dict[str, CardinalityEstimator] = {}
        if estimator is None and config.estimator_mode is not None:
            estimator = self._resolve_estimator(config.estimator_mode)
        self.estimator = estimator
        self.cache = cache
        self._bind_cache(cache)

    def _bind_cache(self, cache) -> None:
        """Pin a shared cache to this engine's index and network (keys
        carry no data identity — and cached fallback results embed the
        network's ``estimateTT`` — so cross-data sharing must be
        rejected)."""
        bind = getattr(cache, "bind_index", None)
        if bind is not None:
            bind(self.index, self.network)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def query(
        self, request: "TripRequest", cache=None
    ) -> TripQueryResult:
        """Answer one typed :class:`repro.api.TripRequest`.

        The unified entry point (also what :class:`repro.api.TravelTimeDB`
        calls): the request's estimator mode overrides the engine default,
        and the result carries the request as a back-reference.
        """
        if not hasattr(request, "to_spq"):
            # The exact migration mistake the deprecation message invites:
            # passing a legacy StrictPathQuery here.  Keep it typed.
            raise RequestValidationError(
                f"QueryEngine.query expects a TripRequest; got "
                f"{type(request).__name__} — wrap legacy queries with "
                "TripRequest.from_spq(...)"
            )
        result = self._run_task(
            request.to_spq(), request.exclude_ids, request.estimator,
            cache=cache,
        )
        result.request = request
        return result

    def trip_query(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int] = (),
        cache=None,
    ) -> TripQueryResult:
        """Deprecated: use :meth:`query` with a
        :class:`repro.api.TripRequest` (or :func:`repro.open_db`).

        Procedure 6 semantics are unchanged — this delegates to the same
        internal runner the typed API uses.
        """
        warnings.warn(
            "QueryEngine.trip_query(StrictPathQuery, ...) is deprecated; "
            "use QueryEngine.query(TripRequest) or the repro.open_db() "
            "session facade",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        return self._run_trip(query, exclude_ids=exclude_ids, cache=cache)

    def _resolve_estimator(
        self, mode
    ) -> Optional[CardinalityEstimator]:
        """Map a per-request estimator mode to an estimator instance.

        ``None`` inherits the engine default; the ``"none"`` mode
        (``EstimatorMode.NONE``) explicitly disables the pre-check; any
        other mode is built once and shared across trips.
        """
        if mode is None:
            return self.estimator
        value = str(getattr(mode, "value", mode))
        if value == "none":
            return None
        built = self._estimators.get(value)
        if built is None:
            built = CardinalityEstimator(
                self.index,
                mode=value,
                user_selectivity=self.config.user_selectivity,
            )
            self._estimators[value] = built
        return built

    def _run_task(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int],
        estimator_mode,
        cache=None,
    ) -> TripQueryResult:
        """One batch item: spq + exclusions + per-request estimator mode.

        The shared execution primitive behind the service fan-out and the
        streaming API (thread and fork workers both land here).
        """
        return self._run_trip(
            query,
            exclude_ids=exclude_ids,
            cache=cache,
            estimator=self._resolve_estimator(estimator_mode),
        )

    def _run_trip(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int] = (),
        cache=None,
        estimator=_DEFAULT_ESTIMATOR,
    ) -> TripQueryResult:
        """Procedure 6: partition, retrieve, relax, convolve.

        ``cache`` overrides the engine-level cache for this call; by
        default a fresh :class:`PerTripCache` is used, preserving the
        single-trip semantics.  A shared cache returns bit-identical
        histograms — cached retrievals re-enter the procedure at the
        exact point the index scan would have, so only ``n_index_scans``
        (and ``n_cache_hits``) differ.  ``estimator`` overrides the
        engine default for this trip (``None`` disables the pre-check).
        """
        if estimator is _DEFAULT_ESTIMATOR:
            estimator = self.estimator
        started = time.perf_counter()
        split_fn = self._make_split_fn(exclude_ids)
        if cache is None:
            cache = self.cache if self.cache is not None else PerTripCache()
        else:
            self._bind_cache(cache)
        # Appendable readers bump their epoch on mutation; a shared
        # cache drops entries cached against the earlier index state.
        sync_epoch = getattr(cache, "sync_epoch", None)
        if sync_epoch is not None:
            sync_epoch(self.index)
        exclude_key = tuple(sorted({int(i) for i in exclude_ids}))

        segments = self._partition(query.path, self.network)
        queue = deque()
        for segment in segments:
            sub_path = query.path[segment.start : segment.end]
            beta = (
                self.beta_policy(sub_path, query.beta)
                if self.beta_policy is not None
                else query.beta
            )
            queue.append(
                StrictPathQuery(
                    path=sub_path,
                    interval=query.interval,
                    user=query.user if segment.keep_user else None,
                    beta=beta,
                )
            )

        outcomes: List[SubQueryOutcome] = []
        shift_s = 0.0  # S_i: sum of earlier histogram minima
        enlarge_s = 0.0  # R_i: sum of earlier histogram ranges
        n_scans = 0
        n_skips = 0
        n_hits = 0
        relaxations = 0

        while queue:
            sub = queue.popleft()
            ranges = cache.get_ranges(sub.path)
            if ranges is None:
                ranges = self.index.isa_ranges(sub.path)
                cache.put_ranges(sub.path, ranges)

            # Shift-and-enlarge (Procedure 6 line 4), once per chain.
            if (
                self.shift_and_enlarge
                and is_periodic(sub.interval)
                and not sub.shift_applied
                and outcomes
            ):
                sub = sub.with_interval(
                    sub.interval.shifted_and_enlarged(
                        int(shift_s), int(np.ceil(enlarge_s))
                    )
                ).marked_shifted()

            # Cardinality estimator pre-check (Section 4.4).
            if (
                estimator is not None
                and sub.beta is not None
                and estimator.estimate(sub, isa_ranges=ranges) < sub.beta
            ):
                n_skips += 1
                relaxations += 1
                if relaxations > self._max_relaxations:
                    raise QueryError("relaxation limit exceeded")
                queue.extendleft(
                    reversed(
                        modify_subquery(
                            sub, self.ladder, self.index.t_max, split_fn
                        )
                    )
                )
                continue

            # Every input Procedure 5 reads is part of the key, so a hit
            # is indistinguishable from a scan (bar the timing).
            result_key = (
                sub.path,
                sub.interval,
                sub.user,
                sub.beta,
                exclude_key,
            )
            result = cache.get_result(result_key)
            if result is not None:
                n_hits += 1
            else:
                result = self.index.get_travel_times(
                    sub,
                    fallback_tt=self.network.estimate_tt,
                    exclude_ids=exclude_ids,
                    isa_ranges=ranges,
                )
                n_scans += 1
                cache.put_result(result_key, result)
            if result.is_empty:
                relaxations += 1
                if relaxations > self._max_relaxations:
                    raise QueryError("relaxation limit exceeded")
                queue.extendleft(
                    reversed(
                        modify_subquery(
                            sub, self.ladder, self.index.t_max, split_fn
                        )
                    )
                )
                continue

            histogram_key = (result_key, self.bucket_width_s)
            histogram = cache.get_histogram(histogram_key)
            if histogram is None:
                histogram = Histogram.from_values(
                    result.values, self.bucket_width_s
                )
                cache.put_histogram(histogram_key, histogram)
            outcomes.append(
                SubQueryOutcome(
                    query=sub,
                    values=result.values,
                    histogram=histogram,
                    from_fallback=result.from_fallback,
                )
            )
            shift_s += histogram.min_value
            enlarge_s += histogram.value_range

        histogram = self._convolve([o.histogram for o in outcomes])
        return TripQueryResult(
            histogram=histogram,
            outcomes=outcomes,
            n_index_scans=n_scans,
            n_estimator_skips=n_skips,
            elapsed_s=time.perf_counter() - started,
            n_cache_hits=n_hits,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _make_split_fn(self, exclude_ids: Sequence[int]):
        if self.splitter_name == "regular":
            return regular_split

        def counter(path, interval, user, limit):
            return self.index.count_matches(
                path,
                interval,
                user=user,
                exclude_ids=exclude_ids,
                limit=limit,
            )

        return longest_prefix_splitter(counter)

    def _convolve(self, histograms: List[Histogram]) -> Histogram:
        """Convolve sub-query histograms into one probability histogram.

        Each factor is normalised to unit mass first; convolving dozens of
        raw count histograms would overflow float64 (the product of the
        totals), and the normalised convolution describes the same
        distribution.
        """
        if not histograms:
            return Histogram(self.bucket_width_s, 0, np.zeros(0))
        result = histograms[0].scaled_to_unit_mass()
        for histogram in histograms[1:]:
            result = result * histogram.scaled_to_unit_mass()
        return result
