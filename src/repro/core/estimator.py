"""Cardinality estimation for strict path queries (paper Section 4.4).

Before dispatching a sub-query, the engine asks ``card(Q)`` for an estimate
``beta_hat`` of the result cardinality; if ``beta_hat < beta`` the split
function is applied immediately, saving the temporal index scan.

The estimate combines:

* ``c_P = ed - st`` — the exact number of path traversals, from the
  FM-index backward search (summed over temporal partitions),
* ``sel_tod`` — time-of-day selectivity of a periodic interval: uniform
  (formula 1) in the *Fast* modes, histogram-based (formula 2) in the
  *Acc* modes,
* ``sel_tf`` — time-frame selectivity of a fixed interval: the naive
  min/max ratio (formula 3) in the *BT* modes, the exact CSS-tree range
  count in the *CSS* modes,
* ``sel_u = 1/10`` for user predicates (Selinger et al.).

Modes: ``ISA`` (c_P only), ``BT-Fast``, ``BT-Acc``, ``CSS-Fast``,
``CSS-Acc``.
"""

from __future__ import annotations

from typing import Optional

from ..config import DEFAULT_USER_SELECTIVITY, SECONDS_PER_DAY
from ..errors import EstimatorError
from ..sntindex.reader import IndexReader
from .intervals import FixedInterval, is_periodic
from .spq import StrictPathQuery

__all__ = ["CardinalityEstimator", "ESTIMATOR_MODES"]

ESTIMATOR_MODES = ("ISA", "BT-Fast", "BT-Acc", "CSS-Fast", "CSS-Acc")


class CardinalityEstimator:
    """``card(Q) -> beta_hat`` in one of the paper's five modes.

    Works over any :class:`IndexReader`: per-partition ISA ranges,
    time-of-day selectivity, and segment statistics are protocol calls,
    and a sharded reader reproduces the monolithic statistics exactly
    (integer-exact counts, min/max time bounds).
    """

    def __init__(
        self,
        index: IndexReader,
        mode: str = "CSS-Fast",
        user_selectivity: float = DEFAULT_USER_SELECTIVITY,
    ):
        if mode not in ESTIMATOR_MODES:
            raise EstimatorError(
                f"unknown estimator mode {mode!r}; expected one of "
                f"{ESTIMATOR_MODES}"
            )
        if mode.startswith("CSS") and index.kind != "css":
            raise EstimatorError(
                "CSS estimator modes require a CSS-tree forest"
            )
        if not 0 < user_selectivity <= 1:
            raise EstimatorError("user selectivity must be in (0, 1]")
        self._index = index
        self.mode = mode
        self._sel_u = user_selectivity

    def estimate(self, query: StrictPathQuery, isa_ranges=None) -> float:
        """Return ``beta_hat`` for a sub-query.

        ``isa_ranges`` lets the engine share one FM-index backward search
        between the estimate and the subsequent retrieval.
        """
        index = self._index
        ranges = (
            isa_ranges
            if isa_ranges is not None
            else index.isa_ranges(query.path)
        )
        if not ranges:
            return 0.0
        if self.mode == "ISA":
            return float(sum(ed - st for _, st, ed in ranges))

        first_edge = query.path[0]
        sel_u = self._sel_u if query.user is not None else 1.0
        accurate = self.mode.endswith("Acc")

        estimate = 0.0
        for w, st, ed in ranges:
            c_p = ed - st
            if is_periodic(query.interval):
                sel_tod = self._sel_tod(
                    first_edge, query.interval, w, accurate
                )
                sel_tf = 1.0
            else:
                sel_tod = 1.0
                sel_tf = self._sel_tf(first_edge, query.interval)
            estimate += c_p * sel_tod * sel_tf * sel_u
        return estimate

    def _sel_tod(self, edge, interval, w: int, accurate: bool) -> float:
        """Formula (1) (uniform) or (2) (time-of-day histogram)."""
        if not accurate:
            return min(1.0, interval.duration / SECONDS_PER_DAY)
        return self._index.tod_store.selectivity(
            edge, interval.start_tod, interval.duration, partition=w
        )

    def _sel_tf(self, edge, interval: FixedInterval) -> float:
        """Formula (3) (naive min/max) or the exact CSS range count."""
        phi = self._index.edge_index(edge)
        if phi is None or len(phi) == 0:
            return 0.0
        if self.mode.startswith("CSS"):
            # "the number of entries for which ts <= t < te can be
            # obtained exactly in logarithmic time" (Section 4.4).
            return phi.count_fixed(interval.start, interval.end) / len(phi)
        t_lo, t_hi = phi.min_t(), phi.max_t()
        span = max(1, t_hi - t_lo)
        overlap = max(
            0, min(interval.end, t_hi + 1) - max(interval.start, t_lo)
        )
        return min(1.0, overlap / span)
