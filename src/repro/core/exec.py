"""Query execution: the fetch and combine stages of Procedure 6.

:mod:`repro.core.plan` decides *what to ask the index*; this module asks
it.  Three pieces:

* :class:`TripMachine` — one trip's Procedure 6 state, advanced step by
  step.  ``advance()`` runs the planner (partition queue, shift-and-
  enlarge, estimator pre-check, relaxation) until the trip either needs
  an index fetch — returning a :class:`FetchDemand` — or completes.
  ``resume(result, from_scan)`` feeds the fetch answer back in and
  continues.  The machine performs no index retrieval itself, which is
  what lets one driver answer a trip sequentially and another answer a
  whole batch with cross-trip deduplication, bit-identically.
* :func:`execute_fetch` — the fetch stage for one demand: probe the
  cache backend, scan the :class:`IndexReader` on a miss, store the
  answer.  Exactly the PR-1 cache discipline, so a machine driven
  through it produces the same ``n_index_scans``/``n_cache_hits``
  accounting as the historical monolithic loop.
* :class:`BatchExecutor` — the round-based batch driver: collect the
  pending demands of every in-flight trip, deduplicate identical
  :class:`~repro.core.plan.SubQueryTask` keys, answer each unique task
  once (bulk cache probe, then one index scan per unique miss — grouped
  per edge and per shard when the reader supports
  ``get_travel_times_many``), and
  fan each answer out to every owning trip.  Owners that did not pay
  the scan account a cache hit, exactly as they would have in a
  sequential pass over a shared cache, so ``scans + hits`` stays
  invariant and histograms stay byte-identical.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..errors import QueryError
from ..histogram.histogram import Histogram
from .plan import (
    PlanPolicy,
    SubQueryKey,
    SubQueryTask,
    apply_shift_enlarge,
    canonical_exclude,
    expand_relaxation,
    make_split_fn,
    plan_trip,
    wants_shift_enlarge,
)
from .spq import StrictPathQuery

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..network.graph import RoadNetwork
    from ..sntindex.reader import IndexReader
    from .engine import SubQueryOutcome, TripQueryResult

__all__ = [
    "FetchDemand",
    "TripMachine",
    "DedupStats",
    "BatchExecutor",
    "execute_fetch",
    "prefetch_ranges_many",
    "convolve_histograms",
]

#: Ranges list returned by ``IndexReader.isa_ranges``.
IsaRanges = List[Tuple[int, int, int]]


@dataclass(frozen=True, slots=True)
class FetchDemand:
    """One suspended trip's request to the fetch stage.

    ``ranges`` is the ISA backward search the planner already performed
    (shared with the estimator pre-check); the scan reuses it instead of
    recomputing.
    """

    task: SubQueryTask
    ranges: IsaRanges

    @property
    def key(self) -> SubQueryKey:
        return self.task.key


def convolve_histograms(
    histograms: Sequence[Histogram], bucket_width_s: float
) -> Histogram:
    """Combine stage: convolve sub-query histograms into the answer.

    Each factor is normalised to unit mass first; convolving dozens of
    raw count histograms would overflow float64 (the product of the
    totals), and the normalised convolution describes the same
    distribution.
    """
    if not histograms:
        return Histogram(bucket_width_s, 0, np.zeros(0))
    result = histograms[0].scaled_to_unit_mass()
    for histogram in histograms[1:]:
        result = result * histogram.scaled_to_unit_mass()
    return result


class TripMachine:
    """One trip's Procedure 6 state, advanced step by step.

    The machine owns the work queue of sub-queries, the completed
    outcomes, the shift-and-enlarge accumulators, and the relaxation
    budget.  It touches the index only for planner reads (ISA ranges,
    estimator statistics, ``sigma_L`` count probes) — retrieval is
    always demanded from a driver, so execution strategy (sequential vs
    deduplicated batch) never changes what the machine computes.
    """

    __slots__ = (
        "policy",
        "cache",
        "_index",
        "_network",
        "_estimator",
        "_exclude",
        "_queue",
        "_split_fn",
        "_outcomes",
        "_shift_s",
        "_enlarge_s",
        "_relaxations",
        "_pending",
        "_started",
        "n_scans",
        "n_skips",
        "n_hits",
        "result",
    )

    def __init__(
        self,
        policy: PlanPolicy,
        index: "IndexReader",
        network: "RoadNetwork",
        cache: Any,
        estimator: Any,
        query: StrictPathQuery,
        exclude_ids: Sequence[int],
        prefetch: bool = True,
    ) -> None:
        self.policy = policy
        self.cache = cache
        self._index = index
        self._network = network
        self._estimator = estimator
        self._exclude = canonical_exclude(exclude_ids)
        self._split_fn = make_split_fn(policy, index, self._exclude)
        self._queue: Deque[StrictPathQuery] = deque(
            plan_trip(policy, query, network)
        )
        self._outcomes: List["SubQueryOutcome"] = []
        self._shift_s = 0.0  # S_i: sum of earlier histogram minima
        self._enlarge_s = 0.0  # R_i: sum of earlier histogram ranges
        self._relaxations = 0
        self._pending: Optional[FetchDemand] = None
        self._started = time.perf_counter()
        self.n_scans = 0
        self.n_skips = 0
        self.n_hits = 0
        self.result: Optional["TripQueryResult"] = None
        if prefetch:
            self._prefetch_ranges()

    def _pending_prefetch(self) -> List[Sequence[int]]:
        """Planned sub-query paths whose ISA ranges are not cached yet
        (deduplicated, in queue order)."""
        pending: List[Sequence[int]] = []
        seen: Set[Tuple[int, ...]] = set()
        for sub in self._queue:
            key = tuple(sub.path)
            if key in seen or self.cache.get_ranges(sub.path) is not None:
                continue
            seen.add(key)
            pending.append(sub.path)
        return pending

    def _prefetch_ranges(self) -> None:
        """Warm the range cache for the whole planned queue in one batch.

        When the index offers the batched backward search
        (``isa_ranges_many``), the planned sub-queries' ISA ranges are
        resolved together up front instead of one ``isa_ranges`` call
        per :meth:`advance` step — same ranges (the batched search is
        bit-identical), fetched through one amortised descent.  Served
        through the cache, so dedup/statistics behave as if each lookup
        happened at its usual point.
        """
        batched = getattr(self._index, "isa_ranges_many", None)
        if batched is None:
            return
        pending = self._pending_prefetch()
        if len(pending) < 2:  # nothing to amortise
            return
        for path, ranges in zip(pending, batched(pending)):
            self.cache.put_ranges(path, ranges)

    @property
    def done(self) -> bool:
        return self.result is not None

    def advance(self) -> Optional[FetchDemand]:
        """Plan until the next fetch is needed, or finish the trip.

        Returns the demand to answer (feed it back via :meth:`resume`),
        or ``None`` when the trip completed — :attr:`result` is then set.
        """
        if self._pending is not None:
            raise QueryError(
                "TripMachine.advance called with an unanswered fetch "
                "demand pending"
            )
        policy = self.policy
        while self._queue:
            sub = self._queue.popleft()
            ranges = self.cache.get_ranges(sub.path)
            if ranges is None:
                ranges = self._index.isa_ranges(sub.path)
                self.cache.put_ranges(sub.path, ranges)

            # Shift-and-enlarge (Procedure 6 line 4), once per chain.
            if wants_shift_enlarge(policy, sub, bool(self._outcomes)):
                sub = apply_shift_enlarge(sub, self._shift_s, self._enlarge_s)

            # Cardinality estimator pre-check (Section 4.4).
            if (
                self._estimator is not None
                and sub.beta is not None
                and self._estimator.estimate(sub, isa_ranges=ranges)
                < sub.beta
            ):
                self.n_skips += 1
                self._relax(sub)
                continue

            self._pending = FetchDemand(
                SubQueryTask(sub, self._exclude), ranges
            )
            return self._pending
        self._finish()
        return None

    def resume(self, result: Any, from_scan: bool) -> Optional[FetchDemand]:
        """Feed the pending demand's retrieval result back in.

        ``from_scan`` says who paid for it: ``True`` accounts an index
        scan, ``False`` a cache hit (including a deduplicated fan-out,
        which is a hit against the batch's own just-scanned answer).
        Continues planning and returns the next demand, or ``None`` when
        the trip completed.
        """
        if self._pending is None:
            raise QueryError(
                "TripMachine.resume called without a pending fetch demand"
            )
        demand, self._pending = self._pending, None
        sub = demand.task.query
        if from_scan:
            self.n_scans += 1
        else:
            self.n_hits += 1

        if result.is_empty:
            self._relax(sub)
            return self.advance()

        histogram_key = (demand.key, self.policy.bucket_width_s)
        histogram = self.cache.get_histogram(histogram_key)
        if histogram is None:
            histogram = Histogram.from_values(
                result.values, self.policy.bucket_width_s
            )
            self.cache.put_histogram(histogram_key, histogram)
        from .engine import SubQueryOutcome

        self._outcomes.append(
            SubQueryOutcome(
                query=sub,
                values=result.values,
                histogram=histogram,
                from_fallback=result.from_fallback,
            )
        )
        self._shift_s += histogram.min_value
        self._enlarge_s += histogram.value_range
        return self.advance()

    def _relax(self, sub: StrictPathQuery) -> None:
        """Replace a failing sub-query with its relaxation (Procedure 1)."""
        self._relaxations += 1
        if self._relaxations > self.policy.max_relaxations:
            raise QueryError("relaxation limit exceeded")
        self._queue.extendleft(
            reversed(
                expand_relaxation(
                    self.policy, sub, self._index.t_max, self._split_fn
                )
            )
        )

    def _finish(self) -> None:
        from .engine import TripQueryResult

        self.result = TripQueryResult(
            histogram=convolve_histograms(
                [o.histogram for o in self._outcomes],
                self.policy.bucket_width_s,
            ),
            outcomes=self._outcomes,
            n_index_scans=self.n_scans,
            n_estimator_skips=self.n_skips,
            elapsed_s=time.perf_counter() - self._started,
            n_cache_hits=self.n_hits,
        )


def prefetch_ranges_many(
    index: "IndexReader", machines: Sequence[TripMachine]
) -> None:
    """Pool the per-trip range prefetch across a whole batch of trips.

    Every machine's planned-but-uncached sub-query paths are merged
    (first owner's order, unique across the batch) and resolved with
    **one** ``isa_ranges_many`` call, then fanned back into each owning
    machine's cache.  A batch of trips yields hundreds of sub-paths —
    deep into the regime where the levelwise frontier descent beats the
    scalar walk — where a single trip's queue (~10 paths) sits below
    the bulk crossover.  Pure cache warming with bit-identical ranges,
    so results and dedup statistics are unchanged; machines must have
    been built with ``prefetch=False`` (otherwise they already warmed
    their caches solo, and this finds nothing left to pool).
    """
    batched = getattr(index, "isa_ranges_many", None)
    if batched is None:
        return
    order: List[Sequence[int]] = []
    owners: Dict[Tuple[int, ...], List[TripMachine]] = {}
    for machine in machines:
        for path in machine._pending_prefetch():
            key = tuple(path)
            holders = owners.get(key)
            if holders is None:
                owners[key] = [machine]
                order.append(path)
            else:
                holders.append(machine)
    if len(order) < 2:  # nothing to amortise
        return
    for path, ranges in zip(order, batched(order)):
        for machine in owners[tuple(path)]:
            machine.cache.put_ranges(path, ranges)


def execute_fetch(
    index: "IndexReader",
    network: "RoadNetwork",
    cache: Any,
    demand: FetchDemand,
) -> Tuple[Any, bool]:
    """Fetch stage for one demand: cache probe, then scan-and-store.

    Returns ``(result, from_scan)`` — exactly the PR-1 discipline: a hit
    is indistinguishable from a scan bar the accounting, and a scanned
    answer is stored before anyone consumes it.
    """
    key = demand.key
    result = cache.get_result(key)
    if result is not None:
        return result, False
    result = index.get_travel_times(
        demand.task.query,
        fallback_tt=network.estimate_tt,
        exclude_ids=demand.task.exclude_ids,
        isa_ranges=demand.ranges,
    )
    cache.put_result(key, result)
    return result, True


def _scan_demands(
    index: "IndexReader",
    network: "RoadNetwork",
    demands: Sequence[FetchDemand],
    n_workers: int,
) -> List[Any]:
    """Scan stage over unique demands, in demand order.

    Readers that expose ``get_travel_times_many`` (both built-in index
    kinds) answer the whole set in one call — the monolithic index
    groups queries by first/last edge so each edge's interval selection
    and probe join run once per round, and the sharded router
    additionally walks each shard's columns contiguously; duck-typed
    readers without the method loop.  Thread fan-out is safe because
    every demand is a distinct key and index reads are immutable during
    a batch.
    """
    many = getattr(index, "get_travel_times_many", None)
    if many is not None:
        items = [
            (demand.task.query, demand.task.exclude_ids, demand.ranges)
            for demand in demands
        ]
        if n_workers > 1 and len(items) > 1:
            # Contiguous slices, one grouped call per worker: per-shard
            # locality within each slice, real fan-out across slices
            # (router reads are immutable; its counters are locked).
            width = min(n_workers, len(items))
            step = -(-len(items) // width)  # ceil division
            slices = [
                items[start : start + step]
                for start in range(0, len(items), step)
            ]
            with ThreadPoolExecutor(max_workers=len(slices)) as pool:
                parts = list(
                    pool.map(
                        lambda chunk: list(
                            many(chunk, fallback_tt=network.estimate_tt)
                        ),
                        slices,
                    )
                )
            return [result for part in parts for result in part]
        return list(many(items, fallback_tt=network.estimate_tt))

    def scan(demand: FetchDemand) -> Any:
        return index.get_travel_times(
            demand.task.query,
            fallback_tt=network.estimate_tt,
            exclude_ids=demand.task.exclude_ids,
            isa_ranges=demand.ranges,
        )

    if n_workers > 1 and len(demands) > 1:
        with ThreadPoolExecutor(
            max_workers=min(n_workers, len(demands))
        ) as pool:
            return list(pool.map(scan, demands))
    return [scan(demand) for demand in demands]


@dataclass
class DedupStats:
    """Per-batch accounting of the deduplicating executor."""

    #: Trips answered by the batch.
    n_trips: int = 0
    #: Fetch demands planned across all trips (including relaxation
    #: retries).
    planned_subqueries: int = 0
    #: Distinct sub-query keys the batch actually had to answer.
    unique_subqueries: int = 0
    #: Demands answered straight from the shared cache backend.
    cache_hits: int = 0
    #: Index scans executed (one per unique cache-missing key).
    n_index_scans: int = 0
    #: Executor rounds (batch-wide plan/fetch/combine iterations).
    n_rounds: int = 0

    @property
    def scans_saved(self) -> int:
        """Scans a per-trip loop would have issued that dedup absorbed."""
        return self.planned_subqueries - self.cache_hits - self.n_index_scans

    def absorb(self, other: "DedupStats") -> None:
        """Fold another batch's accounting in (streaming window chunks
        report one aggregate per stream, not per chunk)."""
        self.n_trips += other.n_trips
        self.planned_subqueries += other.planned_subqueries
        self.unique_subqueries += other.unique_subqueries
        self.cache_hits += other.cache_hits
        self.n_index_scans += other.n_index_scans
        self.n_rounds += other.n_rounds

    def summary(self) -> str:
        return (
            f"{self.planned_subqueries} sub-queries planned over "
            f"{self.n_trips} trips, {self.unique_subqueries} unique, "
            f"{self.n_index_scans} scanned, {self.cache_hits} cache hits, "
            f"{self.scans_saved} scans saved by dedup"
        )


class BatchExecutor:
    """Answers a batch of trips with cross-trip sub-query deduplication.

    Each round: every in-flight trip plans up to its next fetch demand;
    demands with identical keys are grouped; each unique key is answered
    once — bulk cache probe first, then one index scan per miss — and
    the answer fans out to every owner.  The first owner (in submission
    order) of a scanned key accounts the scan; every other owner
    accounts a cache hit, exactly what a sequential pass over a shared
    cache would have produced.  Relaxation re-planning stays per-trip:
    an owner resuming with an empty shared answer expands its own
    ladder and re-demands in the next round.

    ``cache`` may be ``None`` (no shared backend): deduplication then
    happens only within a round's demand set, and nothing is stored.
    """

    def __init__(
        self,
        index: "IndexReader",
        network: "RoadNetwork",
        cache: Any = None,
        n_workers: int = 1,
    ) -> None:
        self.index = index
        self.network = network
        self.cache = cache
        self.n_workers = max(1, int(n_workers))
        self.stats = DedupStats()

    # ------------------------------------------------------------------ #
    # Fetch plumbing
    # ------------------------------------------------------------------ #

    def _probe_cache(
        self, keys: Sequence[SubQueryKey]
    ) -> Dict[SubQueryKey, Any]:
        """Bulk result-cache probe (``get_results_many`` when offered).

        The single-key fallback here (and in :meth:`_store_results`)
        keeps duck-typed backends written against the pre-batched
        protocol working — the ``*_many`` methods are an optimisation,
        not a correctness requirement.
        """
        if self.cache is None:
            return {}
        many = getattr(self.cache, "get_results_many", None)
        if many is not None:
            found = many(keys)
        else:
            found = {}
            for key in keys:
                result = self.cache.get_result(key)
                if result is not None:
                    found[key] = result
        return dict(found)

    def _store_results(
        self, answered: Sequence[Tuple[SubQueryKey, Any]]
    ) -> None:
        if self.cache is None or not answered:
            return
        many = getattr(self.cache, "put_results_many", None)
        if many is not None:
            many(answered)
            return
        for key, result in answered:
            self.cache.put_result(key, result)

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #

    def run(
        self, machines: Sequence[TripMachine]
    ) -> List["TripQueryResult"]:
        """Drive the machines to completion; results in submission order."""
        self.stats.n_trips += len(machines)
        pending: List[Tuple[TripMachine, FetchDemand]] = []
        for machine in machines:
            demand = machine.advance()
            if demand is not None:
                pending.append((machine, demand))

        while pending:
            self.stats.n_rounds += 1
            self.stats.planned_subqueries += len(pending)

            # Group demands by key, preserving submission order (both of
            # the unique keys and of each key's owners).
            groups: Dict[SubQueryKey, List[Tuple[TripMachine, FetchDemand]]]
            groups = {}
            for machine, demand in pending:
                groups.setdefault(demand.key, []).append((machine, demand))
            unique_keys = list(groups)
            self.stats.unique_subqueries += len(unique_keys)

            found = self._probe_cache(unique_keys)
            self.stats.cache_hits += sum(
                len(groups[key]) for key in found
            )
            missing = [key for key in unique_keys if key not in found]
            scan_demands = [groups[key][0][1] for key in missing]
            scanned = _scan_demands(
                self.index, self.network, scan_demands, self.n_workers
            )
            self.stats.n_index_scans += len(scanned)
            self._store_results(list(zip(missing, scanned)))
            answers = dict(found)
            answers.update(zip(missing, scanned))
            scanned_keys = set(missing)

            # Fan out, in submission order; the first owner of a scanned
            # key pays the scan, later owners account hits.
            next_pending: List[Tuple[TripMachine, FetchDemand]] = []
            for machine, demand in pending:
                key = demand.key
                from_scan = key in scanned_keys
                if from_scan:
                    scanned_keys.discard(key)
                follow_up = machine.resume(answers[key], from_scan)
                if follow_up is not None:
                    next_pending.append((machine, follow_up))
            pending = next_pending

        results: List["TripQueryResult"] = []
        for machine in machines:
            assert machine.result is not None
            results.append(machine.result)
        return results
