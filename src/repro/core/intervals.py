"""Temporal predicates: fixed and periodic intervals (paper Section 2.3).

A *fixed* interval ``[ts, te)`` matches absolute timestamps.  A *periodic*
interval ``[ts, te)^R`` matches the same time-of-day window on every day,
e.g. "08:00-08:30 on every day".  Procedure 1 widens periodic intervals
through the ladder ``A = <alpha_1, ..., alpha_n>`` symmetrically around the
window centre; Procedure 6 adapts later sub-queries with Dai et al.'s
shift-and-enlarge.

Note: Procedure 6 line 4 literally reads ``Ii <- [ts+Si, te+Ri)``, which can
invert the interval when ``Si`` is large.  We implement the prose ("shifts
the beginning ... and enlarges it"): start += shift, duration += enlarge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..config import SECONDS_PER_DAY
from ..errors import IntervalError

__all__ = [
    "FixedInterval",
    "PeriodicInterval",
    "TimeInterval",
    "is_periodic",
]


@dataclass(frozen=True)
class FixedInterval:
    """Absolute half-open time interval ``[start, end)`` in seconds."""

    start: int
    end: int

    def __post_init__(self):
        if self.end <= self.start:
            raise IntervalError(
                f"fixed interval [{self.start}, {self.end}) is empty"
            )

    @property
    def size(self) -> int:
        """``alpha = te - ts``."""
        return self.end - self.start

    def contains(self, timestamp: int) -> bool:
        return self.start <= timestamp < self.end


@dataclass(frozen=True)
class PeriodicInterval:
    """Time-of-day window ``[start_tod, start_tod + duration)`` daily.

    ``start_tod`` is stored modulo one day; windows may wrap midnight.
    A duration of one full day (or more, clamped) matches every timestamp.
    """

    start_tod: int
    duration: int

    def __post_init__(self):
        if self.duration <= 0:
            raise IntervalError("periodic interval duration must be positive")
        object.__setattr__(self, "start_tod", self.start_tod % SECONDS_PER_DAY)
        object.__setattr__(
            self, "duration", min(self.duration, SECONDS_PER_DAY)
        )

    @classmethod
    def around(cls, center_ts: int, size: int) -> "PeriodicInterval":
        """The window of width ``size`` centred at a timestamp's time of day.

        This is the paper's query derivation ``I^R_tr = [t0 - alpha_min/2,
        t0 + alpha_min/2)^R`` (Section 5.2).
        """
        if size <= 0:
            raise IntervalError("interval size must be positive")
        return cls(start_tod=(center_ts - size // 2) % SECONDS_PER_DAY, duration=size)

    @property
    def size(self) -> int:
        """``alpha = te - ts``."""
        return self.duration

    @property
    def center_tod(self) -> int:
        return (self.start_tod + self.duration // 2) % SECONDS_PER_DAY

    def contains(self, timestamp: int) -> bool:
        return (timestamp - self.start_tod) % SECONDS_PER_DAY < self.duration

    def widened_to(self, new_size: int) -> "PeriodicInterval":
        """``widen``: grow symmetrically to ``new_size`` (Procedure 1)."""
        if new_size < self.duration:
            raise IntervalError("widen cannot shrink an interval")
        if new_size == self.duration:
            return self
        delta = new_size - self.duration
        return PeriodicInterval(
            start_tod=self.start_tod - delta // 2, duration=new_size
        )

    def shrunk_to(self, new_size: int) -> "PeriodicInterval":
        """``shrink``: reduce symmetrically to ``new_size`` (Procedure 1)."""
        if new_size > self.duration:
            raise IntervalError("shrink cannot grow an interval")
        if new_size <= 0:
            raise IntervalError("interval size must be positive")
        delta = self.duration - new_size
        return PeriodicInterval(
            start_tod=self.start_tod + delta // 2, duration=new_size
        )

    def shifted_and_enlarged(self, shift: int, enlarge: int) -> "PeriodicInterval":
        """Shift-and-enlarge for later sub-queries (Section 4.2).

        ``shift`` = sum of earlier sub-path histogram minima (``S_i``),
        ``enlarge`` = sum of earlier histogram ranges (``R_i``).
        """
        if enlarge < 0:
            raise IntervalError("enlarge must be non-negative")
        return PeriodicInterval(
            start_tod=self.start_tod + shift,
            duration=self.duration + enlarge,
        )


TimeInterval = Union[FixedInterval, PeriodicInterval]


def is_periodic(interval: TimeInterval) -> bool:
    """``isPeriodic`` of Procedures 5 and 6."""
    return isinstance(interval, PeriodicInterval)
