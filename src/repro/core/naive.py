"""Naive strict-path-query evaluation by linear scan.

Serves as the correctness oracle for the SNT-index: scans the entire
trajectory set, checks the strict sub-path condition, the temporal
predicate on the *entry time of the first path segment* (``tr.s.t_i in
I``), and the user filter, and returns travel times in ascending entry
time with the ``beta`` cut applied — exactly the semantics of
``getTravelTimes``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..trajectories.model import TrajectorySet
from .intervals import TimeInterval
from .spq import StrictPathQuery

__all__ = ["naive_travel_times", "naive_match_count"]


def _occurrences(
    haystack: Tuple[int, ...], needle: Tuple[int, ...]
) -> List[int]:
    positions = []
    m = len(needle)
    for i in range(len(haystack) - m + 1):
        if haystack[i : i + m] == needle:
            positions.append(i)
    return positions


def _matches(
    trajectories: TrajectorySet,
    path: Sequence[int],
    interval: TimeInterval,
    user: Optional[int],
    exclude_ids: Sequence[int],
) -> List[Tuple[int, float]]:
    """All matching occurrences as ``(entry_time, duration)`` pairs."""
    needle = tuple(path)
    excluded = set(exclude_ids)
    found: List[Tuple[int, float]] = []
    for trajectory in trajectories:
        if trajectory.traj_id in excluded:
            continue
        if user is not None and trajectory.user_id != user:
            continue
        for position in _occurrences(trajectory.path, needle):
            entry = trajectory.points[position].t
            if interval.contains(entry):
                duration = trajectory.duration_of_subpath(
                    position, position + len(needle)
                )
                found.append((entry, duration))
    found.sort(key=lambda pair: pair[0])
    return found


def naive_travel_times(
    trajectories: TrajectorySet,
    query: StrictPathQuery,
    exclude_ids: Sequence[int] = (),
) -> np.ndarray:
    """Travel times a correct index must return for ``query``.

    Matches the index semantics: occurrences ordered by entry time, cut at
    ``beta``; periodic queries below ``beta`` return the empty set.
    """
    found = _matches(
        trajectories, query.path, query.interval, query.user, exclude_ids
    )
    if query.beta is not None:
        from .intervals import is_periodic

        if is_periodic(query.interval) and len(found) < query.beta:
            return np.empty(0, dtype=np.float64)
        found = found[: query.beta]
    return np.asarray([duration for _, duration in found], dtype=np.float64)


def naive_match_count(
    trajectories: TrajectorySet,
    path: Sequence[int],
    interval: TimeInterval,
    user: Optional[int] = None,
    exclude_ids: Sequence[int] = (),
) -> int:
    """Exact number of matching occurrences (q-error ground truth)."""
    return len(_matches(trajectories, path, interval, user, exclude_ids))
