"""Query partitioning methods ``pi`` (paper Section 3.2).

A partitioner turns the full query path into an ordered list of sub-path
segments, each optionally keeping the query's user predicate.  Methods:

* ``pi_p`` (regular, p = 1, 2, 3): fixed-length chunks — the paper's
  baseline, equivalent to pre-computed histograms of length-p sub-paths;
* ``pi_C``: split at segment-category changes;
* ``pi_Z``: split at zone changes;
* ``pi_ZC``: split at (zone, category) changes;
* ``pi_N``: no initial partitioning (relaxation does everything);
* ``pi_MDM``: like ``pi_C`` but the user predicate is kept only on main
  roads (motorways and other major connecting roads), following the
  adaptive-predicate study the paper cites as [26].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..network.categories import MAIN_ROAD_CATEGORIES
from ..network.graph import RoadNetwork

__all__ = ["PathSegment", "get_partitioner", "PARTITIONER_NAMES"]


@dataclass(frozen=True)
class PathSegment:
    """One initial sub-query path: ``path[start:end)`` of the full path."""

    start: int
    end: int
    #: Whether the sub-query keeps the query's user predicate (pi_MDM drops
    #: it off main roads; every other method keeps it everywhere).
    keep_user: bool = True


Partitioner = Callable[[Sequence[int], RoadNetwork], List[PathSegment]]


def _regular(p: int) -> Partitioner:
    if p < 1:
        raise ValueError("regular partition length must be >= 1")

    def partition(path: Sequence[int], network: RoadNetwork) -> List[PathSegment]:
        l = len(path)
        return [
            PathSegment(start, min(start + p, l)) for start in range(0, l, p)
        ]

    return partition


def _split_on(
    key: Callable[[RoadNetwork, int], object]
) -> Partitioner:
    def partition(path: Sequence[int], network: RoadNetwork) -> List[PathSegment]:
        segments: List[PathSegment] = []
        start = 0
        for i in range(1, len(path)):
            if key(network, path[i]) != key(network, path[start]):
                segments.append(PathSegment(start, i))
                start = i
        segments.append(PathSegment(start, len(path)))
        return segments

    return partition


def _category_key(network: RoadNetwork, edge_id: int):
    return network.edge(edge_id).category


def _zone_key(network: RoadNetwork, edge_id: int):
    return network.edge(edge_id).zone


def _zone_category_key(network: RoadNetwork, edge_id: int):
    edge = network.edge(edge_id)
    return (edge.zone, edge.category)


def _none(path: Sequence[int], network: RoadNetwork) -> List[PathSegment]:
    return [PathSegment(0, len(path))]


def _mdm(path: Sequence[int], network: RoadNetwork) -> List[PathSegment]:
    base = _split_on(_category_key)(path, network)
    return [
        PathSegment(
            segment.start,
            segment.end,
            keep_user=(
                network.edge(path[segment.start]).category
                in MAIN_ROAD_CATEGORIES
            ),
        )
        for segment in base
    ]


_PARTITIONERS: Dict[str, Partitioner] = {
    "pi_1": _regular(1),
    "pi_2": _regular(2),
    "pi_3": _regular(3),
    "pi_C": _split_on(_category_key),
    "pi_Z": _split_on(_zone_key),
    "pi_ZC": _split_on(_zone_category_key),
    "pi_N": _none,
    "pi_MDM": _mdm,
}

PARTITIONER_NAMES: Tuple[str, ...] = tuple(_PARTITIONERS)


def get_partitioner(name: str) -> Partitioner:
    """Resolve a partitioning method by its paper name (e.g. ``"pi_Z"``)."""
    try:
        return _PARTITIONERS[name]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {name!r}; expected one of "
            f"{sorted(_PARTITIONERS)}"
        ) from None
