"""Query planning: the pure half of Procedure 6.

The trip-query pipeline (paper Figure 2) has a natural seam: everything
that decides *what to ask the index* — partitioning the trip path into
sub-queries, applying the beta policy, adapting later intervals with
shift-and-enlarge (Dai et al.), and expanding a failing sub-query
through the relaxation ladder (Procedure 1) — is a pure function of the
query, the configuration, and already-completed outcomes.  This module
holds that half; :mod:`repro.core.exec` holds the other half (the fetch
and combine stages that actually touch the :class:`IndexReader` and the
cache backend).

Keeping the planner pure is what makes batched execution safe: a
:class:`SubQueryTask` is answered identically no matter which trip
demanded it, so the batch executor can deduplicate identical tasks
across trips and fan one index scan out to every owner — bit-identical
to running the trips sequentially.

The one impurity is quarantined behind :func:`make_split_fn`: the
``sigma_L`` (longest-prefix) splitter probes the index for match counts
to choose its split point.  The planner treats it as an opaque
callable, so the expansion itself stays deterministic given the
splitter's answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..network.graph import RoadNetwork
from .intervals import PeriodicInterval, TimeInterval, is_periodic
from .partitioning import get_partitioner
from .splitting import longest_prefix_splitter, modify_subquery, regular_split
from .spq import StrictPathQuery

if TYPE_CHECKING:  # the api layer sits above core; runtime imports are lazy
    from ..api.config import EngineConfig
    from ..sntindex.reader import IndexReader

__all__ = [
    "SubQueryKey",
    "SubQueryTask",
    "PlanPolicy",
    "SplitFn",
    "canonical_exclude",
    "plan_trip",
    "apply_shift_enlarge",
    "wants_shift_enlarge",
    "expand_relaxation",
    "make_split_fn",
]

#: Identity of one sub-query fetch: every input Procedure 5 reads.  The
#: field order is load-bearing — it is the cache ``result_key`` of PR 1
#: and the tuple :class:`repro.service.cachetier.SharedCacheTier`
#: unpacks into the cross-process wire-form key, so entries written by
#: earlier versions keep matching.
SubQueryKey = Tuple[
    Tuple[int, ...],
    TimeInterval,
    Optional[int],
    Optional[int],
    Tuple[int, ...],
]

#: Split-point chooser ``sigma`` fed to :func:`modify_subquery`.
SplitFn = Callable[[StrictPathQuery, TimeInterval], int]


def canonical_exclude(exclude_ids: Iterable[int]) -> Tuple[int, ...]:
    """Sorted, deduplicated exclusion tuple — the cache-key form."""
    return tuple(sorted({int(i) for i in exclude_ids}))


@dataclass(frozen=True, slots=True)
class SubQueryTask:
    """One plannable unit of fetch work.

    The answer to a task depends only on its fields (retrieval is
    membership-filtered on ``exclude_ids``, so the canonical sorted
    tuple answers for every raw ordering) — never on the trip that
    emitted it.  That independence is the entire basis of cross-trip
    deduplication.
    """

    query: StrictPathQuery
    #: Canonical (sorted, deduplicated) excluded trajectory ids.
    exclude_ids: Tuple[int, ...]

    @property
    def key(self) -> SubQueryKey:
        """The shared-cache ``result_key`` (PR-1/PR-4 contract)."""
        query = self.query
        return (
            query.path,
            query.interval,
            query.user,
            query.beta,
            self.exclude_ids,
        )


@dataclass(frozen=True)
class PlanPolicy:
    """The config-derived inputs of the planner, resolved once per engine.

    A read-only snapshot of the answer-shaping
    :class:`~repro.api.EngineConfig` fields plus the resolved
    partitioner callable, so the planner never reaches back into the
    config object on the per-sub-query hot path.
    """

    partitioner_name: str
    partition: Callable[[Sequence[int], RoadNetwork], List[Any]]
    splitter: str
    ladder: Tuple[int, ...]
    bucket_width_s: float
    max_relaxations: int
    shift_and_enlarge: bool
    beta_policy: Optional[
        Callable[[Tuple[int, ...], Optional[int]], Optional[int]]
    ]

    @classmethod
    def from_config(cls, config: "EngineConfig") -> "PlanPolicy":
        return cls(
            partitioner_name=config.partitioner,
            partition=get_partitioner(config.partitioner),
            splitter=config.splitter,
            ladder=tuple(config.ladder),
            bucket_width_s=float(config.bucket_width_s),
            max_relaxations=config.max_relaxations,
            shift_and_enlarge=config.shift_and_enlarge,
            beta_policy=config.beta_policy,
        )


def plan_trip(
    policy: PlanPolicy, query: StrictPathQuery, network: RoadNetwork
) -> List[StrictPathQuery]:
    """The initial decomposition: partition the trip path into sub-queries.

    Paper Figure 2 step 1 — the Query Partitioner splits the path with
    the ``pi`` method, each segment optionally keeping the user
    predicate (``pi_MDM`` drops it off main roads), and the beta policy
    maps the trip's cardinality requirement onto each sub-path.  Pure:
    same (policy, query, network) always yields the same plan.
    """
    planned: List[StrictPathQuery] = []
    for segment in policy.partition(query.path, network):
        sub_path = query.path[segment.start : segment.end]
        beta = (
            policy.beta_policy(sub_path, query.beta)
            if policy.beta_policy is not None
            else query.beta
        )
        planned.append(
            StrictPathQuery(
                path=sub_path,
                interval=query.interval,
                user=query.user if segment.keep_user else None,
                beta=beta,
            )
        )
    return planned


def wants_shift_enlarge(
    policy: PlanPolicy, sub: StrictPathQuery, has_outcomes: bool
) -> bool:
    """Whether Procedure 6 line 4 applies to this sub-query now."""
    return (
        policy.shift_and_enlarge
        and is_periodic(sub.interval)
        and not sub.shift_applied
        and has_outcomes
    )


def apply_shift_enlarge(
    sub: StrictPathQuery, shift_s: float, enlarge_s: float
) -> StrictPathQuery:
    """Shift-and-enlarge (Dai et al.): adapt a later sub-query's periodic
    interval by the accumulated minima (``S_i``) and ranges (``R_i``) of
    the earlier histograms, once per relaxation chain."""
    interval = sub.interval
    assert isinstance(interval, PeriodicInterval)  # wants_shift_enlarge gated
    return sub.with_interval(
        interval.shifted_and_enlarged(int(shift_s), int(np.ceil(enlarge_s)))
    ).marked_shifted()


def expand_relaxation(
    policy: PlanPolicy,
    sub: StrictPathQuery,
    t_max: int,
    split_fn: SplitFn,
) -> List[StrictPathQuery]:
    """Procedure 1 as a pure planner: widen, then split, then drop filters.

    Returns the replacement sub-queries *in path order*; the caller owns
    queue placement (the engine pushes them back onto the head of its
    work queue) and the relaxation budget.
    """
    return modify_subquery(sub, policy.ladder, t_max, split_fn)


def make_split_fn(
    policy: PlanPolicy,
    index: "IndexReader",
    exclude_ids: Sequence[int],
) -> SplitFn:
    """The ``sigma`` split-point chooser for one trip's relaxations.

    ``sigma_R`` is pure; ``sigma_L`` closes over the index's exact match
    counter (with the trip's exclusions), which is why the splitter is
    built per trip and handed to the planner as an opaque callable.
    """
    if policy.splitter == "regular":
        return regular_split

    def counter(
        path: Sequence[int],
        interval: TimeInterval,
        user: Optional[int],
        limit: Optional[int],
    ) -> int:
        return int(
            index.count_matches(
                path,
                interval,
                user=user,
                exclude_ids=exclude_ids,
                limit=limit,
            )
        )

    return longest_prefix_splitter(counter)
