"""Per-sub-query cardinality policies (paper Section 7, future work).

The paper's outlook suggests "approaches that use different values of the
parameter beta for each sub-query, e.g., smaller sample size requirements
in rural zones".  A *beta policy* maps an initial sub-query path to the
cardinality requirement it should use; the engine applies it right after
query partitioning.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..network.graph import RoadNetwork
from ..network.zones import ZoneType

__all__ = ["BetaPolicy", "uniform_beta_policy", "zone_beta_policy"]

#: Maps (sub-path, requested beta) to the beta the sub-query should use.
BetaPolicy = Callable[[Sequence[int], Optional[int]], Optional[int]]


def uniform_beta_policy() -> BetaPolicy:
    """The paper's default: every sub-query uses the query's beta."""

    def policy(path: Sequence[int], beta: Optional[int]) -> Optional[int]:
        return beta

    return policy


def zone_beta_policy(
    network: RoadNetwork, rural_factor: float = 0.5, minimum: int = 2
) -> BetaPolicy:
    """Smaller sample-size requirements outside cities.

    Sub-queries whose first segment lies in a RURAL or SUMMER_HOUSE zone
    use ``max(minimum, round(beta * rural_factor))``; city and ambiguous
    sub-paths keep the full requirement.  Rural segments have lower
    traffic variability (little congestion), so fewer samples suffice —
    and fewer relaxations mean faster queries.
    """
    if not 0 < rural_factor <= 1:
        raise ValueError("rural_factor must be in (0, 1]")
    if minimum < 1:
        raise ValueError("minimum must be at least 1")
    relaxed_zones = (ZoneType.RURAL, ZoneType.SUMMER_HOUSE)

    def policy(path: Sequence[int], beta: Optional[int]) -> Optional[int]:
        if beta is None or not path:
            return beta
        zone = network.edge(path[0]).zone
        if zone in relaxed_zones:
            return max(minimum, int(round(beta * rural_factor)))
        return beta

    return policy
