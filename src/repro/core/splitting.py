"""Sub-query relaxation: the greedy splitting function sigma (Procedure 1).

When a sub-query cannot satisfy its cardinality requirement, it is modified
in stages:

1. periodic intervals are widened through the ladder ``A = <alpha_1 ...
   alpha_n>`` (15..120 minutes in the paper),
2. once the ladder is exhausted, the path is split in two (``sigma_R``
   halves it; ``sigma_L`` keeps the longest prefix that still meets
   ``beta``) and both halves restart at ``alpha_min``,
3. single-segment paths drop the non-temporal filter ``f``,
4. as a final fallback the temporal filter and ``beta`` are dropped too:
   ``spq(P, [0, t_max), {})`` considers all data for the segment.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import QueryError
from .intervals import FixedInterval, PeriodicInterval, TimeInterval, is_periodic
from .spq import StrictPathQuery

__all__ = ["regular_split", "longest_prefix_splitter", "modify_subquery"]

#: Counts trajectories matching (path, interval, user) up to a limit.
MatchCounter = Callable[..., int]


def regular_split(
    query: StrictPathQuery, child_interval: TimeInterval
) -> int:
    """``sigma_R``: cut the path in half — ``m = floor(l / 2)``."""
    return query.length // 2


def longest_prefix_splitter(counter: MatchCounter):
    """Build the ``sigma_L`` split-point chooser.

    ``sigma_L`` picks the largest ``m`` such that the prefix ``P[0, m)``
    still matches at least ``beta`` trajectories under the (shrunk)
    interval and filter.  The monotonicity of strict-path matching in the
    prefix length permits a binary search; every probe costs one ISA range
    computation plus one temporal index scan, which is what makes
    ``sigma_L`` markedly slower than ``sigma_R`` in the paper's Figure 9.
    """

    def split(query: StrictPathQuery, child_interval: TimeInterval) -> int:
        target = query.beta if query.beta is not None else 1
        lo, hi = 1, query.length - 1  # m must leave a non-empty suffix

        def enough(m: int) -> bool:
            count = counter(
                path=query.path[:m],
                interval=child_interval,
                user=query.user,
                limit=target,
            )
            return count >= target

        if not enough(lo):
            return lo  # even one segment fails; split must still happen
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if enough(mid):
                lo = mid
            else:
                hi = mid - 1
        return lo

    return split


def modify_subquery(
    query: StrictPathQuery,
    ladder: Sequence[int],
    t_max: int,
    split_point: Callable[[StrictPathQuery, TimeInterval], int] = regular_split,
) -> List[StrictPathQuery]:
    """Procedure 1: widen, then split, then drop filters.

    Parameters
    ----------
    query:
        The failing sub-query.
    ladder:
        The interval-size list ``A`` (ascending; ``A[0] = alpha_min``).
    t_max:
        End of the indexed time span (for the final fixed fallback).
    split_point:
        ``sigma_R`` (default) or a ``sigma_L`` splitter built with
        :func:`longest_prefix_splitter`.
    """
    if not ladder or list(ladder) != sorted(ladder):
        raise QueryError("interval ladder must be a non-empty ascending list")
    alpha_min, alpha_max = ladder[0], ladder[-1]

    # Stage 1: widen a periodic interval to the next ladder size.
    if is_periodic(query.interval) and query.interval.size < alpha_max:
        current = query.interval.size
        next_size = next(a for a in ladder if a > current)
        return [query.with_interval(query.interval.widened_to(next_size))]

    # Stage 2: split the path; children restart at alpha_min.
    if query.length > 1:
        if is_periodic(query.interval):
            child_interval: TimeInterval = query.interval.shrunk_to(
                min(alpha_min, query.interval.size)
            )
        else:
            child_interval = query.interval
        m = split_point(query, child_interval)
        if not 1 <= m < query.length:
            raise QueryError(
                f"split point {m} out of range for path length {query.length}"
            )
        left = query.with_path(query.path[:m]).with_interval(child_interval)
        right = query.with_path(query.path[m:]).with_interval(child_interval)
        return [left, right]

    # Stage 3: drop the non-temporal filter.
    if query.user is not None:
        return [query.without_user()]

    # Stage 4: all data for the segment, no cardinality requirement.
    return [
        StrictPathQuery(
            path=query.path,
            interval=FixedInterval(0, max(t_max, 1)),
            user=None,
            beta=None,
            shift_applied=query.shift_applied,
        )
    ]
