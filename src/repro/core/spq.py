"""Strict path queries (paper Section 2.3).

``Q = spq(P, I, f, beta)`` asks for the travel-time histogram of all
trajectories that traverse path ``P`` without stops or detours, entered the
path during ``I``, and satisfy the non-temporal filter ``f`` (here: an
optional user-id predicate).  ``beta`` is the cardinality requirement: a
periodic sub-query only succeeds when at least ``beta`` matching
trajectories are found.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..errors import EmptyPathError
from .intervals import TimeInterval

__all__ = ["StrictPathQuery"]


@dataclass(frozen=True)
class StrictPathQuery:
    """One (sub-)query ``spq(P, I, f, beta)``.

    Attributes
    ----------
    path:
        The edge-id sequence ``P``.
    interval:
        Temporal predicate ``I`` (fixed or periodic).
    user:
        Non-temporal filter ``f``: restrict to this user id, or ``None``.
    beta:
        Cardinality requirement; ``None`` retrieves all eligible
        trajectories (the paper's "if beta is omitted").
    shift_applied:
        Engine bookkeeping: shift-and-enlarge is applied at most once per
        sub-query chain (children of a split inherit the parent's already
        shifted interval).
    """

    path: Tuple[int, ...]
    interval: TimeInterval
    user: Optional[int] = None
    beta: Optional[int] = None
    shift_applied: bool = False

    def __post_init__(self):
        object.__setattr__(self, "path", tuple(int(e) for e in self.path))
        if not self.path:
            raise EmptyPathError("strict path query requires a non-empty path")
        if self.beta is not None and self.beta < 1:
            raise EmptyPathError("beta must be positive when given")

    @classmethod
    def _from_validated(
        cls,
        path: Tuple[int, ...],
        interval: TimeInterval,
        user: Optional[int],
        beta: Optional[int],
    ) -> "StrictPathQuery":
        """Construct bypassing ``__post_init__`` canonicalisation.

        Hot-path constructor for callers whose inputs are already
        canonical — :class:`repro.api.TripRequest` validates path/beta
        at request construction, and re-canonicalising every batch item
        costs measurable warm-cache QPS (the bench guard's 5% budget).
        """
        query = object.__new__(cls)
        object.__setattr__(query, "path", path)
        object.__setattr__(query, "interval", interval)
        object.__setattr__(query, "user", user)
        object.__setattr__(query, "beta", beta)
        object.__setattr__(query, "shift_applied", False)
        return query

    @property
    def length(self) -> int:
        """``|P|``."""
        return len(self.path)

    def with_interval(self, interval: TimeInterval) -> "StrictPathQuery":
        return replace(self, interval=interval)

    def with_path(self, path: Tuple[int, ...]) -> "StrictPathQuery":
        return replace(self, path=tuple(path))

    def without_user(self) -> "StrictPathQuery":
        return replace(self, user=None)

    def without_beta(self) -> "StrictPathQuery":
        return replace(self, beta=None)

    def marked_shifted(self) -> "StrictPathQuery":
        return replace(self, shift_applied=True)
