"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetworkError(ReproError):
    """Raised for malformed road networks (unknown edges, bad attributes)."""


class UnknownEdgeError(NetworkError):
    """Raised when an edge id is not part of the road network."""

    def __init__(self, edge_id: int):
        super().__init__(f"edge id {edge_id!r} is not part of the network")
        self.edge_id = edge_id


class TrajectoryError(ReproError):
    """Raised for malformed trajectories (non-monotone time, bad path)."""


class IndexError_(ReproError):
    """Raised for index construction or lookup failures.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class QueryError(ReproError):
    """Raised for malformed strict path queries."""


class EmptyPathError(QueryError):
    """Raised when a query path contains no edges."""


class IntervalError(QueryError):
    """Raised for degenerate or inverted time intervals."""


class EstimatorError(ReproError):
    """Raised when a cardinality estimator is misconfigured."""
