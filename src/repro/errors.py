"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetworkError(ReproError):
    """Raised for malformed road networks (unknown edges, bad attributes)."""


class UnknownEdgeError(NetworkError):
    """Raised when an edge id is not part of the road network."""

    def __init__(self, edge_id: int) -> None:
        super().__init__(f"edge id {edge_id!r} is not part of the network")
        self.edge_id = edge_id


class TrajectoryError(ReproError):
    """Raised for malformed trajectories (non-monotone time, bad path)."""


class IndexError_(ReproError):
    """Raised for index construction or lookup failures.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class UnknownTrajectoryError(IndexError_):
    """Raised when a trajectory id is outside the indexed id space."""

    def __init__(self, traj_id: int) -> None:
        super().__init__(f"unknown trajectory id {traj_id!r}")
        self.traj_id = traj_id


class MissingUserError(IndexError_):
    """Raised for an in-range trajectory id that no trajectory used.

    The user container ``U`` is a dense array over ``[0, max id]``; ids
    never assigned by any indexed trajectory are gaps (stored as ``-1``)
    rather than unknown ids.
    """

    def __init__(self, traj_id: int) -> None:
        super().__init__(
            f"trajectory id {traj_id!r} has no indexed trajectory "
            "(gap in the user container)"
        )
        self.traj_id = traj_id


class PersistenceError(IndexError_):
    """Raised when loading a saved index fails (missing files, bad
    format version, corrupt payload)."""


class IndexFormatError(PersistenceError):
    """Raised when a saved index directory has a different on-disk
    format version than this build reads.

    Distinct from generic corruption: the directory is (presumably) a
    valid index of another era.  The fix is to rebuild it, or to load
    it with a build of matching version and ``save()``-roundtrip it.
    """


class StoreError(PersistenceError):
    """Raised for shard-store backend failures: an unknown store URI
    scheme, a malformed ``object://`` query string, a missing object,
    or a remote namespace that refuses an install (overwrite guard).

    A :class:`PersistenceError`: callers that already treat "the saved
    index cannot be opened" as one condition keep working unchanged
    when the index lives behind a remote store.
    """


class ShardError(IndexError_):
    """Raised for sharded-index misuse: invalid shard configuration,
    appends that violate the time-ordering contract, or a sharded
    directory layout that cannot be routed."""


class QueryError(ReproError):
    """Raised for malformed strict path queries."""


class RequestValidationError(QueryError):
    """Raised when a :class:`repro.api.TripRequest` (or its wire form)
    fails validation: empty path, malformed interval payload, unknown
    estimator mode, or a non-positive cardinality requirement."""


class ConfigurationError(QueryError, ValueError):
    """Raised when an :class:`repro.api.EngineConfig` (or a session /
    fan-out parameter such as ``n_workers``) is inconsistent.

    Also a :class:`ValueError`: the pre-redesign surfaces raised bare
    ``ValueError`` for these inputs, so existing ``except ValueError``
    callers keep working while typed callers catch :class:`ReproError`.
    """


class EmptyPathError(QueryError):
    """Raised when a query path contains no edges."""


class IntervalError(QueryError):
    """Raised for degenerate or inverted time intervals."""


class EstimatorError(ReproError):
    """Raised when a cardinality estimator is misconfigured."""


class ServerError(ReproError):
    """Raised for HTTP serving-tier failures: a listen address that
    cannot be bound, malformed inbound HTTP, or a request arriving
    while the server is shutting down.

    A :class:`ReproError`, so the CLI contract applies: ``repro serve``
    on a port that is already in use prints one ``error: ...`` line and
    exits 1, like every other library error.
    """


class AdmissionError(ServerError):
    """Raised when admission control rejects a request under load.

    The serving tier bounds in-flight trips (the way ``stream`` bounds
    its window); past the bound new work is rejected *fast* — HTTP 429
    with a ``Retry-After`` hint — instead of queueing unboundedly.
    ``retry_after_s`` carries the server's suggested backoff; the HTTP
    client raises this same type on a 429 response.
    """

    def __init__(
        self, message: str, retry_after_s: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ReproDeprecationWarning(DeprecationWarning):
    """Category of every deprecation the repro library emits.

    A distinct subclass so the test suite can promote *repro-originated*
    deprecations to errors (``filterwarnings`` in ``pytest.ini``)
    without also erroring on third-party ``DeprecationWarning``s; the
    ``stacklevel`` attribution of warnings makes a module-based filter
    impossible.  ``except``/``warns`` clauses written against
    ``DeprecationWarning`` keep matching.
    """
