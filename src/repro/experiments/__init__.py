"""Experiment harness: workloads, figure runners, and reporting."""

from .figures import (
    FIGURE5_CONFIGS,
    AccuracyResult,
    accuracy_sweep,
    baseline_numbers,
    estimator_report,
    partitioning_report,
    run_accuracy_config,
)
from .memory import (
    PAPER_SHAPE,
    CorpusShape,
    cpp_layout_model,
    project_to_paper_scale,
)
from .reporting import format_series, format_table, mib
from .throughput import (
    BatchServiceResult,
    ThroughputResult,
    measure_batch_service,
    measure_throughput,
)
from .workload import (
    QUERY_TYPES,
    QuerySpec,
    Workload,
    build_workload,
    derive_query_set,
)

__all__ = [
    "QuerySpec",
    "Workload",
    "build_workload",
    "derive_query_set",
    "QUERY_TYPES",
    "AccuracyResult",
    "run_accuracy_config",
    "accuracy_sweep",
    "baseline_numbers",
    "partitioning_report",
    "estimator_report",
    "FIGURE5_CONFIGS",
    "format_table",
    "format_series",
    "mib",
    "CorpusShape",
    "PAPER_SHAPE",
    "cpp_layout_model",
    "project_to_paper_scale",
    "ThroughputResult",
    "measure_throughput",
    "BatchServiceResult",
    "measure_batch_service",
]
