"""Experiment runners for every figure of the paper's evaluation.

One function per figure family:

* :func:`run_accuracy_config` produces the measurements behind Figures
  5-9 for a single (query type, pi, sigma, beta) configuration: sMAPE,
  weighted error, average sub-path length, log-likelihood, and ms/query.
* :func:`accuracy_sweep` runs the full grid of one sub-figure.
* :func:`baseline_numbers` computes the speed-limit and segment-level
  reference errors quoted in Section 6.1.
* :func:`partitioning_report` measures Figure 10 (memory and setup time).
* :func:`estimator_report` measures Figure 11 (q-error, runtime, accuracy
  impact of the cardinality estimator).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api import EngineConfig, TripRequest
from ..baselines.segment_level import SegmentLevelBaseline
from ..baselines.speed_limit import SpeedLimitBaseline
from ..config import DEFAULT_BUCKET_WIDTH_S, DEFAULT_INTERVAL_LADDER_S
from ..core.engine import QueryEngine
from ..core.estimator import CardinalityEstimator
from ..histogram.histogram import Histogram
from ..metrics.accuracy import smape, symmetric_ape, weighted_error_terms
from ..metrics.likelihood import average_log_likelihood
from ..metrics.qerror import mean_q_error_log10
from ..sntindex.index import SNTIndex
from ..sntindex.procedures import count_matches
from .workload import QuerySpec, Workload

__all__ = [
    "AccuracyResult",
    "run_accuracy_config",
    "accuracy_sweep",
    "baseline_numbers",
    "partitioning_report",
    "estimator_report",
    "FIGURE5_CONFIGS",
]

#: Method grids per sub-figure (paper Figures 5-9 a/b/c).
FIGURE5_CONFIGS = {
    "temporal": {
        "partitioners": (
            "pi_C", "pi_Z", "pi_ZC", "pi_N", "pi_1", "pi_2", "pi_3",
        ),
        "splitters": ("regular", "longest_prefix"),
    },
    "user": {
        "partitioners": ("pi_C", "pi_Z", "pi_ZC", "pi_MDM"),
        "splitters": ("regular", "longest_prefix"),
    },
    "spq": {
        "partitioners": ("pi_C", "pi_Z", "pi_ZC", "pi_N"),
        "splitters": ("regular", "longest_prefix"),
    },
}


@dataclass
class AccuracyResult:
    """Measurements of one accuracy configuration (one curve point)."""

    query_type: str
    partitioner: str
    splitter: str
    beta: int
    smape: float
    weighted_error: float
    log_likelihood: float
    mean_subpath_length: float
    ms_per_query: float
    n_queries: int

    def key(self) -> Tuple[str, str, str, int]:
        return (self.query_type, self.partitioner, self.splitter, self.beta)


def run_accuracy_config(
    workload: Workload,
    query_type: str,
    partitioner: str,
    splitter: str,
    beta: int,
    alpha_min_s: int = DEFAULT_INTERVAL_LADDER_S[0],
    ladder: Sequence[int] = DEFAULT_INTERVAL_LADDER_S,
    bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S,
    estimator_mode: Optional[str] = None,
    max_queries: Optional[int] = None,
    exclude_self: bool = True,
) -> AccuracyResult:
    """Run one configuration over the workload's query set."""
    estimator = (
        CardinalityEstimator(workload.index, estimator_mode)
        if estimator_mode
        else None
    )
    engine = QueryEngine(
        workload.index,
        workload.network,
        EngineConfig(
            partitioner=partitioner,
            splitter=splitter,
            ladder=tuple(ladder),
            bucket_width_s=bucket_width_s,
        ),
        estimator=estimator,
    )
    queries = workload.queries[:max_queries] if max_queries else workload.queries

    estimates: List[float] = []
    truths: List[float] = []
    weighted: List[float] = []
    histograms: List[Histogram] = []
    subpath_lengths: List[float] = []
    elapsed = 0.0

    for spec in queries:
        query = spec.to_query(query_type, alpha_min_s, workload.t_max, beta)
        exclude = (spec.traj_id,) if exclude_self else ()
        request = TripRequest.from_spq(query, exclude_ids=exclude)
        started = time.perf_counter()
        result = engine.query(request)
        elapsed += time.perf_counter() - started

        estimates.append(result.estimated_mean)
        truths.append(spec.true_duration)
        histograms.append(result.histogram)
        subpath_lengths.append(result.mean_subpath_length)

        # Weighted error: score each final sub-query against the sampled
        # trajectory's true duration over that sub-path (Section 5.3.2).
        offset = 0
        sub_means, sub_truths, sub_lengths = [], [], []
        for outcome in result.outcomes:
            k = outcome.path_length
            sub_means.append(outcome.mean)
            sub_truths.append(
                spec.true_subpath_duration(offset, offset + k)
            )
            sub_lengths.append(
                workload.network.path_length_m(list(outcome.query.path))
            )
            offset += k
        weighted.append(
            weighted_error_terms(sub_means, sub_truths, sub_lengths)
        )

    return AccuracyResult(
        query_type=query_type,
        partitioner=partitioner,
        splitter=splitter,
        beta=beta,
        smape=smape(estimates, truths),
        weighted_error=float(np.mean(weighted)),
        log_likelihood=average_log_likelihood(truths, histograms),
        mean_subpath_length=float(np.mean(subpath_lengths)),
        ms_per_query=1000.0 * elapsed / len(queries),
        n_queries=len(queries),
    )


def accuracy_sweep(
    workload: Workload,
    query_type: str,
    betas: Sequence[int] = (10, 20, 30, 40, 50),
    partitioners: Optional[Sequence[str]] = None,
    splitters: Optional[Sequence[str]] = None,
    **kwargs,
) -> List[AccuracyResult]:
    """The full grid of one sub-figure (Figures 5-9 a/b/c)."""
    grid = FIGURE5_CONFIGS[query_type]
    partitioners = partitioners or grid["partitioners"]
    splitters = splitters or grid["splitters"]
    results = []
    for splitter in splitters:
        for partitioner in partitioners:
            for beta in betas:
                results.append(
                    run_accuracy_config(
                        workload, query_type, partitioner, splitter, beta,
                        **kwargs,
                    )
                )
    return results


def baseline_numbers(
    workload: Workload, max_queries: Optional[int] = None
) -> Dict[str, float]:
    """Speed-limit and segment-level baseline errors (Section 6.1)."""
    queries = workload.queries[:max_queries] if max_queries else workload.queries
    speed = SpeedLimitBaseline(workload.network)
    segment = SegmentLevelBaseline(workload.index, workload.network)

    speed_errors, segment_errors = [], []
    for spec in queries:
        path = list(spec.path)
        speed_errors.append(
            symmetric_ape(speed.estimate(path), spec.true_duration)
        )
        segment_errors.append(
            symmetric_ape(
                segment.estimate(path, spec.start_time), spec.true_duration
            )
        )
    return {
        "speed_limit_smape": float(np.mean(speed_errors)),
        "segment_level_smape": float(np.mean(segment_errors)),
    }


# --------------------------------------------------------------------- #
# Figure 10: temporal partitioning
# --------------------------------------------------------------------- #


def partitioning_report(
    workload: Workload,
    partition_days_list: Sequence[Optional[int]] = (7, 30, 90, 365, None),
    tod_bucket_minutes: Sequence[int] = (1, 5, 10),
    include_btree: bool = True,
) -> List[Dict]:
    """Build the index per partition grain and record memory + setup time.

    Returns one row per configuration with the component sizes of
    Figure 10a, the time-of-day histogram store sizes of Figure 10b, and
    the setup time of Figure 10c.
    """
    rows: List[Dict] = []
    trajectories = workload.dataset.trajectories
    alphabet = workload.network.alphabet_size

    configs: List[Tuple[Optional[int], str]] = [
        (days, "css") for days in partition_days_list
    ]
    if include_btree:
        configs.append((None, "btree"))

    for days, kind in configs:
        index = SNTIndex.build(
            trajectories, alphabet, partition_days=days, kind=kind
        )
        sizes = index.component_sizes()
        tod_sizes = {
            minutes: index.build_tod_store(minutes * 60).size_in_bytes()
            for minutes in tod_bucket_minutes
        }
        rows.append(
            {
                "partition_days": days,
                "kind": kind,
                "n_partitions": index.n_partitions,
                "setup_seconds": index.build_stats.setup_seconds,
                "component_bytes": sizes,
                "tod_store_bytes": tod_sizes,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 11: cardinality estimator
# --------------------------------------------------------------------- #


def estimator_report(
    workload: Workload,
    modes: Sequence[str] = ("ISA", "BT-Fast", "CSS-Fast", "BT-Acc", "CSS-Acc"),
    beta: int = 20,
    alpha_min_s: int = DEFAULT_INTERVAL_LADDER_S[0],
    max_queries: Optional[int] = None,
) -> Dict[str, Dict]:
    """Q-error per estimator mode over the workload's sub-queries.

    As in the paper (Figure 11a), estimates are compared against the true
    cardinality ``n`` of the initial pi_Z sub-queries, with the q-error
    convention of Section 5.3.4.  Two predicate families are probed:

    * periodic time-of-day windows (exercising formulas 1/2), and
    * fixed "recent history" time frames — "a user might wish to limit the
      query to a certain time frame, e.g. only considering trajectories
      within the past year" — exercising formula 3 vs. the CSS-tree's
      exact range count.
    """
    from ..core.intervals import FixedInterval
    from ..core.partitioning import get_partitioner

    queries = workload.queries[:max_queries] if max_queries else workload.queries
    partition = get_partitioner("pi_Z")

    estimators = {
        mode: CardinalityEstimator(workload.index, mode)
        for mode in modes
        if not (mode.startswith("CSS") and workload.index.kind != "css")
    }
    estimates: Dict[str, List[float]] = {mode: [] for mode in estimators}
    actuals: List[float] = []
    # "Past year": the most recent quarter of the indexed history.
    recent = FixedInterval(
        workload.index.t_min
        + (workload.t_max - workload.index.t_min) * 3 // 4,
        workload.t_max,
    )
    for spec in queries:
        trip = spec.to_query("temporal", alpha_min_s, workload.t_max, beta)
        for segment in partition(trip.path, workload.network):
            path = trip.path[segment.start : segment.end]
            for interval in (trip.interval, recent):
                sub = trip.with_path(path).with_interval(interval)
                actual = count_matches(
                    workload.index,
                    sub.path,
                    sub.interval,
                    user=sub.user,
                    exclude_ids=(spec.traj_id,),
                )
                actuals.append(actual)
                for mode, estimator in estimators.items():
                    estimates[mode].append(estimator.estimate(sub))

    return {
        mode: {
            "mean_q_error_log10": mean_q_error_log10(values, actuals),
            "n_subqueries": len(actuals),
        }
        for mode, values in estimates.items()
    }
