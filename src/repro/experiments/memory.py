"""Byte-accurate memory models and paper-scale projection (Figure 10).

Figure 10 of the paper reports component sizes at ITSP scale: 1.46 M
directed edges, ~79 M traversals, 1.4 M trajectories.  Our measured
components live on a network three orders of magnitude smaller, so this
module provides

* :func:`cpp_layout_model` — the byte layout of the C++ structures the
  paper describes (leaf records per Figure 4, wavelet-tree bits at
  zeroth-order entropy with rank-support overhead, 8-byte counters), and
* :func:`project_to_paper_scale` — the same model evaluated at the
  paper's corpus parameters, for a like-for-like comparison with the
  magnitudes in Figure 10a.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["CorpusShape", "cpp_layout_model", "project_to_paper_scale", "PAPER_SHAPE"]

#: Leaf record bytes (Figure 4): t 8, isa 8, d 4, TT 4, a 4, seq 4 [, w 2].
LEAF_BYTES = 32
LEAF_PARTITION_ID_BYTES = 2
#: Rank/select support overhead on top of the entropy-compressed bits,
#: as the paper's C++ stack (SDSL-style) reports it.  Our own Python
#: bitvectors are leaner — a 12.5% block directory (one absolute int64
#: rank per 512 packed bits) plus per-node word padding — but Figure 10
#: projects the *paper's* layout, so the C++ constant stays.
WT_RANK_OVERHEAD = 0.25
#: Fixed per-symbol node overhead of a Huffman-shaped WT (code tables,
#: node headers); dominates at many partitions x large alphabets.
WT_PER_SYMBOL_BYTES = 20
#: Counter entry: 8 bytes per alphabet symbol per partition.
COUNTER_BYTES = 8
#: User container: trajectory id -> user id.
USER_ENTRY_BYTES = 8
#: CSS-tree directory overhead vs. B+-tree node overhead on leaf keys.
CSS_DIRECTORY_FACTOR = 1.0 / 16.0
BTREE_OVERHEAD_FACTOR = 0.50


@dataclass(frozen=True)
class CorpusShape:
    """The parameters that determine index memory."""

    n_edges: int
    n_traversals: int
    n_trajectories: int
    #: Zeroth-order entropy of the trajectory string in bits per symbol.
    #: Roughly log2 of the *effective* alphabet (paths reuse few edges).
    entropy_bits: float


#: The ITSP / North Denmark corpus of the paper (Section 5.1).
PAPER_SHAPE = CorpusShape(
    n_edges=1_460_000,
    n_traversals=79_000_000,
    n_trajectories=1_400_000,
    entropy_bits=17.0,
)


def cpp_layout_model(
    shape: CorpusShape,
    n_partitions: int = 1,
    tree_kind: str = "css",
) -> Dict[str, float]:
    """Component sizes in bytes under the C++ layout model.

    Parameters
    ----------
    shape:
        Corpus parameters.
    n_partitions:
        Temporal partition count ``W``; every partition owns a wavelet
        tree and a counter array, and partitioned leaves carry ``w``.
    tree_kind:
        ``"css"`` or ``"btree"`` — changes the forest overhead only.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    if tree_kind not in ("css", "btree"):
        raise ValueError(f"unknown tree kind {tree_kind!r}")

    # Wavelet trees: entropy-compressed payload is independent of W, but
    # each partition pays the per-symbol structural overhead, and small
    # partitions compress worse (entropy estimate degrades ~ +5% per
    # halving below ~1M symbols; modelled mildly).
    payload_bits = shape.n_traversals * shape.entropy_bits * (1 + WT_RANK_OVERHEAD)
    symbols_per_partition = max(1, shape.n_traversals // n_partitions)
    degradation = 1.0 + 0.05 * max(
        0.0, math.log2(1_000_000 / symbols_per_partition)
    ) if symbols_per_partition < 1_000_000 else 1.0
    wavelet = payload_bits * degradation / 8.0 + (
        WT_PER_SYMBOL_BYTES * shape.n_edges * n_partitions
    )

    counters = COUNTER_BYTES * (shape.n_edges + 1) * n_partitions
    user = USER_ENTRY_BYTES * shape.n_trajectories

    leaf = LEAF_BYTES + (LEAF_PARTITION_ID_BYTES if n_partitions > 1 else 0)
    forest = shape.n_traversals * leaf
    key_bytes = 8 * shape.n_traversals
    if tree_kind == "css":
        forest += key_bytes * CSS_DIRECTORY_FACTOR
    else:
        forest += key_bytes * (1 + BTREE_OVERHEAD_FACTOR)

    return {
        "WT": wavelet,
        "C": float(counters),
        "user": float(user),
        "Forest": float(forest),
    }


def project_to_paper_scale(
    n_partitions: int = 1,
    tree_kind: str = "css",
    shape: Optional[CorpusShape] = None,
) -> Dict[str, float]:
    """Figure 10a magnitudes at the paper's corpus parameters, in bytes.

    With the default shape this lands in the paper's reported ballpark:
    C ≈ 12 MB per partition (paper: <6 MB -> ~600 MB over 138 weekly
    partitions), WT in the hundreds of MB for FULL growing to GBs at
    weekly grain, user ≈ tens of MB, forest a few GiB.
    """
    return cpp_layout_model(
        shape or PAPER_SHAPE, n_partitions=n_partitions, tree_kind=tree_kind
    )
