"""Plain-text reporting helpers for the benchmark harness.

The benchmarks regenerate the paper's figures as aligned text tables
(series per method, one column per beta / partition size), annotated with
the qualitative expectation from the paper so that paper-vs-measured is
visible directly in the benchmark output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "mib"]


def mib(n_bytes: float) -> float:
    """Bytes to MiB."""
    return n_bytes / (1024.0 * 1024.0)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    columns = [
        [str(h)] + [_fmt(row[i]) for row in rows]
        for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row[i]).ljust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    value_format: str = "{:.2f}",
) -> str:
    """Render one figure as a table: one row per series, one column per x."""
    headers = [x_label] + [str(x) for x in x_values]
    rows: List[List[object]] = []
    for name in series:
        rows.append(
            [name] + [value_format.format(v) for v in series[name]]
        )
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
