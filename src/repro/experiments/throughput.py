"""Query-throughput experiment (paper Section 7, future work).

The paper's outlook: "While the processing time of a single query might
not considerably improve through parallelization, the overall query
throughput of the system most likely could, making it suitable for online
routing applications that support a large number of users."

The SNT-index is immutable after build, so concurrent readers need no
synchronisation.  This experiment measures queries/second for a fixed
batch of trip queries executed by 1..N worker threads sharing one index.
CPython's GIL caps the speed-up for pure-Python sections, but the numpy
kernels (temporal scans, mask filters) release the GIL, so moderate
scaling is expected — the honest quantification is the point.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Sequence

from ..core.engine import QueryEngine
from .workload import Workload

__all__ = ["ThroughputResult", "measure_throughput"]


@dataclass(frozen=True)
class ThroughputResult:
    """Queries/second for one worker count."""

    n_workers: int
    n_queries: int
    elapsed_s: float

    @property
    def queries_per_second(self) -> float:
        return self.n_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0


def measure_throughput(
    workload: Workload,
    worker_counts: Sequence[int] = (1, 2, 4),
    n_queries: int = 60,
    beta: int = 20,
    partitioner: str = "pi_Z",
) -> List[ThroughputResult]:
    """Run the same query batch under different worker-pool sizes.

    Every worker gets its own :class:`QueryEngine` (engines are cheap,
    stateless wrappers); all share the one immutable index.
    """
    if any(w < 1 for w in worker_counts):
        raise ValueError("worker counts must be positive")
    specs = workload.queries[:n_queries]
    jobs = [
        (spec.to_query("temporal", 900, workload.t_max, beta), spec.traj_id)
        for spec in specs
    ]

    results = []
    for n_workers in worker_counts:
        engines = [
            QueryEngine(
                workload.index, workload.network, partitioner=partitioner
            )
            for _ in range(n_workers)
        ]

        def run_shard(shard_index: int) -> int:
            engine = engines[shard_index]
            count = 0
            for job_index in range(shard_index, len(jobs), n_workers):
                query, traj_id = jobs[job_index]
                engine.trip_query(query, exclude_ids=(traj_id,))
                count += 1
            return count

        started = time.perf_counter()
        if n_workers == 1:
            completed = run_shard(0)
        else:
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                completed = sum(pool.map(run_shard, range(n_workers)))
        elapsed = time.perf_counter() - started
        assert completed == len(jobs)
        results.append(
            ThroughputResult(
                n_workers=n_workers,
                n_queries=len(jobs),
                elapsed_s=elapsed,
            )
        )
    return results
