"""Query-throughput experiment (paper Section 7, future work).

The paper's outlook: "While the processing time of a single query might
not considerably improve through parallelization, the overall query
throughput of the system most likely could, making it suitable for online
routing applications that support a large number of users."

The SNT-index is immutable after build, so concurrent readers need no
synchronisation.  This experiment measures queries/second for a fixed
batch of trip queries executed by 1..N worker threads sharing one index.
CPython's GIL caps the speed-up for pure-Python sections, but the numpy
kernels (temporal scans, mask filters) release the GIL, so moderate
scaling is expected — the honest quantification is the point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import EngineConfig, TravelTimeDB, TripRequest, open_db
from .workload import Workload

__all__ = [
    "ThroughputResult",
    "measure_throughput",
    "BatchServiceResult",
    "measure_batch_service",
]


@dataclass(frozen=True)
class ThroughputResult:
    """Queries/second for one worker count."""

    n_workers: int
    n_queries: int
    elapsed_s: float

    @property
    def queries_per_second(self) -> float:
        return self.n_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0


def measure_throughput(
    workload: Workload,
    worker_counts: Sequence[int] = (1, 2, 4),
    n_queries: int = 60,
    beta: int = 20,
    partitioner: str = "pi_Z",
) -> List[ThroughputResult]:
    """Run the same query batch under different worker-pool sizes.

    Execution goes through :meth:`repro.api.TravelTimeDB.query_many`
    (uncached, so every run measures real index work); the session owns
    the thread-pool fan-out over the shared immutable index.
    """
    if any(w < 1 for w in worker_counts):
        raise ValueError("worker counts must be positive")
    specs = workload.queries[:n_queries]
    requests = [
        TripRequest.from_spq(
            spec.to_query("temporal", 900, workload.t_max, beta),
            exclude_ids=(spec.traj_id,),
        )
        for spec in specs
    ]

    results = []
    for n_workers in worker_counts:
        db = open_db(
            workload.index,
            network=workload.network,
            cache=None,
            config=EngineConfig(partitioner=partitioner),
        )
        started = time.perf_counter()
        answered = db.query_many(requests, n_workers=n_workers)
        elapsed = time.perf_counter() - started
        assert len(answered) == len(requests)
        results.append(
            ThroughputResult(
                n_workers=n_workers,
                n_queries=len(requests),
                elapsed_s=elapsed,
            )
        )
    return results


@dataclass(frozen=True)
class BatchServiceResult:
    """One execution mode of the batch-service comparison."""

    mode: str
    n_queries: int
    elapsed_s: float
    n_index_scans: int
    n_cache_hits: int
    #: Index scans each shard served during this mode (sharded index
    #: only; ``None`` over a monolithic index).  Keys are shard labels
    #: in temporal order, ``staging`` last.
    shard_scans: Optional[Dict[str, int]] = None
    #: Fraction of shard routing decisions resolved by interval pruning
    #: during this mode (sharded index only).
    shard_prune_rate: Optional[float] = None

    @property
    def queries_per_second(self) -> float:
        return self.n_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0


def measure_batch_service(
    workload: Workload,
    n_queries: int = 20,
    repeat: int = 3,
    beta: int = 20,
    partitioner: str = "pi_Z",
    n_workers: int = 4,
) -> Tuple[List[BatchServiceResult], bool]:
    """Single vs. batched vs. cached QPS on a repeated-path workload.

    The workload repeats every query ``repeat`` times — the shape the
    shared cache is built for (commuters re-asking the same trips).
    Modes:

    * ``sequential`` — one ``db.query`` call per trip (per-trip cache
      only), the paper's Procedure 6 baseline;
    * ``batched`` — ``db.query_many`` with ``n_workers`` threads, no
      shared cache (pure fan-out);
    * ``cached-cold`` — ``db.query_many`` on one thread with an empty
      shared :class:`~repro.service.SubQueryCache` (repeats hit within
      the pass);
    * ``cached-warm`` — the same batch again on the warm cache.

    Returns the per-mode results plus a flag confirming all modes
    produced identical histograms and point estimates.  Over a sharded
    index (``workload.index`` exposing ``shard_stats``), each mode also
    reports the per-shard scan counts and the shard-pruning hit rate it
    caused — warm-cache modes show near-zero shard scans, and
    interval-pruned shards show how much of the corpus a query batch
    never touches.
    """
    if repeat < 1 or n_queries < 1:
        raise ValueError("n_queries and repeat must be positive")
    specs = workload.queries[:n_queries]
    base_requests = [
        TripRequest.from_spq(
            spec.to_query("temporal", 900, workload.t_max, beta),
            exclude_ids=(spec.traj_id,),
        )
        for spec in specs
    ]
    requests = base_requests * repeat

    def shard_snapshot():
        stats_fn = getattr(workload.index, "shard_stats", None)
        return stats_fn() if stats_fn is not None else None

    def tally(
        mode: str, answered, elapsed: float, before, after
    ) -> BatchServiceResult:
        shard_scans = None
        prune_rate = None
        if before is not None and after is not None:
            shard_scans = {
                label: count - before.per_shard_scans.get(label, 0)
                for label, count in after.per_shard_scans.items()
            }
            scans = after.n_shard_scans - before.n_shard_scans
            pruned = after.n_shards_pruned - before.n_shards_pruned
            decisions = scans + pruned
            prune_rate = pruned / decisions if decisions else 0.0
        return BatchServiceResult(
            mode=mode,
            n_queries=len(answered),
            elapsed_s=elapsed,
            n_index_scans=sum(r.n_index_scans for r in answered),
            n_cache_hits=sum(r.n_cache_hits for r in answered),
            shard_scans=shard_scans,
            shard_prune_rate=prune_rate,
        )

    results: List[BatchServiceResult] = []
    answers = {}

    def run_mode(mode: str, answer_batch) -> None:
        before = shard_snapshot()
        started = time.perf_counter()
        answers[mode] = answer_batch()
        elapsed = time.perf_counter() - started
        results.append(
            tally(mode, answers[mode], elapsed, before, shard_snapshot())
        )

    config = EngineConfig(partitioner=partitioner)
    sequential_db = open_db(
        workload.index, network=workload.network, cache=None, config=config
    )
    run_mode(
        "sequential",
        lambda: [sequential_db.query(request) for request in requests],
    )

    fanout: TravelTimeDB = open_db(
        workload.index, network=workload.network, cache=None, config=config
    )
    run_mode(
        "batched",
        lambda: fanout.query_many(requests, n_workers=n_workers),
    )

    cached = open_db(
        workload.index, network=workload.network, config=config
    )
    run_mode("cached-cold", lambda: cached.query_many(requests))
    run_mode("cached-warm", lambda: cached.query_many(requests))

    reference = answers["sequential"]
    identical = all(
        result.histogram == expected.histogram
        and result.estimated_mean == expected.estimated_mean
        for mode in ("batched", "cached-cold", "cached-warm")
        for result, expected in zip(answers[mode], reference)
    )
    return results, identical
