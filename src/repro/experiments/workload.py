"""Evaluation workload: dataset, index, and the query set (paper 5.2, 6).

The query set ``Q`` is a random sample of trajectories whose start time
lies after the median timestamp of the dataset (ensuring more than half the
data span is available as history), mirroring the paper's 1 % sample of
6,942 trajectories.  Every query carries its ground truth: the sampled
trajectory's own durations.  The sampled trajectory is excluded from
retrieval by default (see DESIGN.md, "Self-inclusion note").

Three query types are evaluated (Section 6):

* **temporal**: periodic interval around the trip start, no user filter;
* **user**: periodic interval + the trip's driver as user filter;
* **spq**: fixed interval over the whole history, no user filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from ..config import ExperimentScale, get_scale
from ..core.intervals import FixedInterval, PeriodicInterval
from ..core.spq import StrictPathQuery
from ..sntindex.index import SNTIndex
from ..trajectories.generator import GeneratedDataset, generate_dataset
from ..trajectories.model import Trajectory

__all__ = ["QuerySpec", "Workload", "build_workload", "QUERY_TYPES"]

QUERY_TYPES = ("temporal", "user", "spq")

#: Queries shorter than this are skipped: the paper's query trips average
#: 55 segments / 13.7 km, so near-degenerate errand hops are not
#: representative of the evaluated workload.
MIN_QUERY_PATH_LENGTH = 8


@dataclass(frozen=True)
class QuerySpec:
    """One evaluation query with its ground truth."""

    traj_id: int
    user_id: int
    path: Tuple[int, ...]
    start_time: int
    #: True total duration ``a_tr`` of the sampled trajectory.
    true_duration: float
    #: Cumulative durations per position (prefix sums of TT), used to
    #: compute true durations of arbitrary sub-paths for weighted error.
    cumulative: Tuple[float, ...]

    def true_subpath_duration(self, start: int, stop: int) -> float:
        """True duration of ``path[start:stop)``."""
        before = self.cumulative[start - 1] if start else 0.0
        return self.cumulative[stop - 1] - before

    def to_query(
        self, query_type: str, alpha_min_s: int, t_max: int, beta: Optional[int]
    ) -> StrictPathQuery:
        """Materialise the spq for one of the paper's three query types."""
        if query_type == "temporal":
            return StrictPathQuery(
                path=self.path,
                interval=PeriodicInterval.around(self.start_time, alpha_min_s),
                beta=beta,
            )
        if query_type == "user":
            return StrictPathQuery(
                path=self.path,
                interval=PeriodicInterval.around(self.start_time, alpha_min_s),
                user=self.user_id,
                beta=beta,
            )
        if query_type == "spq":
            return StrictPathQuery(
                path=self.path,
                interval=FixedInterval(0, t_max),
                beta=beta,
            )
        raise ValueError(
            f"unknown query type {query_type!r}; expected one of {QUERY_TYPES}"
        )


@dataclass
class Workload:
    """Dataset + index + query set, shared across experiment runs."""

    dataset: GeneratedDataset
    index: SNTIndex
    queries: List[QuerySpec]
    scale: ExperimentScale

    @property
    def network(self):
        return self.dataset.network

    @property
    def t_max(self) -> int:
        return self.index.t_max


def _spec_from(trajectory: Trajectory) -> QuerySpec:
    return QuerySpec(
        traj_id=trajectory.traj_id,
        user_id=trajectory.user_id,
        path=trajectory.path,
        start_time=trajectory.start_time,
        true_duration=trajectory.duration(),
        cumulative=tuple(trajectory.cumulative_durations()),
    )


def build_workload(
    scale: ExperimentScale | str | None = None,
    seed: int = 0,
    partition_days: Optional[int] = None,
    kind: str = "css",
    min_path_length: int = MIN_QUERY_PATH_LENGTH,
) -> Workload:
    """Generate dataset, build the index, and derive the query set."""
    if not isinstance(scale, ExperimentScale):
        scale = get_scale(scale if isinstance(scale, str) else None)
    dataset = generate_dataset(scale, seed=seed)
    index = SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=partition_days,
        kind=kind,
    )
    queries = derive_query_set(
        dataset, seed=seed, scale=scale, min_path_length=min_path_length
    )
    return Workload(dataset=dataset, index=index, queries=queries, scale=scale)


def derive_query_set(
    dataset: GeneratedDataset,
    seed: int,
    scale: ExperimentScale,
    min_path_length: int = MIN_QUERY_PATH_LENGTH,
) -> List[QuerySpec]:
    """Sample the query set from the second half of the data span."""
    start, end = dataset.trajectories.time_span()
    median = (start + end) // 2
    eligible = [
        trajectory
        for trajectory in dataset.trajectories
        if trajectory.start_time > median
        and len(trajectory) >= min_path_length
    ]
    if not eligible:
        raise ValueError(
            "no eligible query trajectories; lower min_path_length or grow "
            "the dataset"
        )
    rng = np.random.default_rng(seed + 77)
    target = max(
        1,
        min(
            scale.max_queries,
            int(round(len(eligible) * scale.query_sample_fraction / 0.5)),
        ),
    )
    chosen = rng.choice(
        len(eligible), size=min(target, len(eligible)), replace=False
    )
    return [_spec_from(eligible[i]) for i in sorted(chosen)]
