"""FM-index substrate: suffix arrays, BWT, rank structures, backward search.

This subpackage implements the spatial half of the SNT-index (paper
Section 4.1.1): the trajectory set is serialised into one integer string,
suffix-sorted, Burrows-Wheeler transformed, and stored in a Huffman-shaped
wavelet tree so that the ISA range of any query path is found in
O(|P| log |Sigma|) independent of the number of trajectories.
"""

from .bitvector import RankBitvector
from .bwt import bwt_from_suffix_array, symbol_counts
from .fm import FMIndex, TERMINATOR
from .huffman import huffman_codes
from .suffix_array import inverse_suffix_array, naive_suffix_array, suffix_array
from .wavelet_tree import WaveletTree

__all__ = [
    "FMIndex",
    "TERMINATOR",
    "RankBitvector",
    "WaveletTree",
    "huffman_codes",
    "suffix_array",
    "naive_suffix_array",
    "inverse_suffix_array",
    "bwt_from_suffix_array",
    "symbol_counts",
]
