"""Rank-support bitvector over uint64 words.

The wavelet tree of the FM-index needs ``rank1(i)`` — the number of set
bits in ``bits[0, i)`` — in O(1).  The layout is the classic two-level
succinct rank directory: the bits are packed into native uint64 words
(bit ``i`` of the vector is bit ``63 - i % 64`` of word ``i // 64``),
and one absolute rank is kept per :data:`WORDS_PER_BLOCK`-word block
(512 bits), with the tail of a query resolved by popcounting at most
seven words plus one partial word.

The directory is ~12.5 % of the payload and is **all** the structure
there is: :meth:`RankBitvector.size_in_bytes` reports exactly the bytes
of the two resident arrays, so the Figure 10 memory accounting matches
real memory.  (An earlier revision answered queries from a per-packed-
byte int64 prefix — ~8 B of directory per byte of bits — while
reporting only the block directory, understating the bitvector layer's
real footprint by roughly an order of magnitude.)

Both arrays are plain numpy buffers, so a saved index can expose them
through ``np.load(..., mmap_mode="r")`` and reconstruct a bitvector
with :meth:`RankBitvector.from_arrays` without copying — see
:mod:`repro.sntindex.persistence` (format version 2).
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple, Union

import numpy as np
import numpy.typing as npt

__all__ = ["RankBitvector", "WORD_BITS", "WORDS_PER_BLOCK"]


def rank1_bulk_offsets(
    words: npt.NDArray[np.uint64],
    blocks: npt.NDArray[np.int64],
    word_off: npt.NDArray[np.int64],
    block_off: npt.NDArray[np.int64],
    pos: npt.NDArray[np.int64],
) -> npt.NDArray[np.int64]:
    """Bulk ``rank1`` across many bitvectors packed into one flat pair.

    ``words``/``blocks`` concatenate several bitvectors' payloads (the
    wavelet tree stores all its nodes this way — the same layout the
    persistence format writes); ``word_off[k]``/``block_off[k]`` locate
    element ``k``'s bitvector and ``pos[k]`` is its *local* rank
    position.  One vectorised pass answers every element, which is what
    lets the levelwise frontier descent rank a whole batch per tree
    level no matter how the pairs have spread across nodes.  Positions
    are trusted (in ``[0, n_k]`` of their bitvector) — callers own the
    invariant, exactly like
    :meth:`RankBitvector._rank1_bulk_unchecked`.

    ``pos`` may be any shape as long as ``word_off``/``block_off``
    broadcast against it (the frontier passes both interval endpoints
    as one ``(2, k)`` stack over ``(k,)`` offsets, halving the dispatch
    count versus two concatenated 1-D calls).
    """
    word = pos >> 6
    tail = pos & 63
    local_block = pos >> 9
    ranks: npt.NDArray[np.int64] = blocks[block_off + local_block]
    if words.size:
        # Same masked in-block gather as the single-vector bulk rank,
        # with every index shifted by its element's word offset.
        block_word = local_block << 3
        offsets = np.arange(WORDS_PER_BLOCK - 1, dtype=np.int64)
        idx = (word_off + block_word)[..., None] + offsets
        in_block = offsets < (word - block_word)[..., None]
        np.minimum(idx, words.size - 1, out=idx)
        counts = np.bitwise_count(words[idx]).astype(np.int64)
        ranks += np.sum(counts, axis=-1, where=in_block)
        shift = ((WORD_BITS - tail) & 63).astype(np.uint64)
        tail_counts = np.bitwise_count(
            words[np.minimum(word_off + word, words.size - 1)] >> shift
        ).astype(np.int64)
        ranks += np.where(tail > 0, tail_counts, 0)
    return ranks

#: Bits per packed word.
WORD_BITS = 64
#: Words per rank-directory block (512 bits per block, sdsl-style).
WORDS_PER_BLOCK = 8

_BitsInput = Union[npt.ArrayLike, Iterable[object]]


def _pack_words(bit_array: npt.NDArray[np.bool_]) -> npt.NDArray[np.uint64]:
    """Pack a boolean array into big-endian-within-word uint64 words."""
    packed = np.packbits(bit_array)  # big-endian within each byte
    pad = (-packed.size) % 8
    if pad:
        packed = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)])
    # View the 8-byte groups big-endian, then convert to native uint64:
    # bit i of the vector ends up as bit (63 - i % 64) of word i // 64.
    return packed.view(">u8").astype(np.uint64)


def _block_rank_directory(
    words: npt.NDArray[np.uint64],
) -> npt.NDArray[np.int64]:
    """Absolute rank at each block start, plus a total-count sentinel."""
    n_blocks = (int(words.size) + WORDS_PER_BLOCK - 1) // WORDS_PER_BLOCK
    directory = np.zeros(n_blocks + 1, dtype=np.int64)
    if words.size:
        per_block = np.add.reduceat(
            np.bitwise_count(words).astype(np.int64),
            np.arange(0, words.size, WORDS_PER_BLOCK, dtype=np.int64),
        )
        np.cumsum(per_block, out=directory[1:])
    return directory


class RankBitvector:
    """Immutable bitvector with O(1) ``rank1``/``rank0`` support."""

    __slots__ = ("_n", "_words", "_block_ranks", "_words_mv", "_blocks_mv")

    _n: int
    _words: npt.NDArray[np.uint64]
    _block_ranks: npt.NDArray[np.int64]
    _words_mv: memoryview
    _blocks_mv: memoryview

    def __init__(self, bits: _BitsInput) -> None:
        bit_array = np.asarray(
            bits if hasattr(bits, "__len__") else list(bits)  # type: ignore[arg-type]
        ).astype(bool, copy=False)
        self._n = int(bit_array.size)
        self._words = (
            _pack_words(bit_array)
            if self._n
            else np.zeros(0, dtype=np.uint64)
        )
        self._block_ranks = _block_rank_directory(self._words)
        self._bind_views()

    def _bind_views(self) -> None:
        # Zero-copy memoryviews over the resident arrays: scalar queries
        # index these (a plain-int fast path) instead of paying numpy's
        # per-element scalar boxing on every rank.
        self._words_mv = memoryview(self._words)
        self._blocks_mv = memoryview(self._block_ranks)

    @classmethod
    def from_arrays(
        cls,
        n: int,
        words: npt.NDArray[np.uint64],
        block_ranks: npt.NDArray[np.int64],
    ) -> "RankBitvector":
        """Rebuild a bitvector around existing (possibly mmap) arrays.

        The arrays are adopted as-is — no copy — so a memory-mapped
        saved index shares pages across processes.  Only cheap shape
        invariants are validated; the payload is trusted.
        """
        n = int(n)
        if n < 0:
            raise ValueError("bit count must be non-negative")
        n_words = (n + WORD_BITS - 1) // WORD_BITS
        n_blocks = (n_words + WORDS_PER_BLOCK - 1) // WORDS_PER_BLOCK
        if words.dtype != np.uint64 or words.ndim != 1:
            raise ValueError("words must be a 1-D uint64 array")
        if block_ranks.dtype != np.int64 or block_ranks.ndim != 1:
            raise ValueError("block_ranks must be a 1-D int64 array")
        if int(words.size) != n_words:
            raise ValueError(
                f"words array has {words.size} words; {n} bits need "
                f"{n_words}"
            )
        if int(block_ranks.size) != n_blocks + 1:
            raise ValueError(
                f"block_ranks array has {block_ranks.size} entries; "
                f"{n_words} words need {n_blocks + 1}"
            )
        self = cls.__new__(cls)
        self._n = n
        self._words = words
        self._block_ranks = block_ranks
        self._bind_views()
        return self

    # -- persistence / pickling ---------------------------------------- #

    @property
    def words(self) -> npt.NDArray[np.uint64]:
        """The packed uint64 words (resident array; do not mutate)."""
        return self._words

    @property
    def block_ranks(self) -> npt.NDArray[np.int64]:
        """The block rank directory, with a total-ones sentinel last."""
        return self._block_ranks

    def __getstate__(self) -> Tuple[int, Any, Any]:
        # memoryviews are not picklable; rebuild them on load.
        return (self._n, self._words, self._block_ranks)

    def __setstate__(self, state: Tuple[int, Any, Any]) -> None:
        self._n, self._words, self._block_ranks = state
        self._bind_views()

    # -- queries -------------------------------------------------------- #

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> bool:
        if not 0 <= i < self._n:
            raise IndexError(f"bit index {i} out of range [0, {self._n})")
        return bool((self._words_mv[i >> 6] >> (63 - (i & 63))) & 1)

    def rank1(self, i: int) -> int:
        """Number of set bits in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise IndexError(f"rank position {i} out of range [0, {self._n}]")
        word, tail = divmod(i, WORD_BITS)
        block_start = (word >> 3) << 3
        rank = self._blocks_mv[word >> 3]
        words = self._words_mv
        for k in range(block_start, word):
            rank += words[k].bit_count()
        if tail:
            rank += (words[word] >> (WORD_BITS - tail)).bit_count()
        return rank

    def rank0(self, i: int) -> int:
        """Number of clear bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    def rank_pair(self, i: int, j: int) -> Tuple[int, int]:
        """``(rank1(i), rank1(j))`` in one call.

        Backward search ranks both endpoints of an interval at every
        wavelet-tree node; answering them together shares the bounds
        check and the view lookups, which dominate the scalar cost.
        """
        n = self._n
        if i < 0 or j < 0 or i > n or j > n:
            raise IndexError(
                f"rank positions ({i}, {j}) out of range [0, {n}]"
            )
        words = self._words_mv
        blocks = self._blocks_mv

        word, tail = divmod(i, WORD_BITS)
        rank_i = blocks[word >> 3]
        for k in range((word >> 3) << 3, word):
            rank_i += words[k].bit_count()
        if tail:
            rank_i += (words[word] >> (WORD_BITS - tail)).bit_count()

        word, tail = divmod(j, WORD_BITS)
        rank_j = blocks[word >> 3]
        for k in range((word >> 3) << 3, word):
            rank_j += words[k].bit_count()
        if tail:
            rank_j += (words[word] >> (WORD_BITS - tail)).bit_count()
        return rank_i, rank_j

    def _validated_positions(
        self, positions: npt.ArrayLike
    ) -> npt.NDArray[np.int64]:
        """Shared bulk-input validation (ISSUE 6 satellite).

        Positions must form a 1-D integer array: a 0-d array is a shape
        error (``TypeError``, not an opaque crash), and float positions
        are rejected instead of being silently truncated (``7.9`` used
        to rank at 7).  An empty array short-circuits before the dtype
        check — there is nothing to misinterpret.
        """
        pos = np.asarray(positions)
        if pos.ndim != 1:
            raise TypeError(
                f"positions must be a 1-D array, got a {pos.ndim}-D "
                f"array of shape {pos.shape}"
            )
        if pos.size == 0:
            return np.zeros(0, dtype=np.int64)
        if not np.issubdtype(pos.dtype, np.integer):
            raise TypeError(
                f"positions must have an integer dtype, got {pos.dtype} "
                "(float positions would be silently truncated)"
            )
        pos = pos.astype(np.int64, copy=False)
        lo, hi = int(pos.min()), int(pos.max())
        if lo < 0 or hi > self._n:
            raise IndexError(
                f"rank position {lo if lo < 0 else hi} out of range "
                f"[0, {self._n}]"
            )
        return pos

    def rank1_bulk(self, positions: npt.ArrayLike) -> npt.NDArray[np.int64]:
        """Vectorised :meth:`rank1` over a 1-D integer position array.

        One numpy pass: block-directory gather, then masked popcounts of
        the at most seven in-block words and the partial tail word.
        Exactly :meth:`rank1` per element (the bulk primitives must be
        bit-identical for the batched backward search to be).
        """
        pos = self._validated_positions(positions)
        return self._rank1_bulk_unchecked(pos)

    def _rank1_bulk_unchecked(
        self, pos: npt.NDArray[np.int64]
    ) -> npt.NDArray[np.int64]:
        """:meth:`rank1_bulk` body for pre-validated int64 positions —
        internal hot path for callers that already own the invariants
        (the wavelet tree's frontier descent feeds ranks back in as the
        next level's positions, which are in range by construction)."""
        if pos.size == 0:
            return pos
        words = self._words
        word = pos >> 6
        tail = pos & 63
        block_start = (word >> 3) << 3
        ranks = self._block_ranks[word >> 3]
        if words.size:
            # One 2-D gather of each position's (at most 7) in-block
            # words, popcounted and row-summed under the in-block mask.
            # Indices are clamped instead of branch-masked: clamped
            # entries are always outside the mask.
            offsets = np.arange(WORDS_PER_BLOCK - 1, dtype=np.int64)
            idx = block_start[:, None] + offsets
            in_block = offsets < (word - block_start)[:, None]
            np.minimum(idx, words.size - 1, out=idx)
            counts = np.bitwise_count(words[idx]).astype(np.int64)
            ranks += np.sum(counts, axis=1, where=in_block)
            # Partial tail word: shift is taken mod 64 so tail == 0 is a
            # full-word popcount, then zeroed by the where().
            shift = ((WORD_BITS - tail) & 63).astype(np.uint64)
            tail_counts = np.bitwise_count(
                words[np.minimum(word, words.size - 1)] >> shift
            ).astype(np.int64)
            ranks += np.where(tail > 0, tail_counts, 0)
        return ranks

    def rank0_bulk(self, positions: npt.ArrayLike) -> npt.NDArray[np.int64]:
        """Vectorised :meth:`rank0`; validated like :meth:`rank1_bulk`."""
        pos = self._validated_positions(positions)
        if pos.size == 0:
            return pos
        result: npt.NDArray[np.int64] = pos - self._rank1_bulk_unchecked(pos)
        return result

    @property
    def n_ones(self) -> int:
        """Total number of set bits."""
        return int(self._block_ranks[-1])

    def size_in_bytes(self) -> int:
        """Real succinct size: exactly the resident arrays' bytes.

        Packed words plus the block rank directory — there is no other
        query structure, so this is both the Figure 10 model size and
        the actual memory.
        """
        return int(self._words.nbytes + self._block_ranks.nbytes)
