"""Rank-support bitvector.

The wavelet tree of the FM-index needs ``rank1(i)`` — the number of set bits
in ``bits[0, i)`` — in O(1).  This implementation packs the bits into bytes
and keeps absolute rank samples every :data:`BLOCK_BYTES` bytes, resolving
the tail of a query with a pre-computed byte-popcount table.  The layout
mirrors the classic "rank directory" structure used by sdsl-lite, and its
:meth:`RankBitvector.size_in_bytes` reports the succinct size used by the
Figure 10 memory model.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["RankBitvector"]

#: Number of packed bytes per rank-directory block (512 bits per block).
BLOCK_BYTES = 64

# Popcount of every byte value, used to finish rank queries.
_BYTE_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint32)


class RankBitvector:
    """Immutable bitvector with O(1) ``rank1``/``rank0`` support."""

    __slots__ = ("_n", "_bytes", "_block_ranks", "_byte_prefix")

    def __init__(self, bits: Iterable[bool]):
        bit_array = np.asarray(list(bits) if not hasattr(bits, "__len__") else bits)
        bit_array = bit_array.astype(bool, copy=False)
        self._n = int(bit_array.size)
        # np.packbits pads the final byte with zero bits, which do not affect
        # rank queries because queries never index past self._n.
        self._bytes = np.packbits(bit_array) if self._n else np.zeros(0, np.uint8)
        # Cumulative popcount per byte (prefix[i] = set bits in bytes[0, i)).
        counts = _BYTE_POPCOUNT[self._bytes]
        self._byte_prefix = np.zeros(self._bytes.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self._byte_prefix[1:])
        # Absolute rank at the start of each block (kept for layout fidelity
        # and size accounting; queries use the byte prefix directly).
        n_blocks = (self._bytes.size + BLOCK_BYTES - 1) // BLOCK_BYTES
        self._block_ranks = self._byte_prefix[
            np.arange(n_blocks, dtype=np.int64) * BLOCK_BYTES
        ]

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> bool:
        if not 0 <= i < self._n:
            raise IndexError(f"bit index {i} out of range [0, {self._n})")
        byte = self._bytes[i >> 3]
        return bool((byte >> (7 - (i & 7))) & 1)

    def rank1(self, i: int) -> int:
        """Number of set bits in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise IndexError(f"rank position {i} out of range [0, {self._n}]")
        full_bytes, tail_bits = divmod(i, 8)
        rank = int(self._byte_prefix[full_bytes])
        if tail_bits:
            tail = int(self._bytes[full_bytes]) >> (8 - tail_bits)
            rank += bin(tail).count("1")
        return rank

    def rank0(self, i: int) -> int:
        """Number of clear bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    def rank1_bulk(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rank1` for an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (pos.min() < 0 or pos.max() > self._n):
            raise IndexError("rank position out of range")
        full_bytes, tail_bits = np.divmod(pos, 8)
        ranks = self._byte_prefix[full_bytes]
        tail_mask = tail_bits > 0
        if np.any(tail_mask):
            tails = self._bytes[full_bytes[tail_mask]].astype(np.uint32)
            shifted = tails >> (8 - tail_bits[tail_mask]).astype(np.uint32)
            ranks = ranks.copy()
            ranks[tail_mask] += _BYTE_POPCOUNT[shifted]
        return ranks

    @property
    def n_ones(self) -> int:
        """Total number of set bits."""
        return int(self._byte_prefix[-1])

    def size_in_bytes(self) -> int:
        """Succinct size: packed bits + rank directory (model for Fig. 10)."""
        return int(self._bytes.size + self._block_ranks.size * 8)
