"""Burrows-Wheeler transform and symbol-count table for the FM-index.

Paper Section 4.1.1: the FM-index consists of

* ``C`` — for every symbol of the alphabet, the number of lexicographically
  smaller symbols in the trajectory string, and
* ``Tbwt`` — the Burrows-Wheeler transform ``Tbwt[i] = T[SA[i] - 1]``
  (wrapping around at position 0).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["bwt_from_suffix_array", "symbol_counts"]


def bwt_from_suffix_array(text: Sequence[int], sa: np.ndarray) -> np.ndarray:
    """Compute ``Tbwt`` from ``text`` and its suffix array.

    ``Tbwt[i] = T[SA[i] - 1]``; for ``SA[i] == 0`` the transform wraps to the
    last character of the string (which, for trajectory strings, is always
    the terminator ``$``).
    """
    arr = np.asarray(text, dtype=np.int64)
    sa = np.asarray(sa, dtype=np.int64)
    if arr.size != sa.size:
        raise ValueError("text and suffix array must have equal length")
    if arr.size == 0:
        return arr.copy()
    return arr[(sa - 1) % arr.size]


def symbol_counts(text: Sequence[int], alphabet_size: int) -> np.ndarray:
    """Build the ``C`` array of the FM-index.

    ``C[c]`` is the number of symbols in ``text`` that are strictly smaller
    than ``c``.  The returned array has ``alphabet_size + 1`` entries so that
    ``C[c + 1] - C[c]`` is the number of occurrences of ``c`` and ``C[-1]``
    equals ``len(text)``.
    """
    arr = np.asarray(text, dtype=np.int64)
    if arr.size and int(arr.max()) >= alphabet_size:
        raise ValueError(
            f"symbol {int(arr.max())} out of range for alphabet size "
            f"{alphabet_size}"
        )
    histogram = np.bincount(arr, minlength=alphabet_size)
    counts = np.zeros(alphabet_size + 1, dtype=np.int64)
    np.cumsum(histogram, out=counts[1:])
    return counts
