"""FM-index over the concatenated trajectory string.

Paper Section 4.1.1.  The index consists of the symbol-count array ``C`` and
the Burrows-Wheeler transform ``Tbwt`` stored in a wavelet tree; backward
search (Procedure 2, ``getISARange``) turns a path into the half-open range
``[st, ed)`` of inverse-suffix-array values of the trajectory positions at
which the path starts.  Its cost is O(|P| log |Sigma|) and is independent of
the number of indexed trajectories.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .bwt import bwt_from_suffix_array, symbol_counts
from .suffix_array import inverse_suffix_array, suffix_array
from .wavelet_tree import _BULK_MIN_PAIRS, WaveletTree

__all__ = ["FMIndex", "TERMINATOR"]

#: The `$` terminator symbol; smaller than every edge symbol (paper: `e > $`).
TERMINATOR = 0


class FMIndex:
    """FM-index of an integer string, with the ISA kept for index building.

    Like every BWT-based index the transform treats the text as cyclic.
    Counts are exact (non-cyclic) whenever the text ends with a terminator
    symbol that never occurs in query patterns — which the trajectory-string
    convention (``T = P_tr0 $ ... $``, paths never contain ``$``) guarantees.

    Parameters
    ----------
    text:
        The trajectory string as a sequence of non-negative integers with
        :data:`TERMINATOR` (0) separating trajectories.  Edge symbols must be
        ``>= 1``.
    alphabet_size:
        Total alphabet size (``max symbol + 1``); lets multiple temporal
        partitions share one alphabet even if a partition does not contain
        every edge.
    """

    def __init__(self, text: Sequence[int], alphabet_size: int | None = None):
        arr = np.asarray(text, dtype=np.int64)
        if arr.size and arr.min() < 0:
            raise ValueError("FM-index symbols must be non-negative")
        if alphabet_size is None:
            alphabet_size = int(arr.max()) + 1 if arr.size else 1
        self._n = int(arr.size)
        self._alphabet_size = int(alphabet_size)
        sa = suffix_array(arr)
        self.isa: Optional[np.ndarray] = inverse_suffix_array(sa)
        self._counts = symbol_counts(arr, self._alphabet_size)
        self._bwt = WaveletTree(bwt_from_suffix_array(arr, sa))

    @classmethod
    def from_arrays(
        cls,
        n: int,
        alphabet_size: int,
        counts: np.ndarray,
        bwt: WaveletTree,
        isa: np.ndarray | None = None,
    ) -> "FMIndex":
        """Rebuild an index around existing components (no suffix sorting).

        Used by the persistence layer: ``counts`` may be a memory-mapped
        array and ``bwt`` a wavelet tree over memory-mapped node payloads.
        ``isa`` is only consumed while *building* the temporal index and is
        not persisted; a loaded index carries ``isa = None``.
        """
        self = cls.__new__(cls)
        self._n = int(n)
        self._alphabet_size = int(alphabet_size)
        self._counts = counts
        self._bwt = bwt
        self.isa = isa
        return self

    def __len__(self) -> int:
        return self._n

    @property
    def alphabet_size(self) -> int:
        return self._alphabet_size

    @property
    def counts(self) -> np.ndarray:
        """The ``C`` array; ``counts[c]`` = #symbols smaller than ``c``."""
        return self._counts

    @property
    def bwt(self) -> WaveletTree:
        """The wavelet tree holding ``Tbwt``."""
        return self._bwt

    def isa_range(self, path: Sequence[int]) -> Tuple[int, int]:
        """Backward search: Procedure 2 (``getISARange``).

        Returns the half-open ISA range ``[st, ed)`` of suffixes of the
        trajectory string that start with ``path``; ``(0, 0)`` when the path
        does not occur.
        """
        if len(path) == 0:
            raise ValueError("isa_range requires a non-empty path")
        alphabet_size = self._alphabet_size
        counts = self._counts
        rank_pair = self._bwt.rank_pair
        symbol = int(path[-1])
        if not 0 <= symbol < alphabet_size:
            return (0, 0)
        st = int(counts[symbol])
        ed = int(counts[symbol + 1])
        for position in range(len(path) - 2, -1, -1):
            if st >= ed:
                return (0, 0)
            symbol = int(path[position])
            if not 0 <= symbol < alphabet_size:
                return (0, 0)
            base = int(counts[symbol])
            rank_st, rank_ed = rank_pair(symbol, st, ed)
            st = base + rank_st
            ed = base + rank_ed
        if st >= ed:
            return (0, 0)
        return (st, ed)

    def isa_ranges(
        self, paths: Sequence[Sequence[int]]
    ) -> List[Tuple[int, int]]:
        """Batched backward search over many paths at once.

        Bit-identical to calling :meth:`isa_range` per path — the per-path
        state machine replicates the scalar check order exactly — but paths
        advance in lockstep and each round's rank queries run as one
        multi-symbol :meth:`~repro.fmindex.wavelet_tree.WaveletTree.
        rank_pairs_frontier` descent, amortising the wavelet-tree walk
        across the whole batch even when every path wants a different
        symbol (PR-5's batched fetch stage supplies such batches).
        """
        for path in paths:
            if len(path) == 0:
                raise ValueError("isa_range requires a non-empty path")
        alphabet_size = self._alphabet_size
        counts = self._counts
        results: List[Tuple[int, int]] = [(0, 0)] * len(paths)
        # Per-path cursor: [path, next position (scanning right-to-left),
        # st, ed, output slot].
        active: List[list] = []
        for out, path in enumerate(paths):
            symbol = int(path[-1])
            if not 0 <= symbol < alphabet_size:
                continue
            st = int(counts[symbol])
            ed = int(counts[symbol + 1])
            if len(path) > 1:
                active.append([path, len(path) - 2, st, ed, out])
            elif st < ed:
                results[out] = (st, ed)
        while active:
            step: List[list] = []
            symbols: List[int] = []
            for cursor in active:
                path, position, st, ed, out = cursor
                if st >= ed:
                    continue  # dead interval: result stays (0, 0)
                symbol = int(path[position])
                if not 0 <= symbol < alphabet_size:
                    continue  # symbol outside alphabet: (0, 0)
                step.append(cursor)
                symbols.append(symbol)
            active = []
            if len(step) < _BULK_MIN_PAIRS:
                # Small round: the scalar descent is cheaper than
                # building position arrays (and bit-identical).
                rank_pair = self._bwt.rank_pair
                for symbol, cursor in zip(symbols, step):
                    base = int(counts[symbol])
                    rank_st, rank_ed = rank_pair(symbol, cursor[2], cursor[3])
                    self._advance_cursor(
                        cursor, base + rank_st, base + rank_ed,
                        results, active,
                    )
                continue
            pairs = len(step)
            i_arr = np.fromiter(
                (c[2] for c in step), dtype=np.int64, count=pairs
            )
            j_arr = np.fromiter(
                (c[3] for c in step), dtype=np.int64, count=pairs
            )
            rank_i, rank_j = self._bwt.rank_pairs_frontier(
                symbols, i_arr, j_arr
            )
            base_arr = counts[np.asarray(symbols, dtype=np.int64)]
            st_arr = base_arr + rank_i
            ed_arr = base_arr + rank_j
            for k, cursor in enumerate(step):
                self._advance_cursor(
                    cursor, int(st_arr[k]), int(ed_arr[k]), results, active,
                )
        return results

    @staticmethod
    def _advance_cursor(
        cursor: list,
        st: int,
        ed: int,
        results: List[Tuple[int, int]],
        active: List[list],
    ) -> None:
        """Step one path cursor after its rank update (shared by both the
        scalar-group and bulk-group branches of :meth:`isa_ranges`)."""
        cursor[1] -= 1
        if cursor[1] < 0:
            if st < ed:
                results[cursor[4]] = (st, ed)
        else:
            cursor[2] = st
            cursor[3] = ed
            active.append(cursor)

    def count(self, path: Sequence[int]) -> int:
        """Number of occurrences of ``path`` in the trajectory string."""
        st, ed = self.isa_range(path)
        return ed - st

    def contains(self, path: Sequence[int]) -> bool:
        """Whether any trajectory traverses ``path`` (paper Section 4.1:
        "it can be established from just the FM-index whether a given path
        is traversed at all")."""
        return self.count(path) > 0

    def size_in_bytes(self) -> int:
        """Succinct size of the index: wavelet tree + the ``C`` array.

        Exactly the resident arrays' bytes.  The inverse suffix array
        (``isa``) is build-time scaffolding — it is dropped on save and
        absent from loaded indexes — so it is deliberately excluded.
        """
        return self._bwt.size_in_bytes() + int(self._counts.nbytes)
