"""FM-index over the concatenated trajectory string.

Paper Section 4.1.1.  The index consists of the symbol-count array ``C`` and
the Burrows-Wheeler transform ``Tbwt`` stored in a wavelet tree; backward
search (Procedure 2, ``getISARange``) turns a path into the half-open range
``[st, ed)`` of inverse-suffix-array values of the trajectory positions at
which the path starts.  Its cost is O(|P| log |Sigma|) and is independent of
the number of indexed trajectories.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .bwt import bwt_from_suffix_array, symbol_counts
from .suffix_array import inverse_suffix_array, suffix_array
from .wavelet_tree import WaveletTree

__all__ = ["FMIndex", "TERMINATOR"]

#: The `$` terminator symbol; smaller than every edge symbol (paper: `e > $`).
TERMINATOR = 0


class FMIndex:
    """FM-index of an integer string, with the ISA kept for index building.

    Like every BWT-based index the transform treats the text as cyclic.
    Counts are exact (non-cyclic) whenever the text ends with a terminator
    symbol that never occurs in query patterns — which the trajectory-string
    convention (``T = P_tr0 $ ... $``, paths never contain ``$``) guarantees.

    Parameters
    ----------
    text:
        The trajectory string as a sequence of non-negative integers with
        :data:`TERMINATOR` (0) separating trajectories.  Edge symbols must be
        ``>= 1``.
    alphabet_size:
        Total alphabet size (``max symbol + 1``); lets multiple temporal
        partitions share one alphabet even if a partition does not contain
        every edge.
    """

    def __init__(self, text: Sequence[int], alphabet_size: int | None = None):
        arr = np.asarray(text, dtype=np.int64)
        if arr.size and arr.min() < 0:
            raise ValueError("FM-index symbols must be non-negative")
        if alphabet_size is None:
            alphabet_size = int(arr.max()) + 1 if arr.size else 1
        self._n = int(arr.size)
        self._alphabet_size = int(alphabet_size)
        sa = suffix_array(arr)
        self.isa = inverse_suffix_array(sa)
        self._counts = symbol_counts(arr, self._alphabet_size)
        self._bwt = WaveletTree(bwt_from_suffix_array(arr, sa))

    def __len__(self) -> int:
        return self._n

    @property
    def alphabet_size(self) -> int:
        return self._alphabet_size

    @property
    def counts(self) -> np.ndarray:
        """The ``C`` array; ``counts[c]`` = #symbols smaller than ``c``."""
        return self._counts

    @property
    def bwt(self) -> WaveletTree:
        """The wavelet tree holding ``Tbwt``."""
        return self._bwt

    def isa_range(self, path: Sequence[int]) -> Tuple[int, int]:
        """Backward search: Procedure 2 (``getISARange``).

        Returns the half-open ISA range ``[st, ed)`` of suffixes of the
        trajectory string that start with ``path``; ``(0, 0)`` when the path
        does not occur.
        """
        if len(path) == 0:
            raise ValueError("isa_range requires a non-empty path")
        symbol = int(path[-1])
        if not 0 <= symbol < self._alphabet_size:
            return (0, 0)
        st = int(self._counts[symbol])
        ed = int(self._counts[symbol + 1])
        for position in range(len(path) - 2, -1, -1):
            if st >= ed:
                return (0, 0)
            symbol = int(path[position])
            if not 0 <= symbol < self._alphabet_size:
                return (0, 0)
            base = int(self._counts[symbol])
            rank_st, rank_ed = self._bwt.rank_pair(symbol, st, ed)
            st = base + rank_st
            ed = base + rank_ed
        if st >= ed:
            return (0, 0)
        return (st, ed)

    def count(self, path: Sequence[int]) -> int:
        """Number of occurrences of ``path`` in the trajectory string."""
        st, ed = self.isa_range(path)
        return ed - st

    def contains(self, path: Sequence[int]) -> bool:
        """Whether any trajectory traverses ``path`` (paper Section 4.1:
        "it can be established from just the FM-index whether a given path
        is traversed at all")."""
        return self.count(path) > 0

    def size_in_bytes(self) -> int:
        """Succinct size of the index: wavelet tree + ``C`` (8 B each)."""
        return self._bwt.size_in_bytes() + 8 * (self._alphabet_size + 1)
