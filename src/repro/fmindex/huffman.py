"""Huffman code construction for the Huffman-shaped wavelet tree.

The paper's FM-index uses sdsl-lite's *integer-alphabet Huffman-shaped*
wavelet tree (Section 6.2), which shapes the tree by symbol frequency so
that total bitvector length approaches the zeroth-order entropy of the text.
"""

from __future__ import annotations

import heapq
from typing import Dict, Sequence, Tuple

__all__ = ["huffman_codes"]


def huffman_codes(frequencies: Dict[int, int]) -> Dict[int, Tuple[int, ...]]:
    """Build Huffman codes for symbols with the given positive frequencies.

    Parameters
    ----------
    frequencies:
        Mapping from symbol to occurrence count.  Symbols with zero or
        negative frequency are ignored.

    Returns
    -------
    dict
        Mapping from symbol to its code as a tuple of bits (0/1).  A
        single-symbol alphabet receives the one-bit code ``(0,)`` so the
        resulting wavelet tree still has one level to store positions.
    """
    items = [(freq, sym) for sym, freq in frequencies.items() if freq > 0]
    if not items:
        return {}
    if len(items) == 1:
        return {items[0][1]: (0,)}

    # Heap entries: (frequency, tie_breaker, tree). Trees are either a leaf
    # symbol or a (left, right) pair.
    heap: list = []
    for tie, (freq, sym) in enumerate(sorted(items)):
        heap.append((freq, tie, sym))
    heapq.heapify(heap)
    next_tie = len(heap)
    while len(heap) > 1:
        f1, _, t1 = heapq.heappop(heap)
        f2, _, t2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, next_tie, (t1, t2)))
        next_tie += 1

    codes: Dict[int, Tuple[int, ...]] = {}

    def assign(tree, prefix: Tuple[int, ...]) -> None:
        if isinstance(tree, tuple):
            assign(tree[0], prefix + (0,))
            assign(tree[1], prefix + (1,))
        else:
            codes[tree] = prefix

    assign(heap[0][2], ())
    return codes


def codes_from_text(text: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """Convenience wrapper: Huffman codes for the symbols of ``text``."""
    frequencies: Dict[int, int] = {}
    for symbol in text:
        symbol = int(symbol)
        frequencies[symbol] = frequencies.get(symbol, 0) + 1
    return huffman_codes(frequencies)
