"""Suffix-array construction for integer-alphabet trajectory strings.

The SNT-index (paper Section 4.1.1) sorts all suffixes of the concatenated
trajectory string ``T = P_tr0 $ P_tr1 $ ... $`` to obtain the suffix array
``SA`` and its inverse ``ISA``.  The authors use Yuta Mori's ``sais-lite``;
here we provide a numpy prefix-doubling construction (O(n log n) sorts,
fast in practice for the scales this reproduction runs at) plus a naive
oracle used by the test-suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["suffix_array", "inverse_suffix_array", "naive_suffix_array"]


def naive_suffix_array(text: Sequence[int]) -> np.ndarray:
    """Build a suffix array by explicitly sorting suffix tuples.

    O(n^2 log n); intended only as a correctness oracle for small inputs.
    """
    n = len(text)
    text = list(text)
    order = sorted(range(n), key=lambda i: text[i:])
    return np.asarray(order, dtype=np.int64)


def suffix_array(text: Sequence[int]) -> np.ndarray:
    """Build the suffix array of ``text`` via numpy prefix doubling.

    Parameters
    ----------
    text:
        Sequence of non-negative integer symbols.  The trajectory-string
        convention of the paper maps the terminator ``$`` to the smallest
        symbol, but no terminator is required by this function: ties between
        overlapping suffixes are broken by suffix length (shorter suffix
        first), which matches comparing plain Python sequences.

    Returns
    -------
    numpy.ndarray
        ``SA`` with ``SA[j]`` = start position of the j-th smallest suffix.
    """
    arr = np.asarray(text, dtype=np.int64)
    n = arr.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("suffix_array requires non-negative symbols")

    # Initial ranks from single symbols. Shift by +1 so that the value 0 can
    # represent "past the end of the string" (shorter suffixes sort first).
    rank = np.empty(n, dtype=np.int64)
    order = np.argsort(arr, kind="stable")
    rank[order] = _dense_ranks(arr[order]) + 1

    k = 1
    sa = order
    while k < n:
        # Pair rank: (rank[i], rank[i + k]) with 0 past the end.
        second = np.zeros(n, dtype=np.int64)
        second[: n - k] = rank[k:]
        sa = np.lexsort((second, rank))
        paired = np.empty(n, dtype=np.int64)
        boundary = np.ones(n, dtype=bool)
        boundary[1:] = (rank[sa[1:]] != rank[sa[:-1]]) | (
            second[sa[1:]] != second[sa[:-1]]
        )
        paired[sa] = np.cumsum(boundary)
        rank = paired
        if rank[sa[-1]] == n:  # all ranks distinct: fully sorted
            break
        k *= 2
    return sa.astype(np.int64, copy=False)


def inverse_suffix_array(sa: np.ndarray) -> np.ndarray:
    """Return ``ISA`` with ``ISA[SA[j]] = j`` (paper Section 4.1.1)."""
    sa = np.asarray(sa, dtype=np.int64)
    isa = np.empty_like(sa)
    isa[sa] = np.arange(sa.size, dtype=np.int64)
    return isa


def _dense_ranks(sorted_values: np.ndarray) -> np.ndarray:
    """Dense 0-based ranks for an already-sorted array."""
    if sorted_values.size == 0:
        return sorted_values
    boundary = np.zeros(sorted_values.size, dtype=np.int64)
    boundary[1:] = (sorted_values[1:] != sorted_values[:-1]).astype(np.int64)
    return np.cumsum(boundary)
