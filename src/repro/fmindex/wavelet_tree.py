"""Huffman-shaped wavelet tree over an integer alphabet.

Stores a sequence so that ``rank_c(i)`` — occurrences of symbol ``c`` in the
prefix ``[0, i)`` — runs in O(|code(c)|) time, i.e. O(log |Sigma|) for a
balanced shape and less for frequent symbols under the Huffman shape (paper
Section 4.1.1: "The Burrows-Wheeler transform is stored in a wavelet tree to
enable rank queries in O(log |Sigma|) time").
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from .bitvector import RankBitvector
from .huffman import huffman_codes

__all__ = ["WaveletTree"]


class WaveletTree:
    """Immutable wavelet tree supporting ``rank`` and ``access``."""

    def __init__(self, text: Sequence[int]):
        arr = np.asarray(text, dtype=np.int64)
        self._n = int(arr.size)
        frequencies: Dict[int, int] = {}
        if self._n:
            symbols, counts = np.unique(arr, return_counts=True)
            frequencies = {int(s): int(c) for s, c in zip(symbols, counts)}
        self._codes: Dict[int, Tuple[int, ...]] = huffman_codes(frequencies)
        self._decode: Dict[Tuple[int, ...], int] = {
            code: sym for sym, code in self._codes.items()
        }
        self._nodes: Dict[Tuple[int, ...], RankBitvector] = {}
        if self._n:
            self._build(arr)

    def _build(self, arr: np.ndarray) -> None:
        max_symbol = int(arr.max())
        code_len = np.zeros(max_symbol + 1, dtype=np.int64)
        for symbol, code in self._codes.items():
            code_len[symbol] = len(code)

        pending = [((), arr)]
        while pending:
            prefix, seq = pending.pop()
            depth = len(prefix)
            # Lookup table: next code bit for every symbol at this depth.
            # Symbols that cannot appear in this node are left at 0; they
            # never influence the constructed bits.
            bit_at = np.zeros(max_symbol + 1, dtype=bool)
            for symbol, code in self._codes.items():
                if len(code) > depth and code[:depth] == prefix:
                    bit_at[symbol] = bool(code[depth])
            bits = bit_at[seq]
            self._nodes[prefix] = RankBitvector(bits)
            left = seq[~bits]
            right = seq[bits]
            if left.size and code_len[left[0]] > depth + 1:
                pending.append((prefix + (0,), left))
            if right.size and code_len[right[0]] > depth + 1:
                pending.append((prefix + (1,), right))

    def __len__(self) -> int:
        return self._n

    @property
    def codes(self) -> Dict[int, Tuple[int, ...]]:
        """Mapping from symbol to Huffman code (tuple of bits)."""
        return dict(self._codes)

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise IndexError(f"rank position {i} out of range [0, {self._n}]")
        code = self._codes.get(int(symbol))
        if code is None:  # symbol never occurs in the text
            return 0
        position = i
        prefix: Tuple[int, ...] = ()
        for bit in code:
            bits = self._nodes[prefix]
            position = bits.rank1(position) if bit else bits.rank0(position)
            prefix = prefix + (bit,)
        return position

    def rank_pair(self, symbol: int, i: int, j: int) -> Tuple[int, int]:
        """Compute ``(rank(symbol, i), rank(symbol, j))`` in one descent.

        Backward search (Procedure 2) always needs the rank at both interval
        endpoints; sharing the descent halves the node lookups.
        """
        code = self._codes.get(int(symbol))
        if code is None:
            return 0, 0
        pos_i, pos_j = i, j
        prefix: Tuple[int, ...] = ()
        for bit in code:
            bits = self._nodes[prefix]
            if bit:
                pos_i = bits.rank1(pos_i)
                pos_j = bits.rank1(pos_j)
            else:
                pos_i = bits.rank0(pos_i)
                pos_j = bits.rank0(pos_j)
            prefix = prefix + (bit,)
        return pos_i, pos_j

    def access(self, i: int) -> int:
        """Return the symbol stored at position ``i``."""
        if not 0 <= i < self._n:
            raise IndexError(f"access position {i} out of range [0, {self._n})")
        prefix: Tuple[int, ...] = ()
        position = i
        while prefix not in self._decode:
            bits = self._nodes[prefix]
            bit = int(bits[position])
            position = bits.rank1(position) if bit else bits.rank0(position)
            prefix = prefix + (bit,)
        return self._decode[prefix]

    def size_in_bytes(self) -> int:
        """Total succinct size of all node bitvectors plus the code table."""
        node_bytes = sum(bits.size_in_bytes() for bits in self._nodes.values())
        # Code table: symbol id (8 B) + code length (1 B) per symbol.
        return node_bytes + 9 * len(self._codes)
