"""Huffman-shaped wavelet tree over an integer alphabet.

Stores a sequence so that ``rank_c(i)`` — occurrences of symbol ``c`` in the
prefix ``[0, i)`` — runs in O(|code(c)|) time, i.e. O(log |Sigma|) for a
balanced shape and less for frequent symbols under the Huffman shape (paper
Section 4.1.1: "The Burrows-Wheeler transform is stored in a wavelet tree to
enable rank queries in O(log |Sigma|) time").

Backward search is the innermost loop of every query, so the per-symbol
descent is precomputed: ``_steps[c]`` lists the ``(node, bit)`` pairs of
``c``'s root-to-leaf path, replacing the prefix-tuple/dict walk with a
flat loop over bitvector :meth:`~repro.fmindex.bitvector.RankBitvector.
rank_pair` calls.  :meth:`WaveletTree.rank_pair_bulk` runs the same
descent for an array of interval endpoints at once, vectorising the rank
layer for the batched backward search (:meth:`repro.fmindex.fm.FMIndex.
isa_ranges`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .bitvector import RankBitvector, rank1_bulk_offsets
from .huffman import huffman_codes

__all__ = ["WaveletTree"]

#: Below this many interval pairs the scalar descent wins: a bulk
#: descent costs ~15 numpy dispatches per tree level regardless of
#: batch size, while the scalar pair descent is ~10 µs flat.  Measured
#: crossover ~32-48 pairs on real sub-path batches; above ~128 the
#: levelwise descent wins >2x and keeps growing with batch size.
_BULK_MIN_PAIRS = 48

#: Levelwise-descent fragmentation cutoff: once fewer live pairs than
#: this remain (only rare, long-code symbols descend that deep), their
#: leftover levels run scalar — below it the flat per-level numpy
#: dispatch cost stops amortising.  Swept 4..48; flat within noise
#: from 16 up.
_FRONTIER_MIN = 16

#: One node of a symbol's precomputed descent: the bitvector plus
#: whether the code bit sends the interval into the one-child.
_Step = Tuple[RankBitvector, bool]


class WaveletTree:
    """Immutable wavelet tree supporting ``rank`` and ``access``."""

    def __init__(self, text: Sequence[int]):
        arr = np.asarray(text, dtype=np.int64)
        self._n = int(arr.size)
        frequencies: Dict[int, int] = {}
        if self._n:
            symbols, counts = np.unique(arr, return_counts=True)
            frequencies = {int(s): int(c) for s, c in zip(symbols, counts)}
        self._codes: Dict[int, Tuple[int, ...]] = huffman_codes(frequencies)
        self._nodes: Dict[Tuple[int, ...], RankBitvector] = {}
        if self._n:
            self._build(arr)
        self._finalize()

    def _build(self, arr: np.ndarray) -> None:
        max_symbol = int(arr.max())
        code_len = np.zeros(max_symbol + 1, dtype=np.int64)
        for symbol, code in self._codes.items():
            code_len[symbol] = len(code)

        pending = [((), arr)]
        while pending:
            prefix, seq = pending.pop()
            depth = len(prefix)
            # Lookup table: next code bit for every symbol at this depth.
            # Symbols that cannot appear in this node are left at 0; they
            # never influence the constructed bits.
            bit_at = np.zeros(max_symbol + 1, dtype=bool)
            for symbol, code in self._codes.items():
                if len(code) > depth and code[:depth] == prefix:
                    bit_at[symbol] = bool(code[depth])
            bits = bit_at[seq]
            self._nodes[prefix] = RankBitvector(bits)
            left = seq[~bits]
            right = seq[bits]
            if left.size and code_len[left[0]] > depth + 1:
                pending.append((prefix + (0,), left))
            if right.size and code_len[right[0]] > depth + 1:
                pending.append((prefix + (1,), right))

    def _finalize(
        self,
        flat_words: np.ndarray | None = None,
        flat_blocks: np.ndarray | None = None,
    ) -> None:
        """Derive the query-time tables from ``_codes`` and ``_nodes``.

        Every proper prefix of a code names a node (the symbol itself
        guarantees the split), so the descent list is total.

        The node payloads are rebound to one flat words/blocks array
        pair in sorted-prefix order — the same layout the persistence
        format writes — so the levelwise frontier descent can answer a
        whole level's ranks across *all* nodes with one offset-based
        bulk call.  ``flat_words``/``flat_blocks`` let a loader whose
        payload is already concatenated (the memory-mapped saved index)
        hand the backing arrays over zero-copy; otherwise the flat pair
        is built here and each node becomes a view into it.
        """
        self._decode: Dict[Tuple[int, ...], int] = {
            code: sym for sym, code in self._codes.items()
        }
        # Flat node storage + per-node offsets (sorted-prefix order).
        ordered_nodes = sorted(self._nodes)
        self._node_id: Dict[Tuple[int, ...], int] = {
            prefix: k for k, prefix in enumerate(ordered_nodes)
        }
        word_sizes = [self._nodes[p].words.size for p in ordered_nodes]
        block_sizes = [
            self._nodes[p].block_ranks.size for p in ordered_nodes
        ]
        self._node_word_off = np.concatenate(
            ([0], np.cumsum(word_sizes, dtype=np.int64))
        )[:-1]
        self._node_block_off = np.concatenate(
            ([0], np.cumsum(block_sizes, dtype=np.int64))
        )[:-1]
        if flat_words is None or flat_blocks is None:
            self._flat_words = (
                np.concatenate(
                    [self._nodes[p].words for p in ordered_nodes]
                )
                if ordered_nodes
                else np.zeros(0, dtype=np.uint64)
            )
            self._flat_blocks = (
                np.concatenate(
                    [self._nodes[p].block_ranks for p in ordered_nodes]
                )
                if ordered_nodes
                else np.zeros(0, dtype=np.int64)
            )
        else:
            if int(flat_words.size) != sum(word_sizes) or int(
                flat_blocks.size
            ) != sum(block_sizes):
                raise ValueError(
                    "flat node payload disagrees with the node set "
                    f"({sum(word_sizes)} words / {sum(block_sizes)} "
                    f"block ranks expected, {flat_words.size} / "
                    f"{flat_blocks.size} given)"
                )
            self._flat_words = flat_words
            self._flat_blocks = flat_blocks
        for k, prefix in enumerate(ordered_nodes):
            node = self._nodes[prefix]
            wo = int(self._node_word_off[k])
            bo = int(self._node_block_off[k])
            self._nodes[prefix] = RankBitvector.from_arrays(
                len(node),
                self._flat_words[wo : wo + word_sizes[k]],
                self._flat_blocks[bo : bo + block_sizes[k]],
            )
        # Child table for the levelwise descent: node k's bit-b child
        # id, or -1 at a leaf edge.
        self._child = np.full((len(ordered_nodes), 2), -1, dtype=np.int64)
        for prefix, k in self._node_id.items():
            for bit in (0, 1):
                child = self._node_id.get(prefix + (bit,))
                if child is not None:
                    self._child[k, bit] = child
        self._steps: Dict[int, Tuple[_Step, ...]] = {}
        for symbol, code in self._codes.items():
            steps: List[_Step] = []
            prefix = ()
            for bit in code:
                steps.append((self._nodes[prefix], bool(bit)))
                prefix = prefix + (bit,)
            self._steps[symbol] = tuple(steps)
        # Dense code table for the multi-symbol frontier descent: row r
        # holds symbol r's code bits (zero-padded) and its length.
        ordered = sorted(self._codes)
        max_len = max(
            (len(self._codes[s]) for s in ordered), default=0
        )
        self._sym_row: Dict[int, int] = {s: r for r, s in enumerate(ordered)}
        self._code_matrix = np.zeros((len(ordered), max_len), dtype=bool)
        self._code_len = np.zeros(len(ordered), dtype=np.int64)
        for row, symbol in enumerate(ordered):
            code = self._codes[symbol]
            self._code_len[row] = len(code)
            self._code_matrix[row, : len(code)] = code

    @classmethod
    def from_arrays(
        cls,
        n: int,
        codes: Dict[int, Tuple[int, ...]],
        nodes: Dict[Tuple[int, ...], RankBitvector],
        flat_words: np.ndarray | None = None,
        flat_blocks: np.ndarray | None = None,
    ) -> "WaveletTree":
        """Rebuild a tree around existing node bitvectors (no re-build).

        Used by the persistence layer: the nodes' arrays may be memory-
        mapped slices of a saved index.  ``codes``/``nodes`` are adopted
        as-is; consistency between them is the writer's contract.  When
        the nodes are slices of one concatenated sorted-prefix payload
        (the saved format's layout), pass that payload as
        ``flat_words``/``flat_blocks`` so the tree adopts it zero-copy
        instead of concatenating a resident duplicate.
        """
        self = cls.__new__(cls)
        self._n = int(n)
        self._codes = dict(codes)
        self._nodes = dict(nodes)
        self._finalize(flat_words=flat_words, flat_blocks=flat_blocks)
        return self

    def __getstate__(self) -> Tuple[int, Dict, Dict]:
        # The derived tables hold memoryview-backed bitvectors shared
        # with _nodes; persist only the defining state.
        return (self._n, self._codes, self._nodes)

    def __setstate__(self, state: Tuple[int, Dict, Dict]) -> None:
        self._n, self._codes, self._nodes = state
        self._finalize()

    def __len__(self) -> int:
        return self._n

    @property
    def codes(self) -> Dict[int, Tuple[int, ...]]:
        """Mapping from symbol to Huffman code (tuple of bits)."""
        return dict(self._codes)

    @property
    def nodes(self) -> Dict[Tuple[int, ...], RankBitvector]:
        """Node bitvectors keyed by code-bit prefix (for serialisation)."""
        return dict(self._nodes)

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise IndexError(f"rank position {i} out of range [0, {self._n}]")
        steps = self._steps.get(int(symbol))
        if steps is None:  # symbol never occurs in the text
            return 0
        position = i
        for bits, bit in steps:
            position = bits.rank1(position) if bit else bits.rank0(position)
        return position

    def rank_pair(self, symbol: int, i: int, j: int) -> Tuple[int, int]:
        """Compute ``(rank(symbol, i), rank(symbol, j))`` in one descent.

        Backward search (Procedure 2) always needs the rank at both interval
        endpoints; sharing the descent halves the node lookups, and once the
        endpoints meet the remaining nodes are walked with a single position
        (equal endpoints can never diverge again).
        """
        steps = self._steps.get(int(symbol))
        if steps is None:
            return 0, 0
        return self._descend_pair(steps, i, j)

    @staticmethod
    def _descend_pair(
        steps: Sequence[_Step], pos_i: int, pos_j: int
    ) -> Tuple[int, int]:
        """Walk an interval pair down a (suffix of a) descent list."""
        for index, (bits, bit) in enumerate(steps):
            if pos_i == pos_j:
                for bits_rest, bit_rest in steps[index:]:
                    pos_i = (
                        bits_rest.rank1(pos_i)
                        if bit_rest
                        else bits_rest.rank0(pos_i)
                    )
                return pos_i, pos_i
            rank_i, rank_j = bits.rank_pair(pos_i, pos_j)
            if bit:
                pos_i, pos_j = rank_i, rank_j
            else:
                pos_i, pos_j = pos_i - rank_i, pos_j - rank_j
        return pos_i, pos_j

    def rank_pair_bulk(
        self, symbol: int, i_positions: np.ndarray, j_positions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`rank_pair` over arrays of interval endpoints.

        Both arrays are validated like
        :meth:`~repro.fmindex.bitvector.RankBitvector.rank1_bulk` (1-D,
        integer dtype, in range) and must have equal length.  Small
        batches fall back to the scalar descent — same integers either
        way, the threshold is purely a constant-factor choice.
        """
        i_pos = np.asarray(i_positions)
        j_pos = np.asarray(j_positions)
        if i_pos.ndim != 1 or j_pos.ndim != 1:
            raise TypeError("positions must be 1-D arrays")
        if i_pos.size != j_pos.size:
            raise TypeError(
                f"endpoint arrays differ in length ({i_pos.size} vs "
                f"{j_pos.size})"
            )
        pairs = int(i_pos.size)
        steps = self._steps.get(int(symbol))
        if steps is None or pairs == 0:
            zeros = np.zeros(pairs, dtype=np.int64)
            return zeros, zeros.copy()
        if pairs < _BULK_MIN_PAIRS:
            out_i = np.zeros(pairs, dtype=np.int64)
            out_j = np.zeros(pairs, dtype=np.int64)
            for k in range(pairs):
                out_i[k], out_j[k] = self.rank_pair(
                    symbol, int(i_pos[k]), int(j_pos[k])
                )
            return out_i, out_j
        root = steps[0][0]
        positions = np.concatenate(
            [
                root._validated_positions(i_pos),
                root._validated_positions(j_pos),
            ]
        )
        for bits, bit in steps:
            ranks = bits.rank1_bulk(positions)
            positions = ranks if bit else positions - ranks
        return positions[:pairs], positions[pairs:]

    def rank_pairs_frontier(
        self,
        symbols: Sequence[int],
        i_positions: np.ndarray,
        j_positions: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`rank_pair` across *many symbols* at once.

        Per-symbol bulk descents (:meth:`rank_pair_bulk`) only pay off
        when many pairs share a symbol; a backward-search round over a
        diverse path batch yields mostly singleton symbol groups.  This
        descent is *levelwise* instead: because every node's payload
        lives in one flat words/blocks pair (see :meth:`_finalize`),
        each tree level answers the ranks of **all** live pairs with a
        single offset-based bulk call
        (:func:`~repro.fmindex.bitvector.rank1_bulk_offsets`), no
        matter how the pairs have spread across nodes — the per-level
        cost is a fixed ~15 numpy dispatches, not one bulk call per
        touched node.  Once fewer than ``_FRONTIER_MIN`` pairs remain
        live (only rare, long-code symbols descend that deep), the
        leftovers finish scalar.  Bit-identical to the scalar
        :meth:`rank_pair` per element; symbols absent from the text
        yield ``(0, 0)``.
        """
        pairs = len(symbols)
        out_i = np.zeros(pairs, dtype=np.int64)
        out_j = np.zeros(pairs, dtype=np.int64)
        if pairs == 0 or not self._nodes:
            return out_i, out_j
        sym_row = self._sym_row
        rows = np.fromiter(
            (sym_row.get(int(s), -1) for s in symbols),
            dtype=np.int64,
            count=pairs,
        )
        root = self._nodes[()]
        ipos = root._validated_positions(i_positions)
        jpos = root._validated_positions(j_positions)
        if ipos.size != pairs or jpos.size != pairs:
            raise TypeError(
                f"symbols and endpoint arrays differ in length "
                f"({pairs} symbols vs {ipos.size}/{jpos.size} positions)"
            )
        pos = np.stack([ipos, jpos])  # (2, pairs): both endpoints at once
        flat_words = self._flat_words
        flat_blocks = self._flat_blocks
        word_off = self._node_word_off
        block_off = self._node_block_off
        child = self._child
        code_matrix = self._code_matrix
        code_len = self._code_len
        steps_of = self._steps
        node = np.zeros(pairs, dtype=np.int64)  # every pair starts at root
        idx = np.nonzero(rows >= 0)[0]
        depth = 0
        while idx.size:
            if idx.size < _FRONTIER_MIN:
                # Fragmented tail: finish the stragglers' remaining
                # descents scalar (same integers, cheaper below the
                # bulk dispatch floor).
                for c in idx.tolist():
                    out_i[c], out_j[c] = self._descend_pair(
                        steps_of[int(symbols[c])][depth:],
                        int(pos[0, c]),
                        int(pos[1, c]),
                    )
                break
            nid = node[idx]
            live_pos = pos[:, idx]
            ranks = rank1_bulk_offsets(
                flat_words,
                flat_blocks,
                word_off[nid],
                block_off[nid],
                live_pos,
            )
            go_one = code_matrix[rows[idx], depth]
            new_pos = np.where(go_one, ranks, live_pos - ranks)
            pos[:, idx] = new_pos
            done = code_len[rows[idx]] == depth + 1
            if done.any():
                finished = idx[done]
                out_i[finished] = new_pos[0, done]
                out_j[finished] = new_pos[1, done]
            live = idx[~done]
            if live.size:
                node[live] = child[node[live], go_one[~done].astype(np.int64)]
            idx = live
            depth += 1
        return out_i, out_j

    def access(self, i: int) -> int:
        """Return the symbol stored at position ``i``."""
        if not 0 <= i < self._n:
            raise IndexError(f"access position {i} out of range [0, {self._n})")
        prefix: Tuple[int, ...] = ()
        position = i
        while prefix not in self._decode:
            bits = self._nodes[prefix]
            bit = int(bits[position])
            position = bits.rank1(position) if bit else bits.rank0(position)
            prefix = prefix + (bit,)
        return self._decode[prefix]

    def size_in_bytes(self) -> int:
        """Total succinct size of all node bitvectors plus the code table.

        The node term is exact (each node reports its resident arrays'
        bytes); the code table is the documented 9 B-per-symbol model
        constant (symbol id 8 B + code length 1 B).
        """
        node_bytes = sum(bits.size_in_bytes() for bits in self._nodes.values())
        return node_bytes + 9 * len(self._codes)
