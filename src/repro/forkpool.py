"""Fork-inherited process fan-out (parallel shard builds, batch serving).

A process pool normally pickles every task argument across the pipe.
For this library's fan-outs that is the dominant cost — trajectory
groups are millions of small objects, and a live service holds locks
that cannot pickle at all.  On ``fork`` platforms the workers instead
inherit the payloads through copy-on-write memory: the parent parks the
job in a module global, the children are forked from it, and only
integer positions go in (results come back pickled as usual — mostly
numpy payloads, which are cheap).

One job per process at a time: the module global can only describe one
fan-out, so concurrent :func:`fork_map` calls from different threads are
refused rather than silently corrupting each other's batches.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

from .errors import ConfigurationError

__all__ = ["fork_map"]

_STATE: dict = {}
_LOCK = threading.Lock()


def _run_position(position: int):
    worker, payloads = _STATE["job"]
    return worker(payloads[position])


def fork_map(
    worker: Callable,
    payloads: Sequence,
    workers: int,
    chunksize: int = 1,
    pickled_fallback: Optional[Callable] = None,
) -> List:
    """``[worker(p) for p in payloads]`` across forked worker processes.

    ``worker`` and ``payloads`` reach the children via fork inheritance,
    so neither needs to be picklable.  Results preserve payload order.

    When the platform lacks the ``fork`` start method, the job runs
    through a regular pool with ``pickled_fallback`` (a module-level
    function applied to pickled payloads) — or raises ``RuntimeError``
    when no fallback is given (e.g. the payloads hold unpicklable
    state).  Raises ``RuntimeError`` likewise when another ``fork_map``
    is already in flight on this process, and
    :class:`~repro.errors.ConfigurationError` (a ``ValueError``) for a
    non-positive worker count — up front, instead of the opaque
    ``ValueError`` ``ProcessPoolExecutor`` would raise mid-flight.
    """
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ConfigurationError(
            f"fork_map workers must be a positive int; got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(
            f"fork_map workers must be positive; got {workers}"
        )
    workers = min(workers, len(payloads))
    if not payloads:
        return []
    if "fork" not in multiprocessing.get_all_start_methods():
        if pickled_fallback is None:
            raise RuntimeError(
                "process fan-out needs the 'fork' start method, which "
                "this platform does not provide"
            )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(pickled_fallback, payloads, chunksize=chunksize)
            )
    with _LOCK:
        if _STATE:
            raise RuntimeError(
                "nested process fan-out is not supported (another "
                "fork_map is in flight on this process)"
            )
        _STATE["job"] = (worker, list(payloads))
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            return list(
                pool.map(
                    _run_position, range(len(payloads)), chunksize=chunksize
                )
            )
    finally:
        with _LOCK:
            _STATE.clear()
