"""Travel-time histograms, convolution, smoothing, and time-of-day stores."""

from .histogram import Histogram
from .likelihood import log_likelihood, smoothed_density
from .tod import TimeOfDayHistogramStore

__all__ = [
    "Histogram",
    "log_likelihood",
    "smoothed_density",
    "TimeOfDayHistogramStore",
]
