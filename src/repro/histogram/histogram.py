"""Travel-time histograms and discrete convolution (paper Section 2.3).

A histogram maps travel-time buckets of fixed width ``h`` to counts.  The
histogram of a path partitioned into sub-paths is the discrete convolution
of the sub-path histograms: ``H = H1 * H2 * ... * Hk``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = ["Histogram"]


class Histogram:
    """Fixed-bucket-width histogram of travel times.

    Buckets are half-open intervals ``[i*h, (i+1)*h)``; only the occupied
    index range is stored (``offset`` = first occupied bucket index).
    """

    __slots__ = ("bucket_width", "offset", "counts")

    def __init__(
        self, bucket_width: float, offset: int, counts: Sequence[float]
    ):
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_width = float(bucket_width)
        self.offset = int(offset)
        self.counts = np.asarray(counts, dtype=np.float64)
        if self.counts.ndim != 1:
            raise ValueError("counts must be one-dimensional")
        if np.any(self.counts < 0):
            raise ValueError("counts must be non-negative")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_values(cls, values: Iterable[float], bucket_width: float) -> "Histogram":
        """``createHistogram``: bucket a set of travel times."""
        arr = np.asarray(list(values) if not hasattr(values, "__len__") else values)
        arr = arr.astype(np.float64, copy=False)
        if arr.size == 0:
            return cls(bucket_width, 0, np.zeros(0))
        if np.any(arr < 0):
            raise ValueError("travel times must be non-negative")
        buckets = np.floor_divide(arr, bucket_width).astype(np.int64)
        offset = int(buckets.min())
        counts = np.bincount(buckets - offset)
        return cls(bucket_width, offset, counts)

    @classmethod
    def from_dict(
        cls, bucket_counts: Dict[int, float], bucket_width: float
    ) -> "Histogram":
        """Build from a ``{bucket_index: count}`` mapping (test helper)."""
        if not bucket_counts:
            return cls(bucket_width, 0, np.zeros(0))
        offset = min(bucket_counts)
        size = max(bucket_counts) - offset + 1
        counts = np.zeros(size)
        for bucket, count in bucket_counts.items():
            counts[bucket - offset] = count
        return cls(bucket_width, offset, counts)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    # ------------------------------------------------------------------ #
    # Wire form (external cache / HTTP tier contract)
    # ------------------------------------------------------------------ #

    def to_wire(self) -> Dict[str, object]:
        """JSON-compatible wire form, inverse of :meth:`from_wire`.

        The single definition of the histogram payload used by
        ``TripQueryResult.to_dict`` and the cross-process
        :class:`~repro.service.cachetier.SharedCacheTier` — float64
        counts round-trip exactly through JSON ``repr``, so a
        deserialised histogram is bit-identical.
        """
        return {
            "bucket_width": self.bucket_width,
            "offset": self.offset,
            "counts": [float(c) for c in self.counts],
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "Histogram":
        return cls(
            payload["bucket_width"],  # type: ignore[arg-type]
            payload["offset"],  # type: ignore[arg-type]
            payload["counts"],  # type: ignore[arg-type]
        )

    @property
    def total(self) -> float:
        """Total mass (number of observations for count histograms)."""
        return float(self.counts.sum())

    def is_empty(self) -> bool:
        return self.total == 0

    @property
    def min_value(self) -> float:
        """Lower edge of the first occupied bucket (``H^min`` in the paper)."""
        occupied = np.nonzero(self.counts)[0]
        if occupied.size == 0:
            raise ValueError("histogram is empty")
        return (self.offset + int(occupied[0])) * self.bucket_width

    @property
    def max_value(self) -> float:
        """Upper edge of the last occupied bucket (``H^max``)."""
        occupied = np.nonzero(self.counts)[0]
        if occupied.size == 0:
            raise ValueError("histogram is empty")
        return (self.offset + int(occupied[-1]) + 1) * self.bucket_width

    @property
    def value_range(self) -> float:
        """``H^max - H^min``; used by shift-and-enlarge (Section 4.2)."""
        return self.max_value - self.min_value

    def mean(self) -> float:
        """Mass-weighted mean of bucket midpoints."""
        if self.is_empty():
            raise ValueError("histogram is empty")
        midpoints = (
            np.arange(self.counts.size) + self.offset + 0.5
        ) * self.bucket_width
        return float(np.average(midpoints, weights=self.counts))

    def quantile(self, q: float) -> float:
        """Value below which a fraction ``q`` of the mass lies.

        Linear interpolation inside the bucket that crosses the quantile;
        used by the risk-averse routing example (e.g. 95th percentile ETA).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.is_empty():
            raise ValueError("histogram is empty")
        cumulative = np.cumsum(self.counts)
        target = q * cumulative[-1]
        bucket = int(np.searchsorted(cumulative, target, side="left"))
        bucket = min(bucket, self.counts.size - 1)
        previous = cumulative[bucket - 1] if bucket else 0.0
        inside = self.counts[bucket]
        fraction = 0.0 if inside == 0 else (target - previous) / inside
        return (self.offset + bucket + fraction) * self.bucket_width

    def mass_at(self, value: float) -> float:
        """Fraction of total mass in the bucket containing ``value``.

        This is the paper's ``f(x, H)`` (Section 5.3.3).
        """
        if self.is_empty():
            return 0.0
        bucket = math.floor(value / self.bucket_width) - self.offset
        if not 0 <= bucket < self.counts.size:
            return 0.0
        return float(self.counts[bucket]) / self.total

    def count_in_range(self, lo: float, hi: float) -> float:
        """``B(H, [lo, hi))``: mass of buckets overlapping ``[lo, hi)``.

        Buckets partially covered contribute fractionally, which reduces to
        the paper's whole-bucket count when the range is bucket-aligned.
        """
        if lo >= hi or self.counts.size == 0:
            return 0.0
        h = self.bucket_width
        starts = (np.arange(self.counts.size) + self.offset) * h
        overlap = np.minimum(starts + h, hi) - np.maximum(starts, lo)
        weights = np.clip(overlap / h, 0.0, 1.0)
        return float(np.dot(weights, self.counts))

    def as_dict(self) -> Dict[int, float]:
        """``{bucket_index: count}`` for occupied buckets."""
        occupied = np.nonzero(self.counts)[0]
        return {
            int(self.offset + i): float(self.counts[i]) for i in occupied
        }

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #

    def convolve(self, other: "Histogram") -> "Histogram":
        """Discrete convolution ``self * other`` (paper Section 2.3).

        Convolving two count histograms yields a histogram over the sums of
        one draw from each; bucket indices add, so the offset of the result
        is the sum of offsets.
        """
        if not np.isclose(self.bucket_width, other.bucket_width):
            raise ValueError("cannot convolve histograms of different widths")
        if self.counts.size == 0 or other.counts.size == 0:
            return Histogram(self.bucket_width, 0, np.zeros(0))
        counts = np.convolve(self.counts, other.counts)
        return Histogram(self.bucket_width, self.offset + other.offset, counts)

    def __mul__(self, other: "Histogram") -> "Histogram":
        return self.convolve(other)

    def merge(self, other: "Histogram") -> "Histogram":
        """Pointwise sum of two histograms (pooling two samples).

        Used when several per-window histograms of one segment are pooled
        into a single distribution (e.g. the segment-level baseline's
        fallback).
        """
        if not np.isclose(self.bucket_width, other.bucket_width):
            raise ValueError("cannot merge histograms of different widths")
        if self.counts.size == 0:
            return Histogram(other.bucket_width, other.offset, other.counts)
        if other.counts.size == 0:
            return Histogram(self.bucket_width, self.offset, self.counts)
        offset = min(self.offset, other.offset)
        end = max(
            self.offset + self.counts.size,
            other.offset + other.counts.size,
        )
        counts = np.zeros(end - offset)
        counts[
            self.offset - offset : self.offset - offset + self.counts.size
        ] += self.counts
        counts[
            other.offset - offset : other.offset - offset + other.counts.size
        ] += other.counts
        return Histogram(self.bucket_width, offset, counts)

    def scaled_to_unit_mass(self) -> "Histogram":
        """Return a copy normalised to total mass 1."""
        total = self.total
        if total == 0:
            raise ValueError("cannot normalise an empty histogram")
        return Histogram(self.bucket_width, self.offset, self.counts / total)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            np.isclose(self.bucket_width, other.bucket_width)
            and self.as_dict() == other.as_dict()
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(h={self.bucket_width}, buckets={self.as_dict()!r})"
        )
