"""Smoothed histogram likelihood (paper Section 5.3.3).

The quality of a result histogram ``H`` is judged by the log-likelihood of
the true travel time ``a`` under the discrete density

    p_H(x) = gamma * f(x, H) + (1 - gamma) * U(x)

where ``f(x, H)`` is the mass fraction of the bucket containing ``x`` and
``U`` is a uniform distribution over ``[t_min, t_max)``.  The smoothing
keeps ``p_H`` strictly positive everywhere in the support.

The paper mixes a bucket *mass* with a uniform *density*; to obtain a
proper density we divide the bucket mass by the bucket width.  The choice
is monotone in the bucket mass, applied identically to every method, and
therefore preserves all comparisons the paper draws from Figure 8.
"""

from __future__ import annotations

import math

from .histogram import Histogram

__all__ = ["smoothed_density", "log_likelihood"]


def smoothed_density(
    value: float,
    histogram: Histogram,
    gamma: float,
    t_min: float,
    t_max: float,
) -> float:
    """Evaluate ``p_H(value)`` with uniform smoothing.

    Parameters
    ----------
    value:
        The observed travel time.
    histogram:
        The estimated travel-time histogram.
    gamma:
        Mixture weight of the histogram component, ``0 < gamma < 1``.
    t_min, t_max:
        Support of the uniform smoothing component.
    """
    if not 0.0 < gamma < 1.0:
        raise ValueError("gamma must be strictly between 0 and 1")
    if t_max <= t_min:
        raise ValueError("t_max must exceed t_min")
    uniform = 1.0 / (t_max - t_min)
    if histogram.is_empty():
        histogram_density = 0.0
    else:
        histogram_density = histogram.mass_at(value) / histogram.bucket_width
    return gamma * histogram_density + (1.0 - gamma) * uniform


def log_likelihood(
    value: float,
    histogram: Histogram,
    gamma: float,
    t_min: float,
    t_max: float,
) -> float:
    """``log L(value, H)`` under the smoothed density."""
    return math.log(smoothed_density(value, histogram, gamma, t_min, t_max))
