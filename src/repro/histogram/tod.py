"""Per-segment time-of-day histograms (paper Section 4.4, Figure 10b).

The accurate cardinality-estimator modes (BT-Acc / CSS-Acc) replace the
uniform time-of-day selectivity assumption with

    sel(P, [ts, te)^R) = B(H_e0, [ts, te)) / B(H_e0, [0, 24h))

where ``H_e`` is a histogram of entry times-of-day of all traversals of
segment ``e``.  When the index is temporally partitioned, one histogram is
kept per (segment, non-empty partition), which is what makes the store's
memory footprint explode at fine partition grain (Figure 10b).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..config import SECONDS_PER_DAY

__all__ = ["TimeOfDayHistogramStore"]


class TimeOfDayHistogramStore:
    """Histogram store mapping ``(edge, partition)`` to a ToD histogram."""

    def __init__(self, bucket_width_s: int = 600):
        if bucket_width_s <= 0 or bucket_width_s > SECONDS_PER_DAY:
            raise ValueError("bucket width must be within (0, 1 day]")
        self.bucket_width_s = int(bucket_width_s)
        self.n_buckets = -(-SECONDS_PER_DAY // self.bucket_width_s)  # ceil
        self._histograms: Dict[Tuple[int, int], np.ndarray] = {}

    def add_traversals(
        self, edge: int, timestamps: np.ndarray, partition: int = 0
    ) -> None:
        """Accumulate entry timestamps of ``edge`` into its histogram."""
        timestamps = np.asarray(timestamps, dtype=np.int64)
        if timestamps.size == 0:
            return
        buckets = np.mod(timestamps, SECONDS_PER_DAY) // self.bucket_width_s
        counts = np.bincount(buckets, minlength=self.n_buckets)
        key = (int(edge), int(partition))
        if key in self._histograms:
            self._histograms[key] += counts
        else:
            self._histograms[key] = counts.astype(np.int64)

    def __len__(self) -> int:
        return len(self._histograms)

    def total(self, edge: int, partition: int = 0) -> int:
        """``B(H_e, [0, 24h))`` — all traversals of the edge."""
        histogram = self._histograms.get((int(edge), int(partition)))
        return int(histogram.sum()) if histogram is not None else 0

    def count_window(
        self, edge: int, start_tod: int, duration: int, partition: int = 0
    ) -> float:
        """``B(H_e, window)`` for a periodic window, fractional at edges.

        ``start_tod`` is taken modulo one day; windows crossing midnight
        wrap around.  Buckets partially covered by the window contribute
        proportionally, so the estimate degrades gracefully for windows
        that are not bucket-aligned.
        """
        histogram = self._histograms.get((int(edge), int(partition)))
        if histogram is None or duration <= 0:
            return 0.0
        if duration >= SECONDS_PER_DAY:
            return float(histogram.sum())
        start = int(start_tod) % SECONDS_PER_DAY
        end = start + int(duration)
        if end <= SECONDS_PER_DAY:
            return self._count_linear(histogram, start, end)
        return self._count_linear(histogram, start, SECONDS_PER_DAY) + (
            self._count_linear(histogram, 0, end - SECONDS_PER_DAY)
        )

    def _count_linear(self, histogram: np.ndarray, lo: int, hi: int) -> float:
        h = self.bucket_width_s
        first, last = lo // h, (hi - 1) // h
        total = 0.0
        for bucket in range(first, last + 1):
            b_lo, b_hi = bucket * h, (bucket + 1) * h
            overlap = min(b_hi, hi) - max(b_lo, lo)
            total += histogram[bucket] * (overlap / h)
        return total

    def selectivity(
        self, edge: int, start_tod: int, duration: int, partition: int = 0
    ) -> float:
        """Formula (2): time-of-day selectivity from the histogram.

        Falls back to the uniform assumption (formula (1)) when the edge
        has no recorded traversals.
        """
        total = self.total(edge, partition)
        if total == 0:
            return min(1.0, duration / SECONDS_PER_DAY)
        return self.count_window(edge, start_tod, duration, partition) / total

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dump the store as ``(keys, counts)`` arrays for serialisation.

        ``keys`` is ``(n, 2)`` int64 of ``(edge, partition)`` pairs in
        insertion order; ``counts`` is ``(n, n_buckets)`` int64.
        """
        if not self._histograms:
            return (
                np.empty((0, 2), dtype=np.int64),
                np.empty((0, self.n_buckets), dtype=np.int64),
            )
        keys = np.asarray(list(self._histograms), dtype=np.int64)
        counts = np.vstack(list(self._histograms.values())).astype(np.int64)
        return keys, counts

    @classmethod
    def from_arrays(
        cls, bucket_width_s: int, keys: np.ndarray, counts: np.ndarray
    ) -> "TimeOfDayHistogramStore":
        """Rebuild a store from :meth:`as_arrays` output."""
        store = cls(bucket_width_s=bucket_width_s)
        if keys.shape[0] != counts.shape[0]:
            raise ValueError("keys/counts row counts differ")
        if keys.shape[0] and counts.shape[1] != store.n_buckets:
            raise ValueError(
                f"counts have {counts.shape[1]} buckets; bucket width "
                f"{bucket_width_s} implies {store.n_buckets}"
            )
        for row in range(keys.shape[0]):
            edge, partition = int(keys[row, 0]), int(keys[row, 1])
            store._histograms[(edge, partition)] = counts[row].astype(
                np.int64, copy=True
            )
        return store

    def size_in_bytes(self) -> int:
        """Modelled store size: 4 B per bucket + 32 B per histogram header.

        Mirrors the Figure 10b accounting where the per-histogram overhead
        is dwarfed by bucket payload at 1-minute grain.
        """
        return len(self._histograms) * (4 * self.n_buckets + 32)
