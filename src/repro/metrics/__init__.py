"""Evaluation metrics: sMAPE, weighted error, log-likelihood, q-error."""

from .accuracy import smape, symmetric_ape, weighted_error_terms
from .likelihood import average_log_likelihood
from .qerror import mean_q_error_log10, q_error, q_error_log10

__all__ = [
    "smape",
    "symmetric_ape",
    "weighted_error_terms",
    "average_log_likelihood",
    "q_error",
    "q_error_log10",
    "mean_q_error_log10",
]
