"""Point-estimate accuracy metrics (paper Sections 5.3.1-5.3.2).

``sMAPE`` compares the sum of sub-query travel-time means against the true
trip duration; the ``weighted error`` scores each sub-query against the
trajectory's true duration over that sub-path, weighted by the sub-path's
share of the trip length.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["smape", "symmetric_ape", "weighted_error_terms"]


def symmetric_ape(estimate: float, truth: float) -> float:
    """Symmetric absolute percentage error of one estimate, in percent.

    ``200 * |est - truth| / (est + truth)``; bounded by [0, 200].
    """
    denominator = 0.5 * (estimate + truth)
    if denominator <= 0:
        raise ValueError("sMAPE requires positive estimate + truth")
    return 100.0 * abs(estimate - truth) / denominator


def smape(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean symmetric absolute percentage error over a query set."""
    if len(estimates) != len(truths):
        raise ValueError("estimates and truths must align")
    if not estimates:
        raise ValueError("sMAPE of an empty query set is undefined")
    return float(
        np.mean(
            [symmetric_ape(e, t) for e, t in zip(estimates, truths)]
        )
    )


def weighted_error_terms(
    sub_means: Sequence[float],
    sub_truths: Sequence[float],
    sub_lengths_m: Sequence[float],
) -> float:
    """Weighted error of one query (inner sum of paper Section 5.3.2).

    Parameters
    ----------
    sub_means:
        ``X_bar_j`` — retrieved travel-time mean per final sub-query.
    sub_truths:
        ``a^{P_j}_tr`` — the query trajectory's true duration per sub-path.
    sub_lengths_m:
        Sub-path lengths in meters; converted into weights ``w_j`` summing
        to one.
    """
    if not (len(sub_means) == len(sub_truths) == len(sub_lengths_m)):
        raise ValueError("per-sub-query arrays must align")
    if not sub_means:
        raise ValueError("weighted error needs at least one sub-query")
    total_length = float(sum(sub_lengths_m))
    if total_length <= 0:
        raise ValueError("total path length must be positive")
    error = 0.0
    for mean, truth, length in zip(sub_means, sub_truths, sub_lengths_m):
        weight = length / total_length
        error += weight * symmetric_ape(mean, truth)
    return error
