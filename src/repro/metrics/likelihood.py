"""Histogram-quality metric: average log-likelihood (paper Section 5.3.3)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import DEFAULT_GAMMA
from ..histogram.histogram import Histogram
from ..histogram.likelihood import log_likelihood

__all__ = ["average_log_likelihood"]


def average_log_likelihood(
    truths: Sequence[float],
    histograms: Sequence[Histogram],
    gamma: float = DEFAULT_GAMMA,
    t_min: float = 0.0,
    t_max: float | None = None,
) -> float:
    """``(1/|Q|) sum_i log L(a_tr_i, H_i)`` over the query set.

    ``t_min``/``t_max`` bound the uniform smoothing support; ``t_max``
    defaults to twice the largest true duration, covering every observed
    value.
    """
    if len(truths) != len(histograms):
        raise ValueError("truths and histograms must align")
    if not truths:
        raise ValueError("log-likelihood of an empty set is undefined")
    if t_max is None:
        t_max = 2.0 * max(truths) + 1.0
    values = [
        log_likelihood(truth, histogram, gamma, t_min, t_max)
        for truth, histogram in zip(truths, histograms)
    ]
    return float(np.mean(values))
