"""Q-error for cardinality estimates (paper Section 5.3.4).

``q = max(beta_hat' / n', n' / beta_hat')`` with both sides clamped to at
least one (Stefanoni et al.), so empty results and zero estimates remain
well-defined.  The paper reports the q-error in orders of magnitude
(``10^y``), i.e. ``log10(q)``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["q_error", "q_error_log10", "mean_q_error_log10"]


def q_error(estimate: float, actual: float) -> float:
    """The q-error of one estimate; always >= 1."""
    estimate_clamped = max(float(estimate), 1.0)
    actual_clamped = max(float(actual), 1.0)
    return max(
        estimate_clamped / actual_clamped, actual_clamped / estimate_clamped
    )


def q_error_log10(estimate: float, actual: float) -> float:
    """Orders of magnitude between estimate and truth (paper Fig. 11a)."""
    return math.log10(q_error(estimate, actual))


def mean_q_error_log10(
    estimates: Sequence[float], actuals: Sequence[float]
) -> float:
    """Average log10 q-error over a query set."""
    if len(estimates) != len(actuals):
        raise ValueError("estimates and actuals must align")
    if not estimates:
        raise ValueError("q-error of an empty set is undefined")
    return float(
        np.mean([q_error_log10(e, a) for e, a in zip(estimates, actuals)])
    )
