"""Road-network substrate: graph model, categories, zones, generation, routing."""

from .categories import MAIN_ROAD_CATEGORIES, RoadCategory
from .generator import SyntheticNetwork, TownInfo, generate_network
from .graph import Edge, RoadNetwork
from .io import (
    load_network,
    load_trajectories,
    save_network,
    save_trajectories,
)
from .routing import alternative_paths, shortest_path
from .zones import ZoneGeometry, ZoneMap, ZoneType

__all__ = [
    "save_network",
    "load_network",
    "save_trajectories",
    "load_trajectories",
    "Edge",
    "RoadNetwork",
    "RoadCategory",
    "MAIN_ROAD_CATEGORIES",
    "ZoneType",
    "ZoneGeometry",
    "ZoneMap",
    "SyntheticNetwork",
    "TownInfo",
    "generate_network",
    "shortest_path",
    "alternative_paths",
]
