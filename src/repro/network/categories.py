"""Road segment categories.

The paper's network (OpenStreetMap North Denmark) distinguishes 17 segment
categories (Section 5.1.1); category-based partitioning (pi_C) splits query
paths at category changes, and the pi_MDM method applies user predicates
only on *main* roads (motorways and other major connecting roads).

We adopt the standard OSM ``highway`` categories.  Each category carries a
default speed limit used when a segment's own limit is unknown — the paper
uses the median of known limits per category; the generator leaves a
fraction of limits unset to exercise exactly that fallback.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["RoadCategory", "MAIN_ROAD_CATEGORIES"]


class RoadCategory(Enum):
    """The 17 OSM-style segment categories used by the reproduction."""

    MOTORWAY = "motorway"
    MOTORWAY_LINK = "motorway_link"
    TRUNK = "trunk"
    TRUNK_LINK = "trunk_link"
    PRIMARY = "primary"
    PRIMARY_LINK = "primary_link"
    SECONDARY = "secondary"
    SECONDARY_LINK = "secondary_link"
    TERTIARY = "tertiary"
    TERTIARY_LINK = "tertiary_link"
    UNCLASSIFIED = "unclassified"
    RESIDENTIAL = "residential"
    LIVING_STREET = "living_street"
    SERVICE = "service"
    ROAD = "road"
    TRACK = "track"
    PATH = "path"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Categories considered "main roads" by the pi_MDM partitioning method
#: (paper Section 6.1: "motorways or other major roads connecting cities").
MAIN_ROAD_CATEGORIES = frozenset(
    {
        RoadCategory.MOTORWAY,
        RoadCategory.MOTORWAY_LINK,
        RoadCategory.TRUNK,
        RoadCategory.TRUNK_LINK,
        RoadCategory.PRIMARY,
        RoadCategory.PRIMARY_LINK,
    }
)

#: Typical speed limits (km/h) per category, used as a last-resort fallback
#: when no segment of a category has a known limit.
TYPICAL_SPEED_LIMIT_KMH = {
    RoadCategory.MOTORWAY: 110,
    RoadCategory.MOTORWAY_LINK: 80,
    RoadCategory.TRUNK: 90,
    RoadCategory.TRUNK_LINK: 70,
    RoadCategory.PRIMARY: 80,
    RoadCategory.PRIMARY_LINK: 60,
    RoadCategory.SECONDARY: 60,
    RoadCategory.SECONDARY_LINK: 50,
    RoadCategory.TERTIARY: 50,
    RoadCategory.TERTIARY_LINK: 50,
    RoadCategory.UNCLASSIFIED: 50,
    RoadCategory.RESIDENTIAL: 50,
    RoadCategory.LIVING_STREET: 15,
    RoadCategory.SERVICE: 30,
    RoadCategory.ROAD: 50,
    RoadCategory.TRACK: 30,
    RoadCategory.PATH: 10,
}
