"""Synthetic road-network generator.

Substitutes the paper's OpenStreetMap extract of Northern Denmark
(Section 5.1.1).  The generated region consists of

* several *towns*, each a Manhattan grid of residential streets with
  secondary/tertiary arterials (CITY zone),
* a *motorway* chain connecting consecutive towns (110 km/h, RURAL) with
  motorway_link ramps, plus a slower parallel *old road* (trunk/primary),
* a *summer-house* area attached to the last town (SUMMER_HOUSE zone),

which gives every property the evaluation relies on: 17-category labels,
zone labels with long same-zone runs, speed limits with a missing fraction
(exercising the category-median fallback), and route diversity between any
two towns (fast motorway vs. old road).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import ExperimentScale, get_scale
from .categories import RoadCategory
from .graph import Edge, RoadNetwork
from .zones import ZoneGeometry, ZoneMap, ZoneType

__all__ = ["SyntheticNetwork", "TownInfo", "generate_network"]

#: Distance between neighbouring town-grid intersections (meters).
BLOCK_SPACING_M = 150.0
#: Distance between consecutive town centres (meters).
TOWN_SPACING_M = 6000.0
#: Fraction of edges whose speed limit is "known" (rest use the fallback).
KNOWN_SPEED_FRACTION = 0.85


@dataclass
class TownInfo:
    """Bookkeeping for one generated town."""

    index: int
    center: Tuple[float, float]
    vertex_grid: Dict[Tuple[int, int], int] = field(default_factory=dict)
    home_vertices: List[int] = field(default_factory=list)
    work_vertices: List[int] = field(default_factory=list)


@dataclass
class SyntheticNetwork:
    """A generated network plus its zone map and town bookkeeping."""

    network: RoadNetwork
    zone_map: ZoneMap
    towns: List[TownInfo]
    summer_vertices: List[int]

    @property
    def n_edges(self) -> int:
        return self.network.n_edges


class _Builder:
    def __init__(self, seed: int):
        self.network = RoadNetwork()
        self.rng = np.random.default_rng(seed)
        self.next_vertex = 0
        self.next_edge = 1  # edge ids start at 1; 0 is the FM terminator
        self.zone_map = ZoneMap()

    def vertex(self, x: float, y: float) -> int:
        vertex_id = self.next_vertex
        self.network.add_vertex(vertex_id, (x, y))
        self.next_vertex += 1
        return vertex_id

    def _known_speed(self, speed: float) -> Optional[float]:
        if self.rng.random() < KNOWN_SPEED_FRACTION:
            return speed
        return None

    def one_way(
        self,
        source: int,
        target: int,
        category: RoadCategory,
        speed_kmh: float,
    ) -> int:
        sx, sy = self.network.position(source)
        tx, ty = self.network.position(target)
        length = max(1.0, math.hypot(tx - sx, ty - sy))
        zone = self.zone_map.classify_segment((sx, sy), (tx, ty))
        edge = Edge(
            edge_id=self.next_edge,
            source=source,
            target=target,
            category=category,
            zone=zone,
            length_m=length,
            speed_limit_kmh=self._known_speed(speed_kmh),
        )
        self.network.add_edge(edge)
        self.next_edge += 1
        return edge.edge_id

    def two_way(
        self,
        v1: int,
        v2: int,
        category: RoadCategory,
        speed_kmh: float,
    ) -> Tuple[int, int]:
        return (
            self.one_way(v1, v2, category, speed_kmh),
            self.one_way(v2, v1, category, speed_kmh),
        )


def _line_category(line: int, blocks: int, rng) -> Tuple[RoadCategory, float]:
    """Street category for one grid line (row or column) of a town.

    The central line is a secondary arterial, the border ring tertiary,
    everything else a minor street with some category variety.
    """
    middle = blocks // 2
    if line == middle:
        return RoadCategory.SECONDARY, 60.0
    if line in (0, blocks - 1):
        return RoadCategory.TERTIARY, 50.0
    roll = rng.random()
    if roll < 0.06:
        return RoadCategory.LIVING_STREET, 15.0
    if roll < 0.12:
        return RoadCategory.SERVICE, 30.0
    if roll < 0.16:
        return RoadCategory.UNCLASSIFIED, 50.0
    return RoadCategory.RESIDENTIAL, 50.0


def _build_town(builder: _Builder, index: int, blocks: int) -> TownInfo:
    center_x = index * TOWN_SPACING_M
    half = (blocks - 1) * BLOCK_SPACING_M / 2.0
    town = TownInfo(index=index, center=(center_x, 0.0))

    for row in range(blocks):
        for col in range(blocks):
            x = center_x - half + col * BLOCK_SPACING_M
            y = -half + row * BLOCK_SPACING_M
            town.vertex_grid[(row, col)] = builder.vertex(x, y)

    middle = blocks // 2
    for row in range(blocks):
        for col in range(blocks):
            vertex = town.vertex_grid[(row, col)]
            if col + 1 < blocks:
                # Horizontal street: category of the row line.
                category, speed = _line_category(row, blocks, builder.rng)
                builder.two_way(
                    vertex, town.vertex_grid[(row, col + 1)], category, speed
                )
            if row + 1 < blocks:
                # Vertical street: category of the column line.
                category, speed = _line_category(col, blocks, builder.rng)
                builder.two_way(
                    vertex, town.vertex_grid[(row + 1, col)], category, speed
                )

    # Home vertices: interior residential intersections.
    # Work vertices: along the central cross (shops/offices).
    for (row, col), vertex in town.vertex_grid.items():
        if row == middle or col == middle:
            town.work_vertices.append(vertex)
        elif 0 < row < blocks - 1 and 0 < col < blocks - 1:
            town.home_vertices.append(vertex)
    if not town.home_vertices:  # degenerate small grids
        town.home_vertices = list(town.vertex_grid.values())
    return town


def _connect_towns(
    builder: _Builder, west: TownInfo, east: TownInfo, blocks: int
) -> None:
    """Motorway + parallel old road between two consecutive towns."""
    middle = blocks // 2
    west_gate = west.vertex_grid[(middle, blocks - 1)]
    east_gate = east.vertex_grid[(middle, 0)]
    west_x, west_y = builder.network.position(west_gate)
    east_x, east_y = builder.network.position(east_gate)

    # Motorway: offset to the north, ~900 m segments, ramps at both ends.
    motorway_y = west_y + 800.0
    n_segments = max(2, int((east_x - west_x) / 900.0))
    xs = np.linspace(west_x + 400.0, east_x - 400.0, n_segments + 1)
    ramp_west = builder.vertex(xs[0], motorway_y)
    builder.two_way(west_gate, ramp_west, RoadCategory.MOTORWAY_LINK, 80.0)
    previous = ramp_west
    for x in xs[1:]:
        vertex = builder.vertex(x, motorway_y)
        builder.two_way(previous, vertex, RoadCategory.MOTORWAY, 110.0)
        previous = vertex
    builder.two_way(previous, east_gate, RoadCategory.MOTORWAY_LINK, 80.0)

    # Old road: straight primary/trunk at town level, more segments.
    n_old = max(3, int((east_x - west_x) / 600.0))
    xs_old = np.linspace(west_x, east_x, n_old + 1)
    previous = west_gate
    for i, x in enumerate(xs_old[1:-1], start=1):
        vertex = builder.vertex(x, west_y)
        category = (
            RoadCategory.TRUNK if i % 3 == 0 else RoadCategory.PRIMARY
        )
        builder.two_way(previous, vertex, category, 80.0)
        previous = vertex
    builder.two_way(previous, east_gate, RoadCategory.PRIMARY, 80.0)


def _build_summer_area(
    builder: _Builder, last_town: TownInfo, blocks: int
) -> List[int]:
    """A small summer-house grid south of the last town."""
    middle = blocks // 2
    anchor = last_town.vertex_grid[(0, middle)]
    anchor_x, anchor_y = builder.network.position(anchor)
    base_y = anchor_y - 1500.0

    approach = builder.vertex(anchor_x, base_y + 700.0)
    builder.two_way(anchor, approach, RoadCategory.TERTIARY, 60.0)

    vertices: List[int] = []
    grid: Dict[Tuple[int, int], int] = {}
    for row in range(2):
        for col in range(3):
            vertex = builder.vertex(
                anchor_x + (col - 1) * 200.0, base_y - row * 200.0
            )
            grid[(row, col)] = vertex
            vertices.append(vertex)
    builder.two_way(approach, grid[(0, 1)], RoadCategory.UNCLASSIFIED, 40.0)
    for row in range(2):
        for col in range(3):
            if col + 1 < 3:
                builder.two_way(
                    grid[(row, col)], grid[(row, col + 1)],
                    RoadCategory.TRACK, 30.0,
                )
            if row + 1 < 2:
                builder.two_way(
                    grid[(row, col)], grid[(row + 1, col)],
                    RoadCategory.TRACK, 30.0,
                )
    return vertices


def generate_network(
    scale: ExperimentScale | str | None = None, seed: int = 0
) -> SyntheticNetwork:
    """Generate the synthetic region for an experiment scale.

    Deterministic for a given ``(scale, seed)`` pair.
    """
    if not isinstance(scale, ExperimentScale):
        scale = get_scale(scale if isinstance(scale, str) else None)
    builder = _Builder(seed)
    blocks = scale.town_blocks
    half = (blocks - 1) * BLOCK_SPACING_M / 2.0

    # Zone geometries must exist before edges are classified.
    for index in range(scale.grid_towns):
        builder.zone_map.add(
            ZoneGeometry(
                center=(index * TOWN_SPACING_M, 0.0),
                radius=half * 1.45 + 120.0,
                zone_type=ZoneType.CITY,
            )
        )
    last_center_x = (scale.grid_towns - 1) * TOWN_SPACING_M
    builder.zone_map.add(
        ZoneGeometry(
            center=(last_center_x, -(half + 1700.0)),
            radius=900.0,
            zone_type=ZoneType.SUMMER_HOUSE,
        )
    )

    towns = [
        _build_town(builder, index, blocks) for index in range(scale.grid_towns)
    ]
    for west, east in zip(towns, towns[1:]):
        _connect_towns(builder, west, east, blocks)
    summer_vertices = _build_summer_area(builder, towns[-1], blocks)

    builder.network.validate()
    return SyntheticNetwork(
        network=builder.network,
        zone_map=builder.zone_map,
        towns=towns,
        summer_vertices=summer_vertices,
    )
