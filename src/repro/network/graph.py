"""The spatial network graph G = (V, E, F) (paper Section 2.2).

Vertices are intersections with planar coordinates; edges are *directed*
road segments carrying the attribute functions F: category, zone, speed
limit (km/h) and length (m).  From F the fallback travel-time estimate

    estimateTT(e) = 3.6 * length(e) / speed_limit(e)

is derived (Table 1), returning the traversal time in seconds at the speed
limit.  Edge identifiers start at 1 — symbol 0 is reserved for the ``$``
trajectory-string terminator of the FM-index.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import NetworkError, UnknownEdgeError
from .categories import TYPICAL_SPEED_LIMIT_KMH, RoadCategory
from .zones import ZoneType

__all__ = ["Edge", "RoadNetwork"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class Edge:
    """A directed road segment with its F-attributes."""

    edge_id: int
    source: int
    target: int
    category: RoadCategory
    zone: ZoneType
    length_m: float
    #: ``None`` when OSM does not know the limit; the network then falls
    #: back to the median limit of the edge's category (paper 5.1.1).
    speed_limit_kmh: Optional[float] = None

    def __post_init__(self):
        if self.edge_id < 1:
            raise NetworkError("edge ids must be >= 1 (0 is the terminator)")
        if self.length_m <= 0:
            raise NetworkError(f"edge {self.edge_id}: non-positive length")
        if self.speed_limit_kmh is not None and self.speed_limit_kmh <= 0:
            raise NetworkError(f"edge {self.edge_id}: non-positive speed limit")


class RoadNetwork:
    """Directed road-network graph with attribute functions and fallbacks."""

    def __init__(self):
        self._vertices: Dict[int, Point] = {}
        self._edges: Dict[int, Edge] = {}
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}
        self._median_speed_cache: Dict[RoadCategory, float] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_vertex(self, vertex_id: int, position: Point) -> None:
        self._vertices[int(vertex_id)] = (float(position[0]), float(position[1]))

    def add_edge(self, edge: Edge) -> None:
        if edge.edge_id in self._edges:
            raise NetworkError(f"duplicate edge id {edge.edge_id}")
        if edge.source not in self._vertices or edge.target not in self._vertices:
            raise NetworkError(
                f"edge {edge.edge_id}: endpoints must be added as vertices first"
            )
        self._edges[edge.edge_id] = edge
        self._out.setdefault(edge.source, []).append(edge.edge_id)
        self._in.setdefault(edge.target, []).append(edge.edge_id)
        self._median_speed_cache.clear()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    @property
    def n_vertices(self) -> int:
        return len(self._vertices)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> Iterable[int]:
        return self._vertices.keys()

    def edges(self) -> Iterable[Edge]:
        return self._edges.values()

    def edge_ids(self) -> Iterable[int]:
        return self._edges.keys()

    def edge(self, edge_id: int) -> Edge:
        try:
            return self._edges[int(edge_id)]
        except KeyError:
            raise UnknownEdgeError(edge_id) from None

    def has_edge(self, edge_id: int) -> bool:
        return int(edge_id) in self._edges

    def position(self, vertex_id: int) -> Point:
        try:
            return self._vertices[int(vertex_id)]
        except KeyError:
            raise NetworkError(f"unknown vertex {vertex_id}") from None

    def out_edges(self, vertex_id: int) -> List[int]:
        return list(self._out.get(int(vertex_id), ()))

    def in_edges(self, vertex_id: int) -> List[int]:
        return list(self._in.get(int(vertex_id), ()))

    @property
    def alphabet_size(self) -> int:
        """FM-index alphabet size: max edge id + 1 (for the terminator)."""
        return (max(self._edges) + 1) if self._edges else 1

    # ------------------------------------------------------------------ #
    # Attribute functions and estimateTT
    # ------------------------------------------------------------------ #

    def speed_limit(self, edge_id: int) -> float:
        """Speed limit in km/h, imputed per paper Section 5.1.1.

        If the segment's own limit is unknown, the median of all known
        limits of its category is used; if the whole category is unknown,
        a typical limit for the category.
        """
        edge = self.edge(edge_id)
        if edge.speed_limit_kmh is not None:
            return edge.speed_limit_kmh
        return self._median_category_speed(edge.category)

    def _median_category_speed(self, category: RoadCategory) -> float:
        cached = self._median_speed_cache.get(category)
        if cached is not None:
            return cached
        known = [
            e.speed_limit_kmh
            for e in self._edges.values()
            if e.category is category and e.speed_limit_kmh is not None
        ]
        value = (
            float(statistics.median(known))
            if known
            else float(TYPICAL_SPEED_LIMIT_KMH[category])
        )
        self._median_speed_cache[category] = value
        return value

    def estimate_tt(self, edge_id: int) -> float:
        """``estimateTT``: seconds to traverse the edge at the speed limit.

        ``estimateTT(e) = 3.6 * F(e).l / F(e).sl`` (paper Section 2.2);
        used as a fallback when no trajectory data is available.
        """
        edge = self.edge(edge_id)
        return 3.6 * edge.length_m / self.speed_limit(edge_id)

    # ------------------------------------------------------------------ #
    # Path helpers
    # ------------------------------------------------------------------ #

    def is_path(self, edge_ids: Sequence[int]) -> bool:
        """Whether the edge sequence is traversable (P in paper 2.2)."""
        if not edge_ids:
            return False
        for first, second in zip(edge_ids, edge_ids[1:]):
            if self.edge(first).target != self.edge(second).source:
                return False
        return True

    def path_length_m(self, edge_ids: Sequence[int]) -> float:
        """Total length of a path in meters."""
        return sum(self.edge(e).length_m for e in edge_ids)

    def path_estimate_tt(self, edge_ids: Sequence[int]) -> float:
        """Speed-limit travel-time estimate summed over a path."""
        return sum(self.estimate_tt(e) for e in edge_ids)

    def validate(self) -> None:
        """Structural validation; raises :class:`NetworkError`."""
        for edge in self._edges.values():
            if edge.source not in self._vertices:
                raise NetworkError(f"edge {edge.edge_id}: missing source")
            if edge.target not in self._vertices:
                raise NetworkError(f"edge {edge.edge_id}: missing target")
