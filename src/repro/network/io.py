"""Network and trajectory (de)serialisation.

JSON round-trips for road networks and a compact CSV-like format for
trajectory sets, so generated worlds can be persisted and reloaded
without regeneration (the paper's setup loads "trajectory and map data
from disk", Section 6.3).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import NetworkError
from ..trajectories.model import Trajectory, TrajectoryPoint, TrajectorySet
from .categories import RoadCategory
from .graph import Edge, RoadNetwork
from .zones import ZoneType

__all__ = [
    "save_network",
    "load_network",
    "save_trajectories",
    "load_trajectories",
]

PathLike = Union[str, Path]


def save_network(network: RoadNetwork, path: PathLike) -> None:
    """Write a road network to a JSON file."""
    payload = {
        "vertices": [
            {"id": v, "x": network.position(v)[0], "y": network.position(v)[1]}
            for v in network.vertices()
        ],
        "edges": [
            {
                "id": e.edge_id,
                "source": e.source,
                "target": e.target,
                "category": e.category.value,
                "zone": e.zone.value,
                "length_m": e.length_m,
                "speed_limit_kmh": e.speed_limit_kmh,
            }
            for e in network.edges()
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_network(path: PathLike) -> RoadNetwork:
    """Read a road network from a JSON file written by :func:`save_network`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise NetworkError(f"cannot load network from {path}: {exc}") from exc
    network = RoadNetwork()
    for vertex in payload.get("vertices", ()):
        network.add_vertex(vertex["id"], (vertex["x"], vertex["y"]))
    for edge in payload.get("edges", ()):
        network.add_edge(
            Edge(
                edge_id=edge["id"],
                source=edge["source"],
                target=edge["target"],
                category=RoadCategory(edge["category"]),
                zone=ZoneType(edge["zone"]),
                length_m=edge["length_m"],
                speed_limit_kmh=edge["speed_limit_kmh"],
            )
        )
    return network


def save_trajectories(trajectories: TrajectorySet, path: PathLike) -> None:
    """Write a trajectory set as line-oriented records.

    Format per line: ``traj_id,user_id,edge:t:tt;edge:t:tt;...`` — close
    to the ITSP export format (trajectory id, vehicle id, segment id,
    entry time, time on segment).
    """
    lines = []
    for trajectory in trajectories:
        points = ";".join(
            f"{p.edge}:{p.t}:{p.tt:g}" for p in trajectory.points
        )
        lines.append(f"{trajectory.traj_id},{trajectory.user_id},{points}")
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_trajectories(path: PathLike) -> TrajectorySet:
    """Read a trajectory set written by :func:`save_trajectories`."""
    trajectories = []
    text = Path(path).read_text()
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            traj_id, user_id, points_raw = line.split(",", 2)
            points = []
            for token in points_raw.split(";"):
                edge, t, tt = token.split(":")
                points.append(
                    TrajectoryPoint(int(edge), int(t), float(tt))
                )
        except ValueError as exc:
            raise NetworkError(
                f"{path}:{line_number}: malformed trajectory line"
            ) from exc
        trajectories.append(
            Trajectory(int(traj_id), int(user_id), points)
        )
    return TrajectorySet(trajectories)
