"""Shortest-path routing over the road network.

Used by the trajectory generator (drivers route by expected travel time
with personal taste perturbations) and by the risk-averse routing example
(generate alternatives, cost each with a travel-time histogram query).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import NetworkError
from .graph import RoadNetwork

__all__ = ["shortest_path", "alternative_paths"]


def shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    edge_weight: Optional[Callable[[int], float]] = None,
) -> Optional[List[int]]:
    """Dijkstra shortest path; returns an edge-id path or ``None``.

    Parameters
    ----------
    network:
        The road network.
    source, target:
        Vertex ids.
    edge_weight:
        Weight function mapping edge id to a positive cost; defaults to the
        network's ``estimateTT`` (expected seconds at the speed limit).
    """
    if edge_weight is None:
        edge_weight = network.estimate_tt
    if source == target:
        return []
    distances: Dict[int, float] = {source: 0.0}
    predecessor_edge: Dict[int, int] = {}
    heap: List = [(0.0, source)]
    visited = set()
    while heap:
        distance, vertex = heapq.heappop(heap)
        if vertex in visited:
            continue
        if vertex == target:
            break
        visited.add(vertex)
        for edge_id in network.out_edges(vertex):
            weight = edge_weight(edge_id)
            if weight <= 0:
                raise NetworkError(f"non-positive weight for edge {edge_id}")
            neighbour = network.edge(edge_id).target
            candidate = distance + weight
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                predecessor_edge[neighbour] = edge_id
                heapq.heappush(heap, (candidate, neighbour))
    if target not in predecessor_edge:
        return None
    path: List[int] = []
    vertex = target
    while vertex != source:
        edge_id = predecessor_edge[vertex]
        path.append(edge_id)
        vertex = network.edge(edge_id).source
    path.reverse()
    return path


def alternative_paths(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int = 3,
    penalty: float = 1.4,
) -> List[List[int]]:
    """Generate up to ``k`` distinct paths via iterative edge penalisation.

    After each shortest-path computation, the weights of its edges are
    multiplied by ``penalty``, steering subsequent searches onto
    alternative routes.  Simple but effective for the routing example.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if penalty <= 1.0:
        raise ValueError("penalty must exceed 1.0")
    weights: Dict[int, float] = {}

    def weight(edge_id: int) -> float:
        base = weights.get(edge_id)
        if base is None:
            base = network.estimate_tt(edge_id)
            weights[edge_id] = base
        return base

    paths: List[List[int]] = []
    seen = set()
    for _ in range(k * 2):  # a few extra tries to find distinct routes
        path = shortest_path(network, source, target, edge_weight=weight)
        if path is None:
            break
        key = tuple(path)
        if key not in seen:
            seen.add(key)
            paths.append(path)
            if len(paths) == k:
                break
        for edge_id in path:
            weights[edge_id] = weight(edge_id) * penalty
    return paths
