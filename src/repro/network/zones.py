"""Zone types and the synthetic zoning map.

The paper joins the network with the Danish Business Authority zoning map
(Section 5.1.2): every segment gets one of *city*, *rural*, *summer house*,
or — when it straddles more than one zone type — *ambiguous*.  Zone-based
partitioning (pi_Z / pi_ZC) splits query paths at zone changes.

We substitute the 4,259 published geometries with a synthetic
:class:`ZoneMap` of circular zone geometries; the spatial join semantics
(including the AMBIGUOUS category) are the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Set, Tuple

__all__ = ["ZoneType", "ZoneGeometry", "ZoneMap"]


class ZoneType(Enum):
    CITY = "city"
    RURAL = "rural"
    SUMMER_HOUSE = "summer_house"
    #: Assigned to segments located in more than one zone type (paper 5.1.2).
    AMBIGUOUS = "ambiguous"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ZoneGeometry:
    """A circular zone: ``zone_type`` applies within ``radius`` of center."""

    center: Tuple[float, float]
    radius: float
    zone_type: ZoneType

    def contains(self, point: Tuple[float, float]) -> bool:
        dx = point[0] - self.center[0]
        dy = point[1] - self.center[1]
        return dx * dx + dy * dy <= self.radius * self.radius


class ZoneMap:
    """Collection of zone geometries with point and segment classification."""

    def __init__(self, geometries: Sequence[ZoneGeometry] = ()):
        self._geometries: List[ZoneGeometry] = list(geometries)

    def add(self, geometry: ZoneGeometry) -> None:
        self._geometries.append(geometry)

    def __len__(self) -> int:
        return len(self._geometries)

    def zone_types_at(self, point: Tuple[float, float]) -> Set[ZoneType]:
        """All zone types whose geometry contains ``point``.

        Points outside every geometry default to RURAL, matching the
        paper's treatment of un-zoned countryside.
        """
        types = {
            g.zone_type for g in self._geometries if g.contains(point)
        }
        return types or {ZoneType.RURAL}

    def classify_point(self, point: Tuple[float, float]) -> ZoneType:
        types = self.zone_types_at(point)
        if len(types) > 1:
            return ZoneType.AMBIGUOUS
        return next(iter(types))

    def classify_segment(
        self,
        source: Tuple[float, float],
        target: Tuple[float, float],
        samples: int = 3,
    ) -> ZoneType:
        """Spatial join of one segment against the zone map.

        The segment is sampled at ``samples`` points (endpoints included);
        if the samples agree on a single zone type the segment gets it,
        otherwise it is AMBIGUOUS.
        """
        if samples < 2:
            raise ValueError("need at least the two endpoints")
        seen: Set[ZoneType] = set()
        for i in range(samples):
            fraction = i / (samples - 1)
            point = (
                source[0] + fraction * (target[0] - source[0]),
                source[1] + fraction * (target[1] - source[1]),
            )
            seen |= self.zone_types_at(point)
        if len(seen) > 1:
            return ZoneType.AMBIGUOUS
        return next(iter(seen))
