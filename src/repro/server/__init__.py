"""Async HTTP serving tier: connection multiplexing onto dedup rounds.

The subsystem behind ``repro serve``: an asyncio HTTP/1.1 server
(:class:`TravelTimeServer`) in front of one :class:`~repro.api.db.TravelTimeDB`
session, whose :class:`~repro.server.collector.RequestCollector` gathers
trips arriving from *different connections* within a small collection
window and executes each window as one ``query_many`` dedup round —
so concurrent clients share sub-query scans the way an in-process batch
does.  Admission control bounds in-flight trips (HTTP 429 +
``Retry-After`` past the bound), graceful shutdown drains every
admitted trip, and ``/stats`` surfaces dedup hit rate, queue depth, and
latency percentiles.

Stdlib only: ``asyncio`` streams on the server, ``http.client`` in
:class:`ServingClient`.
"""

from .app import BackgroundServer, TravelTimeServer, run_server
from .client import ServingClient
from .config import ServerConfig
from .stats import ServerStats

__all__ = [
    "BackgroundServer",
    "ServerConfig",
    "ServerStats",
    "ServingClient",
    "TravelTimeServer",
    "run_server",
]
