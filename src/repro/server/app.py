"""The asyncio HTTP serving tier in front of a :class:`TravelTimeDB`.

:class:`TravelTimeServer` owns the listener, the per-connection
handlers, the :class:`~repro.server.collector.RequestCollector`, and a
bounded executor-thread pool.  The event loop does all scheduling and
bookkeeping; only dedup rounds run on executor threads, so ``/healthz``
and ``/stats`` stay responsive even when every executor worker is busy
— they are answered inline on the loop and never touch the collector.

Routes
------
``POST /v1/query``
    One :class:`~repro.api.TripRequest` wire form in, one
    :class:`TripQueryResult` wire form out.
``POST /v1/query_batch``
    ``{"requests": [...]}`` in, ``{"results": [...]}`` out, positionally
    aligned.  The whole batch joins the same collection window.
``GET /healthz``
    Liveness: ``{"status": "ok", ...}`` — served off the query path.
``GET /stats``
    The :class:`~repro.server.stats.ServerStats` snapshot.

Error mapping: invalid JSON or an invalid ``TripRequest`` is HTTP 400
carrying the wire-form error body (type + message, mirroring the typed
taxonomy); admission rejection is 429 with ``Retry-After``; submission
after shutdown begins is 503; an engine failure inside a round is 500.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..errors import AdmissionError, RequestValidationError, ServerError
from .collector import RequestCollector
from .config import ServerConfig
from .http import (
    HttpProtocolError,
    HttpRequest,
    error_body,
    json_response,
    read_request,
)
from .stats import ClientStats, ServerStats

if TYPE_CHECKING:
    from ..api.db import TravelTimeDB
    from ..api.request import TripRequest

__all__ = ["TravelTimeServer", "BackgroundServer", "run_server"]


class _HandlerState:
    """Per-connection bookkeeping for graceful shutdown: an idle
    handler (parked between requests) is closed immediately; a busy one
    (request read, response pending) gets the grace period."""

    __slots__ = ("busy",)

    def __init__(self) -> None:
        self.busy = False


class TravelTimeServer:
    """One asyncio HTTP server multiplexing connections onto the dedup
    batch executor of a single :class:`TravelTimeDB` session.

    Lifecycle: construct, ``await start()`` (binds; :class:`ServerError`
    on failure), serve until ``request_shutdown()`` (thread-safe via
    ``call_soon_threadsafe``; also wired to SIGINT/SIGTERM by
    :func:`run_server`), then ``await shutdown()`` — which stops
    accepting, drains every admitted trip through its round, lets
    handlers write those responses, and only then force-closes.
    """

    def __init__(
        self, db: "TravelTimeDB", config: Optional[ServerConfig] = None
    ) -> None:
        self.db = db
        self.config = config if config is not None else ServerConfig()
        self.stats = ServerStats(self.config.latency_window)
        self.collector: Optional[RequestCollector] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: Dict["asyncio.Task[None]", _HandlerState] = {}
        self._closing = False
        self._shutdown_requested: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and begin serving; :class:`ServerError` on bind failure."""
        config = self.config
        self._shutdown_requested = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=config.executor_workers,
            thread_name_prefix="repro-serve",
        )
        self.collector = RequestCollector(
            db=self.db,
            config=config,
            executor=self._executor,
            stats=self.stats,
        )
        self.collector.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, config.host, config.port
            )
        except OSError as error:
            await self.collector.drain_and_stop()
            self._executor.shutdown(wait=False)
            raise ServerError(
                f"cannot bind {config.host}:{config.port}: {error}"
            ) from error

    @property
    def port(self) -> int:
        """The bound port (meaningful once started; resolves port=0)."""
        if self._server is None or not self._server.sockets:
            raise ServerError("server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    def request_shutdown(self) -> None:
        """Flag graceful shutdown.  Loop-thread only; from another
        thread use ``loop.call_soon_threadsafe(server.request_shutdown)``."""
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def wait_shutdown_requested(self) -> None:
        if self._shutdown_requested is not None:
            await self._shutdown_requested.wait()

    async def shutdown(self) -> None:
        """Graceful shutdown: every trip admitted before this call is
        answered; only idle connections are dropped immediately."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.collector is not None:
            # Completes every in-flight round and resolves every future.
            await self.collector.drain_and_stop()
        # Idle handlers are parked in read_request with nothing owed to
        # them; cancel outright.  Busy ones are writing answers for
        # drained trips — give them the grace period.
        for task, state in list(self._handlers.items()):
            if not state.busy:
                task.cancel()
        pending = set(self._handlers)
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=self.config.shutdown_grace_s
            )
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain and stop."""
        try:
            await self.wait_shutdown_requested()
        finally:
            await self.shutdown()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    def _peer_of(self, writer: asyncio.StreamWriter) -> str:
        peername = writer.get_extra_info("peername")
        if isinstance(peername, tuple) and peername:
            return str(peername[0])
        return "local"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        peer = self._peer_of(writer)
        task = asyncio.current_task()
        state = _HandlerState()
        if task is not None:
            self._handlers[task] = state
        try:
            while not self._closing:
                state.busy = False
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpProtocolError as error:
                    state.busy = True
                    writer.write(
                        json_response(
                            error.status,
                            error_body("ServerError", str(error)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                state.busy = True
                response = await self._dispatch(request, peer)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (
            ConnectionError,
            TimeoutError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Shutdown cancelling an idle (or grace-expired) handler —
            # complete normally so the stream protocol's done-callback
            # does not log the cancellation as an error.
            pass
        finally:
            if task is not None:
                self._handlers.pop(task, None)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _dispatch(self, request: HttpRequest, peer: str) -> bytes:
        self.stats.http_requests += 1
        client = self.stats.client(peer)
        client.requests += 1
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed(request, "GET")
            return self._healthz(request)
        if path == "/stats":
            if request.method != "GET":
                return self._method_not_allowed(request, "GET")
            return self._stats_snapshot(request)
        if path == "/v1/query":
            if request.method != "POST":
                return self._method_not_allowed(request, "POST")
            return await self._query_one(request, client)
        if path == "/v1/query_batch":
            if request.method != "POST":
                return self._method_not_allowed(request, "POST")
            return await self._query_batch(request, client)
        return json_response(
            404,
            error_body("ServerError", f"no such route: {path}"),
            keep_alive=request.keep_alive,
        )

    def _method_not_allowed(
        self, request: HttpRequest, allowed: str
    ) -> bytes:
        return json_response(
            405,
            error_body(
                "ServerError",
                f"{request.method} not allowed on {request.path}",
            ),
            keep_alive=request.keep_alive,
            extra_headers=(("Allow", allowed),),
        )

    def _healthz(self, request: HttpRequest) -> bytes:
        # Inline on the loop — never blocked by saturated executors.
        collector = self.collector
        payload = {
            "status": "draining" if self._closing else "ok",
            "inflight": 0 if collector is None else collector.inflight,
            "max_inflight": self.config.max_inflight,
        }
        return json_response(200, payload, keep_alive=request.keep_alive)

    def _stats_snapshot(self, request: HttpRequest) -> bytes:
        depth = 0 if self.collector is None else self.collector.inflight
        return json_response(
            200,
            self.stats.snapshot(queue_depth=depth),
            keep_alive=request.keep_alive,
        )

    # ------------------------------------------------------------------ #
    # Query routes
    # ------------------------------------------------------------------ #

    def _parse_trips(
        self, request: HttpRequest, batch: bool
    ) -> List["TripRequest"]:
        """Decode and validate the payload; raises
        :class:`RequestValidationError` (mapped to 400 by the caller)."""
        from ..api.request import TripRequest

        try:
            payload = request.json()
        except HttpProtocolError as error:
            raise RequestValidationError(str(error)) from error
        if not batch:
            if not isinstance(payload, dict):
                raise RequestValidationError(
                    "query payload must be a JSON object (TripRequest "
                    f"wire form); got {type(payload).__name__}"
                )
            return [TripRequest.from_dict(payload)]
        if not isinstance(payload, dict) or not isinstance(
            payload.get("requests"), list
        ):
            raise RequestValidationError(
                'batch payload must be {"requests": [...]} of TripRequest '
                "wire forms"
            )
        trips: List["TripRequest"] = []
        for position, entry in enumerate(payload["requests"]):
            if not isinstance(entry, dict):
                raise RequestValidationError(
                    f"requests[{position}] must be a JSON object; got "
                    f"{type(entry).__name__}"
                )
            try:
                trips.append(TripRequest.from_dict(entry))
            except RequestValidationError as error:
                raise RequestValidationError(
                    f"requests[{position}]: {error}"
                ) from error
        return trips

    def _submit(
        self, trips: List["TripRequest"], client: ClientStats
    ) -> "List[asyncio.Future[Any]]":
        """Admission-checked submission; returns per-trip futures."""
        assert self.collector is not None
        futures = self.collector.submit_many(trips)
        client.trips += len(trips)
        return list(futures)

    def _reject_response(
        self, error: AdmissionError, request: HttpRequest, client: ClientStats,
        n_trips: int,
    ) -> bytes:
        self.stats.rejected_trips += n_trips
        client.rejected += n_trips
        retry_after = (
            error.retry_after_s
            if error.retry_after_s is not None
            else self.config.retry_after_s
        )
        return json_response(
            429,
            error_body(
                "AdmissionError", str(error), retry_after_s=retry_after
            ),
            keep_alive=request.keep_alive,
            extra_headers=(
                ("Retry-After", str(max(1, math.ceil(retry_after)))),
            ),
        )

    def _invalid_response(
        self,
        error: RequestValidationError,
        request: HttpRequest,
        client: ClientStats,
    ) -> bytes:
        self.stats.invalid_requests += 1
        client.invalid += 1
        return json_response(
            400,
            error_body("RequestValidationError", str(error)),
            keep_alive=request.keep_alive,
        )

    async def _query_one(
        self, request: HttpRequest, client: ClientStats
    ) -> bytes:
        try:
            trips = self._parse_trips(request, batch=False)
        except RequestValidationError as error:
            return self._invalid_response(error, request, client)
        try:
            futures = self._submit(trips, client)
        except AdmissionError as error:
            return self._reject_response(error, request, client, 1)
        except ServerError as error:
            return json_response(
                503,
                error_body("ServerError", str(error)),
                keep_alive=False,
            )
        try:
            result = await futures[0]
        except Exception as error:
            return json_response(
                500,
                error_body(type(error).__name__, str(error)),
                keep_alive=request.keep_alive,
            )
        return json_response(
            200, result.to_dict(), keep_alive=request.keep_alive
        )

    async def _query_batch(
        self, request: HttpRequest, client: ClientStats
    ) -> bytes:
        try:
            trips = self._parse_trips(request, batch=True)
        except RequestValidationError as error:
            return self._invalid_response(error, request, client)
        if not trips:
            # Empty batch: answered inline, no round, no admission.
            return json_response(
                200, {"results": []}, keep_alive=request.keep_alive
            )
        try:
            futures = self._submit(trips, client)
        except AdmissionError as error:
            return self._reject_response(
                error, request, client, len(trips)
            )
        except ServerError as error:
            return json_response(
                503,
                error_body("ServerError", str(error)),
                keep_alive=False,
            )
        try:
            results = await asyncio.gather(*futures)
        except Exception as error:
            return json_response(
                500,
                error_body(type(error).__name__, str(error)),
                keep_alive=request.keep_alive,
            )
        return json_response(
            200,
            {"results": [result.to_dict() for result in results]},
            keep_alive=request.keep_alive,
        )


# ---------------------------------------------------------------------- #
# Entrypoints
# ---------------------------------------------------------------------- #


def run_server(
    db: "TravelTimeDB",
    config: Optional[ServerConfig] = None,
    on_started: Optional[Callable[[TravelTimeServer], None]] = None,
) -> None:
    """Run a server in the foreground until SIGINT/SIGTERM (the
    ``repro serve`` entrypoint).  :class:`ServerError` on bind failure."""

    async def _main() -> None:
        server = TravelTimeServer(db, config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, server.request_shutdown)
        if on_started is not None:
            on_started(server)
        try:
            await server.serve_until_shutdown()
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(
                    NotImplementedError, RuntimeError
                ):
                    loop.remove_signal_handler(signum)

    asyncio.run(_main())


class BackgroundServer:
    """A server on a daemon thread with its own event loop — the
    harness tests and benchmarks use to serve and call from one process.

    Construction blocks until the server is listening (``.port`` is then
    the bound port, resolving ``port=0``) and re-raises any startup
    failure — a bind error surfaces here, not on first request.
    ``stop()`` runs the graceful drain and joins the thread.  Also a
    context manager.
    """

    def __init__(
        self, db: "TravelTimeDB", config: Optional[ServerConfig] = None
    ) -> None:
        self._db = db
        self._config = config
        self.server: Optional[TravelTimeServer] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServerError("server thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - defensive
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()

    async def _main(self) -> None:
        server = TravelTimeServer(self._db, self._config)
        try:
            await server.start()
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            return
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await server.serve_until_shutdown()

    @property
    def address(self) -> str:
        host = (
            self.server.config.host
            if self.server is not None
            else "127.0.0.1"
        )
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        """Request graceful shutdown and wait for the drain to finish."""
        server, loop = self.server, self._loop
        if server is not None and loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(server.request_shutdown)
        self._thread.join(timeout=30)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServerError("server thread did not stop within 30s")

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
