"""A stdlib HTTP client for the serving tier.

:class:`ServingClient` speaks the same wire forms as the library API —
:meth:`query` takes a :class:`~repro.api.TripRequest` and returns a
:class:`TripQueryResult`, exactly like ``TravelTimeDB.query`` — so code
can move between in-process and served execution by swapping the
object.  Error bodies are mapped back onto the typed taxonomy: an HTTP
400 raises :class:`RequestValidationError`, a 429 raises
:class:`AdmissionError` (with the server's ``retry_after_s`` hint), and
anything else the server names is resolved against :mod:`repro.errors`
where possible.

Built on :mod:`http.client` with a persistent keep-alive connection;
one transparent reconnect is attempted when the pooled connection was
closed between calls (idle timeout, server restart).  Not thread-safe —
one client per thread, like a database cursor.
"""

from __future__ import annotations

import http.client
import json
from types import TracebackType
from typing import Any, Dict, List, Optional, Sequence, Type

from .. import errors as _errors
from ..api.request import TripRequest
from ..core.engine import TripQueryResult
from ..errors import AdmissionError, ReproError, ServerError

__all__ = ["ServingClient"]


def _error_from_body(status: int, payload: Any) -> ReproError:
    """Rebuild the typed error a non-200 response describes."""
    detail: Dict[str, Any] = {}
    if isinstance(payload, dict) and isinstance(payload.get("error"), dict):
        detail = payload["error"]
    message = str(detail.get("message", f"HTTP {status}"))
    type_name = str(detail.get("type", "ServerError"))
    if status == 429 or type_name == "AdmissionError":
        retry_after = detail.get("retry_after_s")
        return AdmissionError(
            message,
            retry_after_s=(
                float(retry_after) if retry_after is not None else None
            ),
        )
    candidate = getattr(_errors, type_name, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, ReproError)
        and candidate is not ReproError
    ):
        try:
            return candidate(message)
        except TypeError:  # constructor wants more than a message
            pass
    return ServerError(f"HTTP {status}: {message}")


class ServingClient:
    """A blocking client for one ``repro serve`` endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8374,
        timeout: float = 30.0,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _roundtrip(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Any:
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            response = self._request_once(method, path, body, headers)
        except (http.client.RemoteDisconnected, ConnectionError, BrokenPipeError):
            # The kept-alive connection died between calls; one fresh
            # connection retry (requests here are idempotent reads —
            # queries are pure — so a blind retry is safe).
            self.close()
            response = self._request_once(method, path, body, headers)
        status, raw = response
        try:
            payload = json.loads(raw) if raw else None
        except ValueError as error:
            raise ServerError(
                f"server sent undecodable JSON for {path}: {error}"
            ) from error
        if status != 200:
            raise _error_from_body(status, payload)
        return payload

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> "tuple[int, bytes]":
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except Exception:
            self.close()
            raise
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response.status, raw

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #

    def query(self, request: TripRequest) -> TripQueryResult:
        """One trip, one histogram — ``TravelTimeDB.query`` over HTTP."""
        payload = self._roundtrip(
            "POST",
            "/v1/query",
            json.dumps(request.to_dict()).encode("utf-8"),
        )
        result = TripQueryResult.from_dict(payload)
        result.request = request
        return result

    def query_batch(
        self, requests: Sequence[TripRequest]
    ) -> List[TripQueryResult]:
        """A batch of trips through one request (and so one collection
        window) — ``TravelTimeDB.query_many`` over HTTP."""
        requests = list(requests)
        if not requests:
            return []
        payload = self._roundtrip(
            "POST",
            "/v1/query_batch",
            json.dumps(
                {"requests": [request.to_dict() for request in requests]}
            ).encode("utf-8"),
        )
        if not isinstance(payload, dict) or not isinstance(
            payload.get("results"), list
        ):
            raise ServerError(
                "malformed batch response: expected "
                '{"results": [...]} from the server'
            )
        entries = payload["results"]
        if len(entries) != len(requests):
            raise ServerError(
                f"batch response has {len(entries)} results for "
                f"{len(requests)} requests"
            )
        results = []
        for request, entry in zip(requests, entries):
            result = TripQueryResult.from_dict(entry)
            result.request = request
            results.append(result)
        return results

    def healthz(self) -> Dict[str, Any]:
        payload = self._roundtrip("GET", "/healthz", None)
        return dict(payload) if isinstance(payload, dict) else {}

    def stats(self) -> Dict[str, Any]:
        payload = self._roundtrip("GET", "/stats", None)
        return dict(payload) if isinstance(payload, dict) else {}

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()
