"""The request collector: connection multiplexing onto dedup rounds.

This is the piece that turns the PR-5 property — concurrent requests
*speed each other up* — into an HTTP-tier behaviour.  Trips submitted
by any number of connection handlers land in one queue; the collector
gathers everything that arrives within the configured collection
window (or up to ``max_batch``) and submits the whole window as **one**
``query_many`` dedup round on a bounded executor-thread pool.  Repeated
sub-paths across clients are then scanned once per round, exactly as if
the clients had been one in-process batch.

Admission control lives here too: the collector tracks trips admitted
but not yet answered and rejects past ``max_inflight`` with
:class:`~repro.errors.AdmissionError` (the connection handler maps it
to HTTP 429 + ``Retry-After``), so the queue is bounded by
construction — backpressure the way ``TravelTimeDB.stream`` bounds its
window, applied to the network edge.

Everything except the round execution itself runs on the event-loop
thread: ``submit_many`` is handler-side loop code, the gather loop is a
single task, and round completion is marshalled back via
``run_in_executor``'s future — so the admission counter needs no lock.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Set

from ..core.engine import TripQueryResult
from ..errors import AdmissionError, ServerError
from .config import ServerConfig
from .stats import ServerStats

if TYPE_CHECKING:
    from ..api.db import TravelTimeDB
    from ..api.request import TripRequest

__all__ = ["RequestCollector"]


@dataclass
class _Entry:
    """One admitted trip waiting for (or riding in) a round."""

    request: "TripRequest"
    future: "asyncio.Future[TripQueryResult]"
    admitted_at: float
    # Entries whose future is already done when a round forms (client
    # gone, handler cancelled) are dropped from the round — a window of
    # nothing but dropped entries short-circuits to no round at all.


@dataclass
class RequestCollector:
    """Windowed trip batching over one :class:`TravelTimeDB` session."""

    db: "TravelTimeDB"
    config: ServerConfig
    executor: Executor
    stats: ServerStats
    _queue: "asyncio.Queue[Optional[_Entry]]" = field(
        default_factory=asyncio.Queue
    )
    _inflight: int = 0
    _closing: bool = False
    _gather_task: Optional["asyncio.Task[None]"] = None
    _round_tasks: Set["asyncio.Task[None]"] = field(default_factory=set)

    @property
    def inflight(self) -> int:
        """Trips admitted but not yet answered (the queue depth the
        admission bound protects)."""
        return self._inflight

    def start(self) -> None:
        self._gather_task = asyncio.get_running_loop().create_task(
            self._gather_loop()
        )

    # ------------------------------------------------------------------ #
    # Handler side
    # ------------------------------------------------------------------ #

    def submit_many(
        self, requests: Sequence["TripRequest"]
    ) -> List["asyncio.Future[TripQueryResult]"]:
        """Admit validated trips into the next collection window(s).

        All-or-nothing per call: a batch that does not fit under
        ``max_inflight`` is rejected whole (:class:`AdmissionError`),
        so a client never gets half a batch answered and half 429'd.
        Raises :class:`ServerError` once shutdown has begun.
        """
        if not requests:
            return []
        if self._closing:
            raise ServerError(
                "server is shutting down; not admitting new requests"
            )
        n_new = len(requests)
        limit = self.config.max_inflight
        if self._inflight + n_new > limit:
            raise AdmissionError(
                f"admission bound reached ({self._inflight} trips in "
                f"flight, limit {limit}, {n_new} more requested); retry "
                f"after {self.config.retry_after_s}s",
                retry_after_s=self.config.retry_after_s,
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        entries = [
            _Entry(request, loop.create_future(), now)
            for request in requests
        ]
        self._inflight += n_new
        self.stats.note_admitted(n_new, self._inflight)
        for entry in entries:
            self._queue.put_nowait(entry)
        return [entry.future for entry in entries]

    # ------------------------------------------------------------------ #
    # Collector side
    # ------------------------------------------------------------------ #

    async def _gather_loop(self) -> None:
        """Form collection windows until the shutdown sentinel arrives.

        A window opens when its first trip arrives and closes after
        ``window_s`` (or at ``max_batch``); whatever was gathered is
        submitted as one round task.  Rounds overlap gathering: the
        loop never waits for a round to finish.
        """
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                break
            batch = [first]
            deadline = loop.time() + self.config.window_s
            saw_sentinel = False
            while len(batch) < self.config.max_batch:
                entry: Optional[_Entry]
                try:
                    entry = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        entry = await asyncio.wait_for(
                            self._queue.get(), timeout
                        )
                    except asyncio.TimeoutError:
                        break
                if entry is None:
                    saw_sentinel = True
                    break
                batch.append(entry)
            self._submit_round(batch)
            if saw_sentinel:
                break

    def _submit_round(self, batch: List[_Entry]) -> None:
        # Entries abandoned while queued (handler cancelled, connection
        # gone) leave the round before it forms; a window containing
        # nothing else short-circuits — no executor submission, no
        # empty query_many, and the admission counter is settled here
        # so the dropped capacity frees immediately.
        live = [entry for entry in batch if not entry.future.done()]
        dropped = len(batch) - len(live)
        if dropped:
            self._inflight -= dropped
        if not live:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_round(live)
        )
        self._round_tasks.add(task)
        task.add_done_callback(self._round_tasks.discard)

    async def _run_round(self, entries: List[_Entry]) -> None:
        """Execute one window as one dedup round off the loop thread."""
        loop = asyncio.get_running_loop()
        requests = [entry.request for entry in entries]
        try:
            results, dedup = await loop.run_in_executor(
                self.executor,
                lambda: self.db.query_many_with_stats(requests),
            )
        except Exception as error:
            # One poisoned trip fails its whole round; handlers answer
            # 500 per trip.  Requests were validated at the edge, so
            # this is an engine/index failure, not client input.
            self.stats.trips_failed += len(entries)
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(error)
            # A Future whose exception is never retrieved (handler gone)
            # would log noisily at GC; touching it here marks every
            # round member as observed.
            for entry in entries:
                if entry.future.cancelled():
                    continue
                entry.future.exception()
        else:
            now = loop.time()
            for entry, result in zip(entries, results):
                if not entry.future.done():
                    entry.future.set_result(result)
                self.stats.latency.record(now - entry.admitted_at)
            self.stats.note_round(len(entries), dedup)
        finally:
            self._inflight -= len(entries)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    async def drain_and_stop(self) -> None:
        """Stop admitting, flush every queued trip through final rounds,
        and wait for all in-flight rounds to complete.

        Every admitted trip's future is resolved by the time this
        returns — the graceful-shutdown drain contract.
        """
        self._closing = True
        self._queue.put_nowait(None)
        if self._gather_task is not None:
            await self._gather_task
            self._gather_task = None
        if self._round_tasks:
            await asyncio.gather(
                *tuple(self._round_tasks), return_exceptions=True
            )
