"""`ServerConfig`: one frozen, validated serving-tier configuration.

The HTTP tier's counterpart of :class:`repro.api.EngineConfig`:
everything that shapes *how the server schedules and protects* query
execution — listen address, the collection window that turns concurrent
connections into shared dedup rounds, the admission bound, executor
width, shutdown grace — lives here, is validated once at construction
(:class:`~repro.errors.ConfigurationError`, never a bare ``ValueError``),
and is hashable/comparable.  Nothing in it ever changes an answer; it is
pure serving plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..errors import ConfigurationError

__all__ = ["ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Immutable HTTP serving-tier configuration.

    Attributes
    ----------
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port (tests and
        benchmarks); the bound port is readable from the running server.
    window_s:
        The collection window: after the first trip of a round arrives,
        the collector keeps gathering trips for up to this long (or
        until ``max_batch``) before submitting the round, so requests
        from *different connections* land in one ``query_many`` dedup
        round and share sub-query scans.  ``0`` disables windowing
        (each round is whatever is already queued) — the latency knob:
        a larger window trades first-byte latency for cross-client
        dedup.
    max_batch:
        Maximum trips per collection round.  Bounds round latency under
        load: a full round is submitted immediately without waiting out
        the window.
    max_inflight:
        Admission bound on trips admitted but not yet answered — the
        backpressure valve, bounding queue growth the way ``stream``
        bounds its window.  A request that would exceed it is rejected
        fast with HTTP 429 and a ``Retry-After`` hint instead of
        queueing unboundedly.
    executor_workers:
        Threads executing collection rounds.  Rounds overlap: while one
        executes, the collector gathers the next window.  Each round
        itself runs the engine's deduplicating batch executor, whose
        internal fan-out is the session's ``EngineConfig.n_workers``.
    retry_after_s:
        Backoff hint carried by 429 responses (``Retry-After`` header,
        integer-ceiled per HTTP, plus the exact float in the JSON error
        body).
    max_body_bytes:
        Largest request body accepted; beyond it the connection gets
        HTTP 413.  Protects the loop from a client streaming an
        unbounded batch payload.
    shutdown_grace_s:
        On graceful shutdown, how long to wait for connection handlers
        to finish writing responses for already-admitted trips (the
        drained rounds themselves always complete) before force-closing
        the stragglers.
    latency_window:
        Per-trip latencies kept for the ``/stats`` p50/p99 percentiles
        (a bounded ring, so a long-running server's stats stay O(1)
        in memory).
    """

    host: str = "127.0.0.1"
    port: int = 8374
    window_s: float = 0.005
    max_batch: int = 64
    max_inflight: int = 256
    executor_workers: int = 2
    retry_after_s: float = 0.05
    max_body_bytes: int = 1_048_576
    shutdown_grace_s: float = 5.0
    latency_window: int = 4096

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigurationError(
                f"host must be a non-empty string; got {self.host!r}"
            )
        if (
            not isinstance(self.port, int)
            or isinstance(self.port, bool)
            or not 0 <= self.port <= 65_535
        ):
            raise ConfigurationError(
                f"port must be an integer in [0, 65535]; got {self.port!r}"
            )
        try:
            window = float(self.window_s)
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"window_s must be a number of seconds; got {self.window_s!r}"
            ) from error
        if not 0 <= window <= 1:
            raise ConfigurationError(
                "window_s must be in [0, 1] seconds (a collection window "
                f"is milliseconds, not minutes); got {self.window_s!r}"
            )
        object.__setattr__(self, "window_s", window)
        for name in ("max_batch", "max_inflight", "executor_workers",
                     "latency_window"):
            value = getattr(self, name)
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 1
            ):
                raise ConfigurationError(
                    f"{name} must be a positive integer; got {value!r}"
                )
        if self.max_batch > self.max_inflight:
            raise ConfigurationError(
                f"max_batch ({self.max_batch}) cannot exceed max_inflight "
                f"({self.max_inflight}); a full round must be admissible"
            )
        for name in ("retry_after_s", "shutdown_grace_s"):
            value = getattr(self, name)
            try:
                as_float = float(value)
            except (TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"{name} must be a number of seconds; got {value!r}"
                ) from error
            if not as_float > 0:
                raise ConfigurationError(
                    f"{name} must be positive; got {value!r}"
                )
            object.__setattr__(self, name, as_float)
        if (
            not isinstance(self.max_body_bytes, int)
            or isinstance(self.max_body_bytes, bool)
            or self.max_body_bytes < 1024
        ):
            raise ConfigurationError(
                "max_body_bytes must be an integer >= 1024; got "
                f"{self.max_body_bytes!r}"
            )

    def replace(self, **changes: Any) -> "ServerConfig":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)
