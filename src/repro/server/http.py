"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of RFC 9112 for the serving tier: request line + headers +
``Content-Length`` bodies in, fixed-length JSON responses out, with
keep-alive.  No chunked transfer encoding, no pipelining guarantees
beyond strict request/response alternation, no TLS — this is the
paper's Figure-9 measurement surface, not a general web server; put a
real proxy in front for anything else.

Malformed inbound HTTP raises :class:`HttpProtocolError` (a
:class:`~repro.errors.ServerError`) carrying the status code the
connection handler should answer with before closing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import ServerError

__all__ = [
    "HttpProtocolError",
    "HttpRequest",
    "read_request",
    "render_response",
    "json_response",
    "error_body",
]

#: Request line + headers may not exceed this (defense against a client
#: dribbling an endless header section into the loop).
MAX_HEADER_BYTES = 32_768

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpProtocolError(ServerError):
    """Malformed inbound HTTP; ``status`` is the response to send
    before closing the connection."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed inbound request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        # HTTP/1.1 default is persistent; only an explicit close drops it.
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body parsed as JSON; raises ``HttpProtocolError(400)``."""
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpProtocolError(
                f"request body is not valid JSON: {error}"
            ) from error


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[HttpRequest]:
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpProtocolError` for malformed framing (answer it,
    then close) and lets transport errors (``ConnectionError``,
    ``IncompleteReadError`` mid-message) propagate to the caller's
    connection teardown.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests
        raise HttpProtocolError("connection closed mid-request") from error
    except asyncio.LimitOverrunError as error:
        raise HttpProtocolError(
            "request head exceeds the header limit", status=413
        ) from error
    if len(head) > MAX_HEADER_BYTES:
        raise HttpProtocolError(
            "request head exceeds the header limit", status=413
        )
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise HttpProtocolError("undecodable request head") from error
    lines = text.split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpProtocolError(f"malformed request line {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpProtocolError(f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpProtocolError(
            "chunked transfer encoding is not supported", status=400
        )
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as error:
            raise HttpProtocolError(
                f"malformed Content-Length {raw_length!r}"
            ) from error
        if length < 0:
            raise HttpProtocolError(
                f"malformed Content-Length {raw_length!r}"
            )
        if length > max_body_bytes:
            raise HttpProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
                status=413,
            )
        if length:
            body = await reader.readexactly(length)
    # Strip any query string; routes are exact paths.
    path = target.split("?", 1)[0]
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialise one fixed-length response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    return render_response(
        status,
        json.dumps(payload).encode("utf-8"),
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    )


def error_body(error_type: str, message: str, **extra: Any) -> Dict[str, Any]:
    """The wire form of every non-200 answer: mirrors the library's
    typed error taxonomy so a client can re-raise the right class."""
    payload: Dict[str, Any] = {"type": error_type, "message": message}
    payload.update(extra)
    return {"error": payload}
