"""Serving-tier statistics: counters, dedup accounting, latencies.

Everything here is mutated from the event-loop thread only (connection
handlers and the collector both run on the loop), so no locks are
needed; ``snapshot()`` may be called from any thread and reads plain
ints/floats (CPython attribute reads are atomic — a snapshot taken
mid-burst is merely a moment in time, never corrupt).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, Optional

from ..core.exec import DedupStats

__all__ = ["LatencyRing", "ClientStats", "ServerStats"]


class LatencyRing:
    """A bounded ring of per-trip latencies with quantile readout.

    O(window) memory forever; ``percentile`` sorts a copy on demand —
    ``/stats`` is rare next to the request path, so the cost lands on
    the reader.
    """

    def __init__(self, window: int) -> None:
        self._samples: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) of the retained window; ``None``
        before the first sample."""
        ordered = sorted(self._samples)
        if not ordered:
            return None
        position = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[position]

    def snapshot_ms(self) -> Dict[str, Any]:
        p50 = self.percentile(0.50)
        p99 = self.percentile(0.99)
        mean = self._total / self._count if self._count else None
        return {
            "count": self._count,
            "p50_ms": None if p50 is None else round(p50 * 1000, 3),
            "p99_ms": None if p99 is None else round(p99 * 1000, 3),
            "mean_ms": None if mean is None else round(mean * 1000, 3),
        }


class ClientStats:
    """Per-client (peer address) accounting."""

    def __init__(self) -> None:
        self.requests = 0
        self.trips = 0
        self.rejected = 0
        self.invalid = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "trips": self.trips,
            "rejected": self.rejected,
            "invalid": self.invalid,
        }


class ServerStats:
    """Aggregate serving statistics surfaced on ``GET /stats``."""

    #: Distinct peers tracked before new ones are folded into "other"
    #: (a public server must not grow per-client state unboundedly).
    MAX_CLIENTS = 1024

    def __init__(self, latency_window: int) -> None:
        self.started_at = time.time()
        self.connections = 0
        self.http_requests = 0
        self.trips_admitted = 0
        self.trips_answered = 0
        self.trips_failed = 0
        self.rejected_trips = 0
        self.invalid_requests = 0
        self.rounds = 0
        self.peak_inflight = 0
        self.dedup = DedupStats()
        self.dedup_rounds = 0
        self.latency = LatencyRing(latency_window)
        self.clients: Dict[str, ClientStats] = {}

    def client(self, peer: str) -> ClientStats:
        stats = self.clients.get(peer)
        if stats is None:
            if len(self.clients) >= self.MAX_CLIENTS:
                peer = "other"
                stats = self.clients.get(peer)
                if stats is not None:
                    return stats
            stats = ClientStats()
            self.clients[peer] = stats
        return stats

    def note_admitted(self, n_trips: int, inflight: int) -> None:
        self.trips_admitted += n_trips
        self.peak_inflight = max(self.peak_inflight, inflight)

    def note_round(self, n_trips: int, dedup: Optional[DedupStats]) -> None:
        self.rounds += 1
        self.trips_answered += n_trips
        if dedup is not None:
            self.dedup_rounds += 1
            self.dedup.absorb(dedup)

    def snapshot(self, queue_depth: int) -> Dict[str, Any]:
        """The ``/stats`` payload (JSON-compatible)."""
        dedup = self.dedup
        shareable = dedup.planned_subqueries
        absorbed = dedup.scans_saved + dedup.cache_hits
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "connections": self.connections,
            "requests": {
                "http": self.http_requests,
                "trips_admitted": self.trips_admitted,
                "trips_answered": self.trips_answered,
                "trips_failed": self.trips_failed,
                "rejected": self.rejected_trips,
                "invalid": self.invalid_requests,
            },
            "queue": {
                "depth": queue_depth,
                "peak": self.peak_inflight,
            },
            "rounds": {
                "count": self.rounds,
                "with_dedup": self.dedup_rounds,
                "planned_subqueries": dedup.planned_subqueries,
                "unique_subqueries": dedup.unique_subqueries,
                "index_scans": dedup.n_index_scans,
                "cache_hits": dedup.cache_hits,
                "scans_saved": dedup.scans_saved,
                # Fraction of planned sub-query work answered without
                # its own index scan (shared-round dedup or cache).
                "dedup_hit_rate": (
                    round(absorbed / shareable, 4) if shareable else 0.0
                ),
            },
            "latency": self.latency.snapshot_ms(),
            "clients": {
                peer: stats.snapshot()
                for peer, stats in self.clients.items()
            },
        }
