"""Serving layer: batched queries, shared caches, index persistence."""

from .cache import CacheStats, LRUCache, SectionStats, SubQueryCache
from .cachetier import (
    CacheBackend,
    SharedCacheTier,
    SharedTierStats,
    resolve_cache_backend,
)
from .service import TravelTimeService

__all__ = [
    "TravelTimeService",
    "SubQueryCache",
    "LRUCache",
    "CacheStats",
    "SectionStats",
    "CacheBackend",
    "SharedCacheTier",
    "SharedTierStats",
    "resolve_cache_backend",
]
