"""Serving layer: batched queries, shared caches, index persistence."""

from .cache import CacheStats, LRUCache, SectionStats, SubQueryCache
from .service import TravelTimeService

__all__ = [
    "TravelTimeService",
    "SubQueryCache",
    "LRUCache",
    "CacheStats",
    "SectionStats",
]
