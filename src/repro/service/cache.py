"""Shared sub-query caches for the batched travel-time service.

A trip query decomposes into sub-queries, and real workloads repeat
sub-paths heavily: commuters share arterials, and a repeated trip repeats
every one of its sub-queries.  The engine's per-trip
:class:`~repro.core.engine.PerTripCache` already shares the FM-index
backward search between the estimator and retrieval of one trip; this
module generalises it to a thread-safe, bounded LRU cache shared
*across* trips:

* **ranges** — ``path -> [(w, st, ed), ...]`` from ``getISARange``
  (Procedure 2).  A pure function of the immutable index, so sharing is
  unconditionally safe.
* **results** — full sub-query retrieval outcomes
  (:class:`repro.sntindex.procedures.TravelTimeResult`), keyed by every
  input that influences Procedure 5: path, interval, user filter, beta,
  and the excluded trajectory ids.
* **histograms** — ``createHistogram`` output per (result key, bucket
  width), so a warm hit skips the bucketing pass as well.

Cached values are treated as immutable: value arrays are marked
read-only before insertion, and callers must not mutate what they get
back.  The engine only ever reads them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["LRUCache", "SectionStats", "CacheStats", "SubQueryCache"]


@dataclass(frozen=True)
class SectionStats:
    """Hit/miss counters of one cache section."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_size: Optional[int]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class CacheStats:
    """Aggregated statistics of a :class:`SubQueryCache`."""

    ranges: SectionStats
    results: SectionStats
    histograms: SectionStats

    def summary(self) -> str:
        parts = []
        for name in ("ranges", "results", "histograms"):
            section: SectionStats = getattr(self, name)
            parts.append(
                f"{name}: {section.hits} hits / {section.misses} misses "
                f"({section.hit_rate:.0%}), {section.size} entries"
            )
        return "; ".join(parts)


class LRUCache:
    """Thread-safe least-recently-used mapping with hit/miss counters.

    ``max_entries=None`` disables eviction (unbounded).  ``get`` returns
    ``None`` on a miss, so ``None`` itself must not be stored as a value
    (the service caches never do).
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive or None")
        self._max = max_entries
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        if value is None:
            raise ValueError("LRUCache cannot store None values")
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if self._max is not None:
                while len(self._data) > self._max:
                    self._data.popitem(last=False)
                    self._evictions += 1

    @property
    def max_entries(self) -> Optional[int]:
        """The configured entry bound (``None`` = unbounded).

        Immutable after construction, so readable without the lock —
        e.g. by a forked child whose inherited lock may be held."""
        return self._max

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> SectionStats:
        with self._lock:
            return SectionStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                max_size=self._max,
            )


class SubQueryCache:
    """Cross-query cache shared by all trips of a service.

    Implements the cache protocol consumed by the engine's staged
    pipeline (:class:`repro.core.exec.TripMachine` and the fetch stage):
    ``get_ranges``/``put_ranges``, ``get_result``/``put_result`` (plus
    their batched ``*_many`` faces) and
    ``get_histogram``/``put_histogram``.  All sections are thread-safe and
    LRU-bounded, so a long-running service has a fixed memory ceiling.

    Parameters
    ----------
    max_ranges, max_results, max_histograms:
        Per-section entry bounds (``None`` = unbounded).  A ranges entry
        is a handful of triples; a result entry holds a travel-time
        array, so ``max_results`` is the knob that dominates memory.
    """

    def __init__(
        self,
        max_ranges: Optional[int] = 65_536,
        max_results: Optional[int] = 65_536,
        max_histograms: Optional[int] = 65_536,
    ):
        self._ranges = LRUCache(max_ranges)
        self._results = LRUCache(max_results)
        self._histograms = LRUCache(max_histograms)
        self._bind_lock = threading.Lock()
        self._bound_to = None
        self._bound_epoch = 0

    def bind_index(self, index, network=None) -> None:
        """Pin the cache to one (index, network) pair; reject any other.

        Cache keys identify the *query*, not the data it was answered
        from: a cache serving two indexes would return another index's
        histograms, and cached fallback results embed the network's
        ``estimateTT`` values, so the network matters too.  Engines call
        this before using the cache; sharing a cache is only legal
        across engines/services over the same index and network objects.

        The binding is permanent — ``clear()`` empties the sections but
        does not unbind, because an in-flight trip could repopulate the
        cache with old-index entries after the clear.  To serve other
        data, build a new cache (they are cheap).
        """
        with self._bind_lock:
            if self._bound_to is None:
                self._bound_to = (index, network)
                self._bound_epoch = getattr(index, "epoch", 0)
            elif (
                self._bound_to[0] is not index
                or self._bound_to[1] is not network
            ):
                raise ValueError(
                    "SubQueryCache is already bound to a different "
                    "index/network; cached answers would be wrong — use "
                    "one cache per (index, network) pair"
                )

    def spawn_empty(self) -> "SubQueryCache":
        """A fresh, unbound cache with this cache's per-section bounds.

        Used by process fan-out: each forked worker must not touch the
        parent's cache (its locks may have been snapshotted held), but
        the worker's replacement should honour the memory ceiling the
        caller configured here.
        """
        return SubQueryCache(
            max_ranges=self._ranges.max_entries,
            max_results=self._results.max_entries,
            max_histograms=self._histograms.max_entries,
        )

    def spawn_for_worker(self) -> "SubQueryCache":
        """The :class:`~repro.service.cachetier.CacheBackend` fork hook.

        An in-process cache cannot be shared with a forked worker (see
        :meth:`spawn_empty`), so the worker gets a fresh empty cache
        with the same bounds; the cross-process
        :class:`~repro.service.cachetier.SharedCacheTier` instead hands
        the worker a new handle onto the shared store.
        """
        return self.spawn_empty()

    def sync_epoch(self, index) -> None:
        """Drop entries cached against an earlier state of ``index``.

        Appendable readers (the sharded index) bump their ``epoch`` on
        every mutation.  The engine calls this at the start of each trip;
        on an epoch change every section is cleared, because appended
        trajectories can extend any cached ISA range, retrieval result,
        or histogram.  The clear happens *before* the new epoch is
        published, all under the bind lock, so a concurrent trip cannot
        observe the new epoch while stale entries are still readable.
        Appends must still be quiesced against in-flight trips — a trip
        racing the append could re-insert pre-append entries after the
        clear (the same contract as mutating the index under concurrent
        readers at all).
        """
        epoch = getattr(index, "epoch", 0)
        with self._bind_lock:
            if epoch == self._bound_epoch:
                return
            self.clear()  # owns the one authoritative section list
            self._bound_epoch = epoch

    # -- ranges ( path -> [(w, st, ed), ...] ) ------------------------- #

    def get_ranges(
        self, path: Tuple[int, ...]
    ) -> Optional[List[Tuple[int, int, int]]]:
        return self._ranges.get(path)

    def put_ranges(
        self, path: Tuple[int, ...], ranges: List[Tuple[int, int, int]]
    ) -> None:
        self._ranges.put(path, ranges)

    # -- retrieval results --------------------------------------------- #

    def get_result(self, key: Hashable):
        return self._results.get(key)

    def put_result(self, key: Hashable, result) -> None:
        result.values.setflags(write=False)
        self._results.put(key, result)

    def get_results_many(
        self, keys: Sequence[Hashable]
    ) -> Dict[Hashable, object]:
        """Bulk result probe: the found subset of ``keys``.

        The batched face of :meth:`get_result`, used by the
        deduplicating batch executor so one probe serves every demand
        of a round.  In-process this is a loop over the LRU; the
        cross-process :class:`~repro.service.cachetier.SharedCacheTier`
        overrides it with a single store query.
        """
        found: Dict[Hashable, object] = {}
        for key in keys:
            result = self._results.get(key)
            if result is not None:
                found[key] = result
        return found

    def put_results_many(
        self, items: Sequence[Tuple[Hashable, object]]
    ) -> None:
        """Bulk counterpart of :meth:`put_result`."""
        for key, result in items:
            self.put_result(key, result)

    # -- histograms ----------------------------------------------------- #

    def get_histogram(self, key: Hashable):
        return self._histograms.get(key)

    def put_histogram(self, key: Hashable, histogram) -> None:
        self._histograms.put(key, histogram)

    # -- bookkeeping ----------------------------------------------------- #

    def clear(self) -> None:
        """Empty all sections.  The index/network binding stays: racing
        an in-flight trip could otherwise leave old-index entries in a
        cache that then rebinds elsewhere."""
        self._ranges.clear()
        self._results.clear()
        self._histograms.clear()

    def close(self) -> None:
        """Release resources (the in-process cache just empties itself;
        the shared tier keeps its store and closes its connection)."""
        self.clear()

    def stats(self) -> CacheStats:
        return CacheStats(
            ranges=self._ranges.stats(),
            results=self._results.stats(),
            histograms=self._histograms.stats(),
        )
