"""Pluggable sub-query cache backends, including a cross-process tier.

The engine consumes one cache protocol (:class:`CacheBackend`):
``get_ranges``/``put_ranges``, ``get_result``/``put_result``,
``get_histogram``/``put_histogram`` plus the lifecycle hooks
(``bind_index``, ``sync_epoch``, ``spawn_for_worker``, ``close``).  Two
implementations exist:

* :class:`~repro.service.cache.SubQueryCache` — the in-process LRU of
  PR 1, private to one process;
* :class:`SharedCacheTier` (this module) — a tier that *multiple
  processes* share through an SQLite store under the index directory,
  so fork fan-out workers and entirely separate serving processes warm
  each other's caches instead of recomputing repeated sub-paths once
  per process.

Keying follows the ROADMAP external-cache-tier contract exactly: an
entry's key is the sub-query's :meth:`repro.api.TripRequest.to_dict`
wire form plus the :meth:`repro.api.EngineConfig.cache_identity`
fingerprint, and every entry is stamped with the index ``epoch`` it was
computed against.  Payloads are wire forms too
(:meth:`repro.sntindex.procedures.TravelTimeResult.to_wire` for
retrieval results, the histogram payload of
``TripQueryResult.to_dict`` for histograms), so an entry written by one
process deserialises bit-identically in another.

Epoch invalidation: reads only ever match rows stamped with the
reader's *current* epoch, so entries written before an append are never
served after it — even to a process that did not observe the append
write.  ``sync_epoch`` additionally garbage-collects rows stamped with
older epochs.  Because epoch numbers are per-object ordinal counters,
entries are additionally stamped with the index's ``epoch_token``
lineage (set by ``append()``): two processes that independently append
*different* tails to copies of one saved index land on the same epoch
number but different lineages, so they can never serve each other's
entries.

Layout: ``<cache_dir>/subquery_cache.sqlite`` in WAL mode — safe for
concurrent readers/writers across processes; connections are opened
lazily per process (an inherited parent connection is never reused
across a fork).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from ..errors import ConfigurationError
from .cache import CacheStats, LRUCache, SectionStats, SubQueryCache

if TYPE_CHECKING:  # the api layer sits above the service; imports are lazy
    from ..api.config import EngineConfig

__all__ = [
    "CacheBackend",
    "SharedCacheTier",
    "SharedTierStats",
    "resolve_cache_backend",
]

_DB_FILENAME = "subquery_cache.sqlite"

#: Sections of the sub-query cache, mirroring :class:`SubQueryCache`.
_SECTIONS = ("ranges", "results", "histograms")


@runtime_checkable
class CacheBackend(Protocol):
    """The cache protocol :meth:`repro.core.engine.QueryEngine._run_trip`
    consumes, plus the serving-layer lifecycle hooks.

    ``get_*`` returns ``None`` on a miss; cached values are treated as
    immutable by all parties.  ``spawn_for_worker`` is called *inside a
    forked worker process* on the inherited parent backend and must
    return the backend that worker should use without touching any
    parent lock (the fork may have snapshotted one mid-critical-section):
    an in-process cache returns a fresh empty clone, a shared tier
    returns a new handle onto the same store.
    """

    def bind_index(self, index: Any, network: Any = None) -> None: ...

    def sync_epoch(self, index: Any) -> None: ...

    def spawn_for_worker(self) -> "CacheBackend": ...

    def get_ranges(
        self, path: Tuple[int, ...]
    ) -> Optional[List[Tuple[int, int, int]]]: ...

    def put_ranges(
        self, path: Tuple[int, ...], ranges: List[Tuple[int, int, int]]
    ) -> None: ...

    def get_result(self, key: Hashable) -> Any: ...

    def put_result(self, key: Hashable, result: Any) -> None: ...

    def get_results_many(
        self, keys: Sequence[Hashable]
    ) -> Dict[Hashable, Any]: ...

    def put_results_many(
        self, items: Sequence[Tuple[Hashable, Any]]
    ) -> None: ...

    def get_histogram(self, key: Hashable) -> Any: ...

    def put_histogram(self, key: Hashable, histogram: Any) -> None: ...

    def clear(self) -> None: ...

    def close(self) -> None: ...

    def stats(self) -> CacheStats: ...


@dataclass(frozen=True)
class SharedTierStats:
    """Per-section split of where hits came from, plus store info.

    ``l1_hits`` were answered from this process's in-memory layer,
    ``shared_hits`` from the cross-process store (written by this or
    *another* process), ``misses`` found neither.
    """

    l1_hits: Dict[str, int]
    shared_hits: Dict[str, int]
    misses: Dict[str, int]
    db_path: str
    db_entries: int

    def summary(self) -> str:
        parts = []
        for name in _SECTIONS:
            parts.append(
                f"{name}: {self.l1_hits[name]} l1 / "
                f"{self.shared_hits[name]} shared hits, "
                f"{self.misses[name]} misses"
            )
        parts.append(f"{self.db_entries} stored entries")
        return "; ".join(parts)


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _interval_wire(interval: Any) -> Dict[str, Any]:
    # Lazy import: repro.api is the layer above the service package, so
    # importing it at module scope would be circular (api.db -> service).
    from ..api.request import _interval_to_dict

    return _interval_to_dict(interval)


def _histogram_from_wire(payload: Dict[str, Any]) -> Any:
    from ..histogram.histogram import Histogram

    return Histogram.from_wire(payload)


def _index_lineage(index: Any) -> str:
    """The mutation-lineage stamp of an index state.

    A mutated index carries an explicit ``epoch_token`` (set by
    ``append()`` and ``compact()``, persisted in the sharded
    manifest).  Compaction bumps the token even though answers are
    bit-identical: per-shard artefacts such as ``per_shard_scans``
    labels change with the topology, and a conservative drop of the
    shared tier is cheaper than proving every cached row
    merge-invariant.  Unmutated state
    has no token, so its lineage is derived from content scalars
    (corpus end time and build counts): two *builds over different
    data* — e.g. the CLI rebuilding in memory after the world's
    trajectory file was edited — then produce different lineages and
    can never serve each other's entries, while deterministic rebuilds
    (and every loader of one saved state) agree and share.
    """
    token = str(getattr(index, "epoch_token", ""))
    if token:
        return token
    stats = getattr(index, "build_stats", None)
    return "base:{}:{}:{}".format(
        int(getattr(index, "t_max", 0)),
        int(getattr(stats, "n_trajectories", -1)),
        int(getattr(stats, "n_traversals", -1)),
    )


class SharedCacheTier:
    """A sub-query cache multiple processes share through one store.

    Parameters
    ----------
    cache_dir:
        Directory holding the store (created if missing) — conventionally
        ``<index_dir>/cache/`` so the tier lives and dies with the index
        it answers for.
    config:
        The :class:`~repro.api.EngineConfig` of the sessions that will
        share this tier; its :meth:`~repro.api.EngineConfig.cache_identity`
        becomes part of every key, so differently-configured sessions
        sharing one directory can never serve each other's entries.
        Configs with a ``beta_policy`` are rejected — a callable has no
        cross-process identity.
    max_entries:
        Per-section bound of the in-process layer (L1) that fronts the
        store; ``None`` = unbounded.
    max_store_entries:
        Bound on the number of rows in the shared store itself
        (``None`` = unbounded; epoch GC still applies).  Enforced as
        insertion-order garbage collection on insert and during
        ``sync_epoch``: when the store exceeds the bound, the
        oldest-written rows are dropped — across every configuration and
        lineage sharing the file, since the bound protects the *file*.
        The check is exact for small bounds and amortised (every
        ``bound // 64`` single-row inserts; batched inserts and
        ``sync_epoch`` always check) for large ones, so a writing
        handle can transiently overshoot by ~1.5% of the bound.
        Eviction can only force a recomputation, never change an
        answer, because every read that misses the store falls through
        to the index scan that produced the entry in the first place.
    max_age_s:
        Maximum age of stored rows in seconds (``None`` = no age
        limit) — the long-running-server knob
        (``EngineConfig.cache_ttl_s``).  Every row is stamped with its
        write time; reads filter rows older than the limit (an expired
        row is a miss, across every process sharing the file,
        regardless of which handle wrote it), and expired rows are
        garbage-collected lazily — on ``sync_epoch`` and amortised
        during writes, at most every ``max_age_s / 4`` seconds per
        handle.  Rows written by a pre-TTL build carry write time 0
        and expire immediately once a TTL is configured.  Like the
        store bound, expiry only ever forces a recomputation, never a
        different answer; the bounded in-process L1 is deliberately
        not age-filtered (its entries are keyed by everything that
        shapes an answer, so serving them is always correct — the TTL
        protects the *file*, which outlives the process).  Stamps
        compare wall clocks across processes, so keep the limit well
        above any plausible clock skew (minutes, not milliseconds).

    Reads check L1 first, then the store (deserialising and promoting
    into L1); writes go to both.  Values handed out are immutable —
    arrays are marked read-only exactly like the in-process cache.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        config: Optional["EngineConfig"] = None,
        *,
        identity: Optional[str] = None,
        max_entries: Optional[int] = 65_536,
        max_store_entries: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> None:
        if (config is None) == (identity is None):
            raise ConfigurationError(
                "SharedCacheTier needs exactly one of config= (an "
                "EngineConfig) or identity= (a precomputed fingerprint)"
            )
        if identity is None:
            assert config is not None
            identity = config.cache_identity()
        self._dir = Path(cache_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._db_path = self._dir / _DB_FILENAME
        self._identity = identity
        self._ident_hash = hashlib.sha256(
            identity.encode("utf-8")
        ).hexdigest()
        if max_store_entries is not None and max_store_entries < 1:
            raise ConfigurationError(
                "max_store_entries must be positive or None (unbounded)"
            )
        if max_age_s is not None and not max_age_s > 0:
            raise ConfigurationError(
                "max_age_s must be positive or None (no age limit)"
            )
        self._max_entries = max_entries
        self._max_store_entries = max_store_entries
        self._max_age_s = None if max_age_s is None else float(max_age_s)
        # Expired-row GC is amortised per handle: a DELETE scan per read
        # would dominate warm traffic, so it runs on sync_epoch and at
        # most every max_age_s / 4 seconds during writes.  Reads never
        # depend on the GC having run — they filter on the stamp.
        self._last_expiry_gc = 0.0
        # Single-insert bound checks are amortised: a COUNT(*) costs
        # O(store size), so it runs every ``bound // 64`` single puts
        # (exact for small bounds, ~1.5% amortised overshoot per
        # writing handle for large ones).  Batched puts and sync_epoch
        # always enforce.
        self._bound_check_interval = (
            max(1, max_store_entries // 64)
            if max_store_entries is not None
            else 0
        )
        self._puts_since_bound_check = 0
        self._l1: Dict[str, LRUCache] = {
            name: LRUCache(max_entries) for name in _SECTIONS
        }
        self._lock = threading.Lock()
        self._bind_lock = threading.Lock()
        self._bound_to: Optional[Tuple[Any, Any]] = None
        self._epoch = 0
        # Which mutation produced the current epoch (the index's
        # ``epoch_token``; "" for unmutated disk state).  Epoch numbers
        # are per-object ordinal counters, so two processes appending
        # *different* tails to copies of one saved index collide on the
        # same number — the lineage keeps their entries apart.
        self._lineage = ""
        # Store-path counters only; the L1-hit fast path must not take
        # a lock shared with sqlite I/O (L1 hits are already counted
        # inside the LRUCache sections, under their own locks).
        self._shared_hits = {name: 0 for name in _SECTIONS}
        self._misses = {name: 0 for name in _SECTIONS}
        # Connections are per (process, tier): sqlite3 handles must not
        # cross a fork, so a child that inherits this object reopens.
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        with self._connection() as conn:
            self._init_schema(conn)

    # ------------------------------------------------------------------ #
    # Store plumbing
    # ------------------------------------------------------------------ #

    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            conn = sqlite3.connect(
                str(self._db_path),
                timeout=30.0,
                isolation_level=None,  # autocommit; every op is atomic
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._conn = conn
            self._conn_pid = pid
        return self._conn

    @staticmethod
    def _init_schema(conn: sqlite3.Connection) -> None:
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            "  section TEXT NOT NULL,"
            "  ident TEXT NOT NULL,"
            "  key TEXT NOT NULL,"
            "  epoch INTEGER NOT NULL,"
            "  lineage TEXT NOT NULL,"
            "  payload TEXT NOT NULL,"
            "  created_at REAL NOT NULL DEFAULT 0,"
            "  PRIMARY KEY (section, ident, key, epoch, lineage)"
            ")"
        )
        # Stores written before the TTL column existed migrate in place;
        # their rows default to write time 0, i.e. they expire the
        # moment any handle configures a TTL (a recomputation, never a
        # wrong answer).
        columns = {
            str(row[1])
            for row in conn.execute("PRAGMA table_info(entries)")
        }
        if "created_at" not in columns:
            conn.execute(
                "ALTER TABLE entries ADD COLUMN "
                "created_at REAL NOT NULL DEFAULT 0"
            )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta ("
            "  key TEXT PRIMARY KEY, value TEXT NOT NULL"
            ")"
        )

    def _age_cutoff(self) -> float:
        """Oldest write stamp a read may serve (0.0 = no TTL: every
        stamp passes, including migrated pre-TTL rows at 0)."""
        if self._max_age_s is None:
            return 0.0
        return time.time() - self._max_age_s

    def _expire_stale_locked(self, force: bool = False) -> None:
        """Drop rows past ``max_age_s``; caller holds ``self._lock``.

        Amortised unless ``force``: a full-table DELETE scan per write
        would dominate warm traffic, and reads are already stamp-
        filtered, so the GC only reclaims file space.
        """
        if self._max_age_s is None:
            return
        now = time.time()
        if not force and now - self._last_expiry_gc < self._max_age_s / 4:
            return
        self._last_expiry_gc = now
        self._connection().execute(
            "DELETE FROM entries WHERE created_at < ?",
            (now - self._max_age_s,),
        )

    def _store_get(self, section: str, key: str) -> Optional[str]:
        with self._lock:
            row = (
                self._connection()
                .execute(
                    "SELECT payload FROM entries WHERE section=? AND "
                    "ident=? AND key=? AND epoch=? AND lineage=? "
                    "AND created_at>=?",
                    (section, self._ident_hash, key, self._epoch,
                     self._lineage, self._age_cutoff()),
                )
                .fetchone()
            )
        return None if row is None else str(row[0])

    def _store_put(self, section: str, key: str, payload: str) -> None:
        with self._lock:
            self._connection().execute(
                "INSERT OR REPLACE INTO entries "
                "(section, ident, key, epoch, lineage, payload, "
                "created_at) VALUES (?,?,?,?,?,?,?)",
                (section, self._ident_hash, key, self._epoch,
                 self._lineage, payload, time.time()),
            )
            self._expire_stale_locked()
            self._puts_since_bound_check += 1
            if (
                self._bound_check_interval
                and self._puts_since_bound_check
                >= self._bound_check_interval
            ):
                self._enforce_store_bound()

    def _store_put_many(
        self, section: str, rows: Sequence[Tuple[str, str]]
    ) -> None:
        """Batched :meth:`_store_put` — one transaction, one bound check."""
        if not rows:
            return
        now = time.time()
        with self._lock:
            self._connection().executemany(
                "INSERT OR REPLACE INTO entries "
                "(section, ident, key, epoch, lineage, payload, "
                "created_at) VALUES (?,?,?,?,?,?,?)",
                [
                    (section, self._ident_hash, key, self._epoch,
                     self._lineage, payload, now)
                    for key, payload in rows
                ],
            )
            self._expire_stale_locked()
            self._enforce_store_bound()

    def _store_get_many(
        self, section: str, keys: Sequence[str]
    ) -> Dict[str, str]:
        """Batched :meth:`_store_get`: one query for a round's probes."""
        if not keys:
            return {}
        found: Dict[str, str] = {}
        with self._lock:
            conn = self._connection()
            # SQLite caps bound parameters (999 historically); chunk.
            for start in range(0, len(keys), 500):
                chunk = list(keys[start : start + 500])
                marks = ",".join("?" for _ in chunk)
                rows = conn.execute(
                    f"SELECT key, payload FROM entries WHERE section=? "
                    f"AND ident=? AND epoch=? AND lineage=? "
                    f"AND created_at>=? AND key IN ({marks})",
                    [section, self._ident_hash, self._epoch, self._lineage,
                     self._age_cutoff()]
                    + chunk,
                ).fetchall()
                for key, payload in rows:
                    found[str(key)] = str(payload)
        return found

    def _enforce_store_bound(self) -> None:
        """Drop the oldest-written rows past ``max_store_entries``.

        Caller holds ``self._lock``.  Ordering is by ``rowid`` —
        insertion order, with a REPLACE moving a refreshed entry to the
        newest position — and the bound counts the whole file, so every
        configuration/lineage sharing the store stays inside it.
        """
        if self._max_store_entries is None:
            return
        self._puts_since_bound_check = 0
        conn = self._connection()
        (count,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
        excess = int(count) - self._max_store_entries
        if excess > 0:
            conn.execute(
                "DELETE FROM entries WHERE rowid IN ("
                "SELECT rowid FROM entries ORDER BY rowid ASC LIMIT ?)",
                (excess,),
            )

    # ------------------------------------------------------------------ #
    # Keying (the ROADMAP wire-form contract)
    # ------------------------------------------------------------------ #

    def _request_wire(self, result_key: Hashable) -> Dict[str, Any]:
        """The sub-query's ``TripRequest.to_dict()`` wire form.

        The engine keys retrieval results by
        ``(path, interval, user, beta, exclude_ids)`` — exactly the
        answer-shaping fields of a :class:`~repro.api.TripRequest`, so
        the cross-process key is the corresponding request wire form.
        """
        path, interval, user, beta, exclude = result_key  # type: ignore[misc]
        return {
            "path": [int(e) for e in path],
            "interval": _interval_wire(interval),
            "user": None if user is None else int(user),
            "exclude_ids": [int(i) for i in exclude],
            "beta": None if beta is None else int(beta),
            "estimator": None,
        }

    def _ranges_key(self, path: Tuple[int, ...]) -> str:
        return _canonical_json({"path": [int(e) for e in path]})

    def _result_key(self, key: Hashable) -> str:
        return _canonical_json(self._request_wire(key))

    def _histogram_key(self, key: Hashable) -> str:
        result_key, bucket_width = key  # type: ignore[misc]
        return _canonical_json(
            {
                "request": self._request_wire(result_key),
                "bucket_width": float(bucket_width),
            }
        )

    # ------------------------------------------------------------------ #
    # Lifecycle (bind / epoch / fork / close)
    # ------------------------------------------------------------------ #

    def bind_index(self, index: Any, network: Any = None) -> None:
        """Pin this handle to one (index, network) pair, and the store
        to one data fingerprint.

        In-process the binding works like
        :meth:`SubQueryCache.bind_index` (object identity, permanent).
        Across processes object identity does not exist, so the store
        records a structural fingerprint of the index and network on
        first use and every later handle must match it — catching the
        "same directory, different world" mistake.
        """
        with self._bind_lock:
            if self._bound_to is not None:
                if (
                    self._bound_to[0] is not index
                    or self._bound_to[1] is not network
                ):
                    raise ValueError(
                        "SharedCacheTier handle is already bound to a "
                        "different index/network; cached answers would "
                        "be wrong — use one handle per (index, network) "
                        "pair"
                    )
                return
            fingerprint = _canonical_json(
                {
                    "alphabet_size": int(index.alphabet_size),
                    "t_min": int(getattr(index, "t_min", 0)),
                    "network_edges": int(
                        getattr(network, "n_edges", -1)
                    ),
                    "network_vertices": int(
                        getattr(network, "n_vertices", -1)
                    ),
                }
            )
            with self._lock:
                conn = self._connection()
                conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) "
                    "VALUES ('fingerprint', ?)",
                    (fingerprint,),
                )
                # Re-read after the insert: if a concurrent process won
                # the INSERT race with a *different* fingerprint, the
                # ignored insert must not let this handle proceed.
                row = conn.execute(
                    "SELECT value FROM meta WHERE key='fingerprint'"
                ).fetchone()
                if row is None or str(row[0]) != fingerprint:
                    raise ValueError(
                        "shared cache store at "
                        f"{self._db_path} was populated for a different "
                        "index/network (fingerprint mismatch); point the "
                        "tier at a fresh directory"
                    )
            self._bound_to = (index, network)
            self._epoch = int(getattr(index, "epoch", 0))
            self._lineage = _index_lineage(index)

    def sync_epoch(self, index: Any) -> None:
        """Adopt ``index.epoch`` (and its mutation lineage); stale
        entries become unreachable.

        Reads always filter on the handle's current (epoch, lineage)
        stamp, so entries written before an append are never served
        after it — in *any* process, including ones that never observe
        this call — and entries from a *different* mutation that landed
        on the same epoch number are never served at all.  The call
        itself garbage-collects the rows this handle's own history
        superseded (older epochs of its *previous* lineage) — never a
        parallel lineage's current entries, and never newer epochs: a
        process lagging behind an append must not delete the up-to-date
        entries of its peers.  Rows of abandoned lineages linger until
        ``clear()`` (or a future store TTL — see ROADMAP); they are
        unreachable, so only size is affected, never answers.
        """
        epoch = int(getattr(index, "epoch", 0))
        lineage = _index_lineage(index)
        with self._bind_lock:
            if epoch == self._epoch and lineage == self._lineage:
                # The common steady-state call (every trip): also the
                # TTL's GC hook, amortised so warm traffic never pays a
                # full-table scan per trip.
                if self._max_age_s is not None:
                    with self._lock:
                        self._expire_stale_locked()
                return
            for section in self._l1.values():
                section.clear()
            with self._lock:
                self._connection().execute(
                    "DELETE FROM entries WHERE epoch < ? AND lineage = ?",
                    (epoch, self._lineage),
                )
                self._expire_stale_locked(force=True)
                self._enforce_store_bound()
            self._epoch = epoch
            self._lineage = lineage

    def spawn_for_worker(self) -> "SharedCacheTier":
        """A fresh handle onto the same store for a forked worker.

        Called in the child on the inherited parent object; touches no
        lock (the fork may have snapshotted one held) and no inherited
        sqlite connection — only immutable attributes — so the worker
        gets clean synchronisation primitives and its own connection,
        while still sharing every stored entry with the parent and its
        sibling workers.
        """
        return SharedCacheTier(
            self._dir,
            identity=self._identity,
            max_entries=self._max_entries,
            max_store_entries=self._max_store_entries,
            max_age_s=self._max_age_s,
        )

    def clear(self) -> None:
        """Empty L1 and drop this configuration's stored entries.

        Other configurations sharing the directory are untouched; the
        index/network binding stays, as for :class:`SubQueryCache`.
        """
        for section in self._l1.values():
            section.clear()
        with self._lock:
            self._connection().execute(
                "DELETE FROM entries WHERE ident=?", (self._ident_hash,)
            )

    def close(self) -> None:
        """Release this handle's connection.  Stored entries persist —
        that is the point of the tier; other processes (or the next
        session) keep serving warm hits from them."""
        with self._lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._conn_pid = None

    # ------------------------------------------------------------------ #
    # Sections
    # ------------------------------------------------------------------ #

    def _get(
        self,
        section: str,
        l1_key: Hashable,
        store_key_fn: Any,
        deserialise: Any,
    ) -> Any:
        # ``store_key_fn`` is only called on an L1 miss: serialising the
        # wire-form key costs more than the L1 lookup it would annotate,
        # and warm in-process traffic should run at SubQueryCache speed
        # — which is also why an L1 hit takes no tier lock at all (the
        # LRU section counts it internally; the tier lock is shared
        # with sqlite I/O and may be held across a store write).
        value = self._l1[section].get(l1_key)
        if value is not None:
            return value
        stamp = (self._epoch, self._lineage)
        payload = self._store_get(section, store_key_fn())
        if payload is None:
            with self._lock:
                self._misses[section] += 1
            return None
        value = deserialise(json.loads(payload))
        # Promote under the bind lock, re-checking the stamp: a
        # concurrent sync_epoch may have cleared L1 *after* the store
        # read matched the old epoch — inserting then would resurrect a
        # pre-append entry at the new epoch.  On a lost race the row is
        # treated as a miss and the caller recomputes.
        with self._bind_lock:
            if (self._epoch, self._lineage) != stamp:
                with self._lock:
                    self._misses[section] += 1
                return None
            self._l1[section].put(l1_key, value)
        with self._lock:
            self._shared_hits[section] += 1
        return value

    def _put(
        self,
        section: str,
        l1_key: Hashable,
        store_key: str,
        value: Any,
        payload: Any,
    ) -> None:
        self._l1[section].put(l1_key, value)
        self._store_put(section, store_key, _canonical_json(payload))

    # -- ranges ( path -> [(w, st, ed), ...] ) ------------------------- #

    def get_ranges(
        self, path: Tuple[int, ...]
    ) -> Optional[List[Tuple[int, int, int]]]:
        def deserialise(payload: Any) -> List[Tuple[int, int, int]]:
            return [(int(w), int(st), int(ed)) for w, st, ed in payload]

        return self._get(
            "ranges", path, lambda: self._ranges_key(path), deserialise
        )

    def put_ranges(
        self, path: Tuple[int, ...], ranges: List[Tuple[int, int, int]]
    ) -> None:
        payload = [[int(w), int(st), int(ed)] for w, st, ed in ranges]
        self._put("ranges", path, self._ranges_key(path), ranges, payload)

    # -- retrieval results --------------------------------------------- #

    def get_result(self, key: Hashable) -> Any:
        from ..sntindex.procedures import TravelTimeResult

        return self._get(
            "results",
            key,
            lambda: self._result_key(key),
            TravelTimeResult.from_wire,
        )

    def put_result(self, key: Hashable, result: Any) -> None:
        result.values.setflags(write=False)
        self._put(
            "results", key, self._result_key(key), result, result.to_wire()
        )

    def get_results_many(
        self, keys: Sequence[Hashable]
    ) -> Dict[Hashable, Any]:
        """Bulk result probe: L1 first, then one store query for the rest.

        The batched face of :meth:`get_result` used by the deduplicating
        batch executor — a round's worth of probes costs one SQLite
        round trip instead of one per sub-query.  Promotion into L1
        follows the same stamp-re-check discipline as the single-key
        path, so a concurrent epoch bump can never resurrect a
        pre-append entry.
        """
        from ..sntindex.procedures import TravelTimeResult

        found: Dict[Hashable, Any] = {}
        missing: List[Hashable] = []
        for key in keys:
            value = self._l1["results"].get(key)
            if value is not None:
                found[key] = value
            else:
                missing.append(key)
        if not missing:
            return found
        stamp = (self._epoch, self._lineage)
        store_keys = {key: self._result_key(key) for key in missing}
        payloads = self._store_get_many(
            "results", list(store_keys.values())
        )
        n_missed = 0
        for key in missing:
            payload = payloads.get(store_keys[key])
            if payload is None:
                n_missed += 1
                continue
            value = TravelTimeResult.from_wire(json.loads(payload))
            with self._bind_lock:
                if (self._epoch, self._lineage) != stamp:
                    n_missed += 1
                    continue
                self._l1["results"].put(key, value)
            with self._lock:
                self._shared_hits["results"] += 1
            found[key] = value
        if n_missed:
            with self._lock:
                self._misses["results"] += n_missed
        return found

    def put_results_many(
        self, items: Sequence[Tuple[Hashable, Any]]
    ) -> None:
        """Bulk counterpart of :meth:`put_result`: one store transaction."""
        rows: List[Tuple[str, str]] = []
        for key, result in items:
            result.values.setflags(write=False)
            self._l1["results"].put(key, result)
            rows.append(
                (self._result_key(key), _canonical_json(result.to_wire()))
            )
        self._store_put_many("results", rows)

    # -- histograms ----------------------------------------------------- #

    def get_histogram(self, key: Hashable) -> Any:
        return self._get(
            "histograms",
            key,
            lambda: self._histogram_key(key),
            _histogram_from_wire,
        )

    def put_histogram(self, key: Hashable, histogram: Any) -> None:
        self._put(
            "histograms",
            key,
            self._histogram_key(key),
            histogram,
            histogram.to_wire(),
        )

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #

    def stats(self) -> CacheStats:
        """Aggregate statistics in the :class:`CacheStats` shape.

        ``hits`` counts L1 and shared-store hits together; ``size`` and
        the eviction counter describe the in-process layer (the store is
        unbounded and epoch-collected).
        """
        sections: Dict[str, SectionStats] = {}
        with self._lock:
            shared_hits = dict(self._shared_hits)
            misses = dict(self._misses)
        for name in _SECTIONS:
            l1 = self._l1[name].stats()
            sections[name] = SectionStats(
                hits=l1.hits + shared_hits[name],
                misses=misses[name],
                evictions=l1.evictions,
                size=l1.size,
                max_size=l1.max_size,
            )
        return CacheStats(
            ranges=sections["ranges"],
            results=sections["results"],
            histograms=sections["histograms"],
        )

    def tier_stats(self) -> SharedTierStats:
        """Where hits came from, plus store occupancy."""
        l1_hits = {
            name: self._l1[name].stats().hits for name in _SECTIONS
        }
        with self._lock:
            row = (
                self._connection()
                .execute("SELECT COUNT(*) FROM entries")
                .fetchone()
            )
            return SharedTierStats(
                l1_hits=l1_hits,
                shared_hits=dict(self._shared_hits),
                misses=dict(self._misses),
                db_path=str(self._db_path),
                db_entries=int(row[0]),
            )


def resolve_cache_backend(
    config: "EngineConfig", index: Any
) -> Optional[CacheBackend]:
    """Build the cache backend an :class:`~repro.api.EngineConfig` asks for.

    The ``config.cache`` spec:

    * ``None`` — legacy behaviour: an in-process
      :class:`SubQueryCache` when ``config.cache_enabled``, else no
      shared cache;
    * ``"memory"`` — the in-process cache, explicitly;
    * ``"off"`` — no shared cache (per-trip caching only);
    * ``"shared"`` — a :class:`SharedCacheTier` under
      ``<index dir>/cache/`` (the index must have been loaded from
      disk, so its directory is known);
    * ``"shared:<dir>"`` — a :class:`SharedCacheTier` at an explicit
      directory.
    """
    spec = config.cache
    if spec is None:
        spec = "memory" if config.cache_enabled else "off"
    if spec == "off":
        return None
    if spec == "memory":
        return SubQueryCache(
            max_ranges=config.cache_entries,
            max_results=config.cache_entries,
            max_histograms=config.cache_entries,
        )
    if spec == "shared":
        source = getattr(index, "source_path", None)
        if source is None:
            raise ConfigurationError(
                "cache='shared' places the tier under the index "
                "directory, but this index was not loaded from disk — "
                "use cache='shared:<dir>' to give an explicit directory"
            )
        cache_dir: Path = Path(source) / "cache"
    else:
        # EngineConfig validated the spec shape; only shared:<dir> is left.
        cache_dir = Path(spec.split(":", 1)[1])
    return SharedCacheTier(
        cache_dir,
        config,
        max_entries=config.cache_entries,
        max_store_entries=config.cache_store_entries,
        max_age_s=config.cache_ttl_s,
    )
