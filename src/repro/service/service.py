"""Batched travel-time query service (ROADMAP serving layer).

:class:`TravelTimeService` wraps one :class:`IndexReader` — the
monolithic :class:`SNTIndex` or the time-sliced
:class:`~repro.sntindex.ShardedSNTIndex` — plus an
:class:`~repro.api.EngineConfig` and executes *batches* of trip tasks.
It is the internal batch executor behind the typed
:class:`repro.api.TravelTimeDB` facade (the one public query surface,
``repro.open_db``; the PR-3 ``trip_query``/``trip_query_many`` shims
were removed on schedule in PR 5):

* a cross-query :class:`SubQueryCache` shares FM-index backward searches,
  retrieval results, and histograms between trips (commuter workloads
  repeat sub-paths heavily);
* with ``config.dedup_subqueries`` the batch runs through the staged
  :class:`~repro.core.exec.BatchExecutor`: the planned sub-queries of
  all in-flight trips are collected per round, identical
  ``(path, interval, user, beta, exclude)`` tasks are deduplicated, and
  each unique task is scanned once — so even a *cold* cache answers a
  repeated-path batch with one scan per distinct sub-query;
* optional thread-pool fan-out runs independent trips (or the batch's
  unique scans, under dedup) concurrently while returning results in
  submission order (the index is immutable during a batch, numpy
  kernels release the GIL);
* optional **process fan-out** (``use_processes=True``) forks worker
  processes that each answer whole trips against their copy-on-write
  view of the index — with a sharded index every worker scans only the
  shards its trips route to, so a batch's shard work spreads across
  real cores instead of GIL slices;
* :meth:`TravelTimeService.from_saved` cold-starts from a persisted
  index directory, auto-detecting the monolithic vs sharded layout.

Cached, deduplicated, and fan-out execution is *bit-identical* to
sequential Procedure 6: a cache hit (or a deduplicated fan-out) re-enters
the procedure exactly where the index scan would have, so only the
``n_index_scans`` / ``n_cache_hits`` accounting differs.  For
single-threaded cached runs their sum equals the uncached scan count
exactly; under free-threaded fan-out two threads may race to
first-answer the same sub-query and each scan it once, so the sum can
over-count scans (never miss work, and never change answers) — the
dedup executor removes exactly that race, because each round scans each
unique key once.  Process fan-out gives each worker its own forked
cache, so cross-trip sharing happens per worker; answers are still
identical.  The ``tests/service`` suite enforces the equivalence across
partitioners, splitters, and estimator configurations.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from ..core.engine import QueryEngine, TripQueryResult
from ..core.exec import DedupStats
from ..core.spq import StrictPathQuery
from ..forkpool import fork_map
from ..network.graph import RoadNetwork
from ..sntindex.reader import IndexReader
from ..sntindex.sharded import load_any_index
from ..errors import ConfigurationError
from .cache import CacheStats
from .cachetier import CacheBackend, resolve_cache_backend

if TYPE_CHECKING:  # the api layer sits above the service; imports are lazy
    from ..api.config import EngineConfig

__all__ = ["TravelTimeService"]

#: One batch item: (strict path query, excluded ids, estimator mode).
#: The estimator mode is the per-request override (``None`` = engine
#: default), threaded through thread and fork workers alike.
TripTask = Tuple[StrictPathQuery, Tuple[int, ...], object]


#: One worker-side cache per forked worker process.  The parent's
#: backend must not be touched from a fork: its locks may have been
#: snapshotted mid-critical-section by a concurrently running thread
#: batch, and a child blocking on an inherited locked lock hangs
#: forever.  ``spawn_for_worker`` (called in the child, lock-free)
#: decides what the worker gets instead: an in-process SubQueryCache
#: yields a fresh empty cache with the same LRU bounds — cross-trip
#: sharing within the worker's chunk only — while a SharedCacheTier
#: yields a new handle onto the same cross-process store, so workers
#: warm each other and later processes.
_CHILD_CACHE: Optional[CacheBackend] = None


def _answer_forked(payload) -> TripQueryResult:
    """Fork-side worker: answer one task of an inherited batch."""
    global _CHILD_CACHE
    engine, (query, excluded, estimator_mode) = payload
    cache = None
    if engine.cache is not None:
        if _CHILD_CACHE is None:
            _CHILD_CACHE = engine.cache.spawn_for_worker()
        cache = _CHILD_CACHE
    # cache=None with an uncached engine keeps the per-trip default;
    # passing the engine's own (inherited) shared backend is what must
    # never happen here.
    return engine._run_task(query, excluded, estimator_mode, cache=cache)


class TravelTimeService:
    """Travel-time histogram retrieval for query batches.

    Parameters
    ----------
    index, network:
        The index reader (monolithic or sharded) and its road network
        (as for ``QueryEngine``).
    cache:
        ``"default"`` resolves the backend from ``config`` (the
        ``config.cache`` spec — in-process :class:`SubQueryCache`,
        cross-process :class:`~repro.service.cachetier.SharedCacheTier`,
        or none; with ``config.cache=None`` the legacy
        ``cache_enabled``/``cache_entries`` knobs apply); ``None``
        disables cross-query caching (every trip uses the engine's
        per-trip cache); or pass a pre-configured backend
        (:class:`SubQueryCache` / ``SharedCacheTier``) to control the
        bounds or share one cache between services *over the same index
        and network* — the cache binds permanently to the first
        (index, network) pair it serves and rejects any other.
    n_workers:
        Default fan-out width for batches.  ``None`` uses
        ``config.n_workers``; ``1`` keeps execution on the calling
        thread.
    config:
        An :class:`repro.api.EngineConfig`; ``None`` uses defaults.
    estimator:
        Optional engine-default :class:`CardinalityEstimator` instance.
    """

    def __init__(
        self,
        index: IndexReader,
        network: RoadNetwork,
        cache: Union[CacheBackend, None, str] = "default",
        n_workers: Optional[int] = None,
        config: Optional["EngineConfig"] = None,
        *,
        estimator=None,
    ):
        if config is None:
            from ..api.config import EngineConfig

            config = EngineConfig()
        if n_workers is None:
            n_workers = config.n_workers
        if n_workers < 1:
            # ConfigurationError is also a ValueError (legacy contract).
            raise ConfigurationError("n_workers must be positive")
        if cache == "default":
            cache = resolve_cache_backend(config, index)
        elif isinstance(cache, str):
            raise ConfigurationError(
                f"cache must be a cache backend (SubQueryCache / "
                f"SharedCacheTier), None, or 'default'; got {cache!r}"
            )
        self.cache: Optional[CacheBackend] = cache
        self.n_workers = n_workers
        self.config = config
        self.engine = QueryEngine(
            index, network, config, estimator=estimator, cache=cache
        )
        #: Dedup accounting of the most recent batch answered through
        #: the deduplicating executor (``None`` before the first one,
        #: or after a batch that ran without dedup).
        self.last_dedup_stats: Optional[DedupStats] = None

    @property
    def index(self) -> IndexReader:
        return self.engine.index

    @property
    def network(self) -> RoadNetwork:
        return self.engine.network

    @classmethod
    def from_saved(
        cls,
        index_path: Union[str, Path],
        network: RoadNetwork,
        **kwargs,
    ) -> "TravelTimeService":
        """Cold-start a service from a persisted index directory.

        Detects the layout — a monolithic ``meta.json`` directory or a
        sharded ``manifest.json`` directory — and rejects an index whose
        manifest disagrees with ``network`` before any FM partition is
        unpickled.
        """
        index = load_any_index(
            index_path,
            expected_alphabet_size=getattr(network, "alphabet_size", None),
        )
        return cls(index, network, **kwargs)

    # ------------------------------------------------------------------ #
    # Internal batch executor (behind the typed API)
    # ------------------------------------------------------------------ #

    def _run_batch(
        self,
        tasks: Sequence[TripTask],
        n_workers: Optional[int] = None,
        use_processes: bool = False,
    ) -> List[TripQueryResult]:
        """Execute a batch of tasks with the configured fan-out.

        Results come back in submission order regardless of worker count
        or execution mode, so callers can zip them onto their requests.
        With ``config.dedup_subqueries`` (and thread/sequential
        execution) the batch runs through the deduplicating staged
        executor; its accounting lands in :attr:`last_dedup_stats`.
        """
        results, _ = self._run_batch_with_stats(
            tasks, n_workers=n_workers, use_processes=use_processes
        )
        return results

    def _run_batch_with_stats(
        self,
        tasks: Sequence[TripTask],
        n_workers: Optional[int] = None,
        use_processes: bool = False,
    ) -> Tuple[List[TripQueryResult], Optional[DedupStats]]:
        """:meth:`_run_batch`, also handing the batch's dedup accounting
        back to the caller.

        :attr:`last_dedup_stats` is last-writer-wins observability (like
        ``cache_stats``); a caller aggregating across several batches —
        the streaming windows — must use the returned stats, not the
        attribute, or a concurrent batch's numbers could leak in.
        """
        workers = self.n_workers if n_workers is None else n_workers
        if workers < 1:
            raise ConfigurationError("n_workers must be positive")
        workers = min(workers, max(1, len(tasks)))

        if use_processes and workers > 1:
            # Fork fan-out ships whole trips to workers; cross-trip dedup
            # would need cross-process demand collection — the shared
            # cache tier already covers that ground.
            self.last_dedup_stats = None
            return self._run_batch_forked(tasks, workers), None

        if self.config.dedup_subqueries:
            results, stats = self.engine.run_batch(tasks, n_workers=workers)
            self.last_dedup_stats = stats
            return results, stats
        self.last_dedup_stats = None

        def answer(task: TripTask) -> TripQueryResult:
            query, excluded, estimator_mode = task
            return self.engine._run_task(query, excluded, estimator_mode)

        if workers == 1:
            return [answer(task) for task in tasks], None
        # Task execution touches no engine state and the shared cache is
        # locked, so one engine serves every worker; map() preserves
        # submission order.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(answer, tasks)), None

    def _run_batch_forked(
        self,
        tasks: Sequence[TripTask],
        workers: int,
    ) -> List[TripQueryResult]:
        """Process fan-out: fork workers that inherit the service state.

        The engine and tasks travel to the workers via fork
        copy-on-write (locks and numpy payloads never cross a pickle on
        the way in); ``TripQueryResult`` payloads come back.  No pickled
        fallback exists — the engine holds cache locks — so on platforms
        without ``fork`` this raises ``RuntimeError``; use thread
        fan-out there.

        Process mode must be quiesced: only one process-mode batch per
        process (a concurrent second one raises ``RuntimeError``), and
        no thread-mode batch should run on the same index concurrently —
        forking can snapshot another thread mid-critical-section,
        leaving a child waiting on a lock that is never released.
        Side-effect statistics accumulate in the children and die with
        the pool: after a process-mode batch, parent-side
        ``cache_stats()`` and a sharded index's ``shard_stats()`` do not
        reflect that batch's work (the ``TripQueryResult`` scan/hit
        counters are returned as usual).
        """
        payloads = [(self.engine, task) for task in tasks]
        return fork_map(
            _answer_forked,
            payloads,
            workers,
            chunksize=max(1, len(tasks) // (workers * 4)),
        )

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #

    def cache_stats(self) -> Optional[CacheStats]:
        """Shared-cache statistics, or ``None`` when caching is off."""
        return self.cache.stats() if self.cache is not None else None

    def clear_cache(self) -> None:
        if self.cache is not None:
            self.cache.clear()

    def close_cache(self) -> None:
        """Release the cache backend: an in-process cache empties, a
        shared tier closes its store connection but keeps its entries
        (other processes may still be serving warm hits from them)."""
        if self.cache is not None:
            self.cache.close()
