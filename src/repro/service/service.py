"""Batched travel-time query service (ROADMAP serving layer).

:class:`TravelTimeService` wraps one :class:`IndexReader` — the
monolithic :class:`SNTIndex` or the time-sliced
:class:`~repro.sntindex.ShardedSNTIndex` — plus an
:class:`~repro.api.EngineConfig` and executes *batches* of trip tasks.
It is the batch executor behind the typed
:class:`repro.api.TravelTimeDB` facade; the public
``trip_query``/``trip_query_many`` methods are deprecation shims over
the same internals (prefer ``repro.open_db``):

* a cross-query :class:`SubQueryCache` shares FM-index backward searches,
  retrieval results, and histograms between trips (commuter workloads
  repeat sub-paths heavily);
* optional thread-pool fan-out runs independent trips concurrently while
  returning results in submission order (the index is immutable during a
  batch, numpy kernels release the GIL);
* optional **process fan-out** (:meth:`trip_query_many` with
  ``use_processes=True``) forks worker processes that each answer whole
  trips against their copy-on-write view of the index — with a sharded
  index every worker scans only the shards its trips route to, so a
  batch's shard work spreads across real cores instead of GIL slices;
* :meth:`TravelTimeService.from_saved` cold-starts from a persisted
  index directory, auto-detecting the monolithic vs sharded layout.

Cached and fan-out execution is *bit-identical* to sequential
``QueryEngine.trip_query``: a cache hit re-enters Procedure 6 exactly
where the index scan would have, so only the ``n_index_scans`` /
``n_cache_hits`` accounting differs.  For single-threaded cached runs
their sum equals the uncached scan count exactly; under concurrent
fan-out two threads may race to first-answer the same sub-query and
each scan it once, so the sum can over-count scans (never miss work,
and never change answers).  Process fan-out gives each worker its own
forked cache, so cross-trip sharing happens per worker; answers are
still identical.  The ``tests/service`` suite enforces the equivalence
across partitioners, splitters, and estimator configurations.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from ..core.engine import QueryEngine, TripQueryResult, _legacy_config
from ..core.spq import StrictPathQuery
from ..forkpool import fork_map
from ..network.graph import RoadNetwork
from ..sntindex.reader import IndexReader
from ..sntindex.sharded import load_any_index
from ..errors import ConfigurationError, ReproDeprecationWarning
from .cache import CacheStats
from .cachetier import CacheBackend, resolve_cache_backend

if TYPE_CHECKING:  # the api layer sits above the service; imports are lazy
    from ..api.config import EngineConfig

__all__ = ["TravelTimeService"]

#: One batch item: (strict path query, excluded ids, estimator mode).
#: The estimator mode is the per-request override (``None`` = engine
#: default), threaded through thread and fork workers alike.
TripTask = Tuple[StrictPathQuery, Tuple[int, ...], object]


#: One worker-side cache per forked worker process.  The parent's
#: backend must not be touched from a fork: its locks may have been
#: snapshotted mid-critical-section by a concurrently running thread
#: batch, and a child blocking on an inherited locked lock hangs
#: forever.  ``spawn_for_worker`` (called in the child, lock-free)
#: decides what the worker gets instead: an in-process SubQueryCache
#: yields a fresh empty cache with the same LRU bounds — cross-trip
#: sharing within the worker's chunk only — while a SharedCacheTier
#: yields a new handle onto the same cross-process store, so workers
#: warm each other and later processes.
_CHILD_CACHE: Optional[CacheBackend] = None


def _answer_forked(payload) -> TripQueryResult:
    """Fork-side worker: answer one task of an inherited batch."""
    global _CHILD_CACHE
    engine, (query, excluded, estimator_mode) = payload
    cache = None
    if engine.cache is not None:
        if _CHILD_CACHE is None:
            _CHILD_CACHE = engine.cache.spawn_for_worker()
        cache = _CHILD_CACHE
    # cache=None with an uncached engine keeps the per-trip default;
    # passing the engine's own (inherited) shared backend is what must
    # never happen here.
    return engine._run_task(query, excluded, estimator_mode, cache=cache)


class TravelTimeService:
    """Travel-time histogram retrieval for query batches.

    Parameters
    ----------
    index, network:
        The index reader (monolithic or sharded) and its road network
        (as for ``QueryEngine``).
    cache:
        ``"default"`` resolves the backend from ``config`` (the
        ``config.cache`` spec — in-process :class:`SubQueryCache`,
        cross-process :class:`~repro.service.cachetier.SharedCacheTier`,
        or none; with ``config.cache=None`` the legacy
        ``cache_enabled``/``cache_entries`` knobs apply); ``None``
        disables cross-query caching (every trip uses the engine's
        per-trip cache); or pass a pre-configured backend
        (:class:`SubQueryCache` / ``SharedCacheTier``) to control the
        bounds or share one cache between services *over the same index
        and network* — the cache binds permanently to the first
        (index, network) pair it serves and rejects any other.
    n_workers:
        Default fan-out width for batches.  ``None`` uses
        ``config.n_workers``; ``1`` keeps execution on the calling
        thread.
    config:
        An :class:`repro.api.EngineConfig`; ``None`` uses defaults.
    estimator:
        Optional engine-default :class:`CardinalityEstimator` instance.
    **engine_kwargs:
        Deprecated pre-redesign engine kwargs (partitioner, splitter,
        ladder, bucket_width_s, ...) — pass ``config`` instead.
    """

    def __init__(
        self,
        index: IndexReader,
        network: RoadNetwork,
        cache: Union[CacheBackend, None, str] = "default",
        n_workers: Optional[int] = None,
        config: Optional["EngineConfig"] = None,
        *,
        estimator=None,
        **engine_kwargs,
    ):
        if engine_kwargs:
            if config is not None:
                raise TypeError(
                    "pass either config=EngineConfig(...) or the legacy "
                    "engine keyword arguments, not both"
                )
            warnings.warn(
                "TravelTimeService(partitioner=..., ...) engine keyword "
                "arguments are deprecated; pass "
                "config=repro.EngineConfig(...) instead",
                ReproDeprecationWarning,
                stacklevel=2,
            )
            config = _legacy_config(engine_kwargs)
        if config is None:
            config = _legacy_config({})
        if n_workers is None:
            n_workers = config.n_workers
        if n_workers < 1:
            # ConfigurationError is also a ValueError (legacy contract).
            raise ConfigurationError("n_workers must be positive")
        if cache == "default":
            cache = resolve_cache_backend(config, index)
        elif isinstance(cache, str):
            raise ConfigurationError(
                f"cache must be a cache backend (SubQueryCache / "
                f"SharedCacheTier), None, or 'default'; got {cache!r}"
            )
        self.cache: Optional[CacheBackend] = cache
        self.n_workers = n_workers
        self.config = config
        self.engine = QueryEngine(
            index, network, config, estimator=estimator, cache=cache
        )

    @property
    def index(self) -> IndexReader:
        return self.engine.index

    @property
    def network(self) -> RoadNetwork:
        return self.engine.network

    @classmethod
    def from_saved(
        cls,
        index_path: Union[str, Path],
        network: RoadNetwork,
        **kwargs,
    ) -> "TravelTimeService":
        """Cold-start a service from a persisted index directory.

        Detects the layout — a monolithic ``meta.json`` directory or a
        sharded ``manifest.json`` directory — and rejects an index whose
        manifest disagrees with ``network`` before any FM partition is
        unpickled.
        """
        index = load_any_index(
            index_path,
            expected_alphabet_size=getattr(network, "alphabet_size", None),
        )
        return cls(index, network, **kwargs)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def trip_query(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int] = (),
    ) -> TripQueryResult:
        """Deprecated: use :meth:`repro.api.TravelTimeDB.query` with a
        :class:`~repro.api.TripRequest`.  Answers one trip through the
        shared cache, unchanged."""
        warnings.warn(
            "TravelTimeService.trip_query is deprecated; use "
            "repro.open_db(...).query(TripRequest(...))",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        return self.engine._run_task(query, tuple(exclude_ids), None)

    def trip_query_many(
        self,
        queries: Sequence[StrictPathQuery],
        exclude_ids: Optional[Sequence[Sequence[int]]] = None,
        n_workers: Optional[int] = None,
        use_processes: bool = False,
    ) -> List[TripQueryResult]:
        """Answer a batch of independent trips.

        Parameters
        ----------
        queries:
            The trip queries, answered independently.
        exclude_ids:
            Optional per-query excluded trajectory ids (parallel to
            ``queries``); used by evaluation workloads to keep each query
            trajectory out of its own answer.
        n_workers:
            Overrides the service-level pool width for this batch.
        use_processes:
            Fan the batch out over forked worker processes instead of
            threads.  Sidesteps the GIL entirely — each worker answers
            whole trips against its copy-on-write fork of the index (for
            a sharded index: only the shards its trips route to), at the
            price of forking and of pickling results back.  Requires the
            ``fork`` start method (Linux/macOS); each worker builds its
            own fresh cache (the parent's shared cache is never touched
            from a fork), so the cache warms per worker process only.
            Unlike thread fan-out, process mode must be quiesced: only
            one process-mode batch per process (a concurrent second one
            raises ``RuntimeError``), and no thread-mode batch should
            run on the same index concurrently — forking can snapshot
            another thread mid-critical-section, leaving a child waiting
            on a lock that is never released.  The effective worker
            count follows ``n_workers`` as usual: with the service
            default of ``1`` pass ``n_workers`` explicitly, or the batch
            runs sequentially without forking.  Side-effect statistics
            accumulate in the children and die with the pool: after a
            process-mode batch, parent-side ``cache_stats()`` and a
            sharded index's ``shard_stats()`` do not reflect that
            batch's work (the ``TripQueryResult`` scan/hit counters are
            returned as usual).

        Returns
        -------
        Results in submission order, regardless of worker count or
        execution mode — the batch API is deterministic so callers can
        zip results back onto their requests.
        """
        warnings.warn(
            "TravelTimeService.trip_query_many is deprecated; use "
            "repro.open_db(...).query_many([TripRequest(...), ...]) or "
            ".stream(...)",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        if exclude_ids is None:
            exclude_ids = [()] * len(queries)
        if len(exclude_ids) != len(queries):
            raise ValueError(
                f"got {len(queries)} queries but {len(exclude_ids)} "
                "exclude_ids entries"
            )
        tasks: List[TripTask] = [
            (query, tuple(excluded), None)
            for query, excluded in zip(queries, exclude_ids)
        ]
        return self._run_batch(
            tasks, n_workers=n_workers, use_processes=use_processes
        )

    # ------------------------------------------------------------------ #
    # Internal batch executor (shared with the typed API)
    # ------------------------------------------------------------------ #

    def _run_batch(
        self,
        tasks: Sequence[TripTask],
        n_workers: Optional[int] = None,
        use_processes: bool = False,
    ) -> List[TripQueryResult]:
        """Execute a batch of tasks with the configured fan-out.

        Results come back in submission order regardless of worker count
        or execution mode, so callers can zip them onto their requests.
        """
        workers = self.n_workers if n_workers is None else n_workers
        if workers < 1:
            raise ConfigurationError("n_workers must be positive")
        workers = min(workers, max(1, len(tasks)))

        if use_processes and workers > 1:
            return self._run_batch_forked(tasks, workers)

        def answer(task: TripTask) -> TripQueryResult:
            query, excluded, estimator_mode = task
            return self.engine._run_task(query, excluded, estimator_mode)

        if workers == 1:
            return [answer(task) for task in tasks]
        # Task execution touches no engine state and the shared cache is
        # locked, so one engine serves every worker; map() preserves
        # submission order.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(answer, tasks))

    def _run_batch_forked(
        self,
        tasks: Sequence[TripTask],
        workers: int,
    ) -> List[TripQueryResult]:
        """Process fan-out: fork workers that inherit the service state.

        The engine and tasks travel to the workers via fork
        copy-on-write (locks and numpy payloads never cross a pickle on
        the way in); ``TripQueryResult`` payloads come back.  No pickled
        fallback exists — the engine holds cache locks — so on platforms
        without ``fork`` this raises ``RuntimeError``; use thread
        fan-out there.
        """
        payloads = [(self.engine, task) for task in tasks]
        return fork_map(
            _answer_forked,
            payloads,
            workers,
            chunksize=max(1, len(tasks) // (workers * 4)),
        )

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #

    def cache_stats(self) -> Optional[CacheStats]:
        """Shared-cache statistics, or ``None`` when caching is off."""
        return self.cache.stats() if self.cache is not None else None

    def clear_cache(self) -> None:
        if self.cache is not None:
            self.cache.clear()

    def close_cache(self) -> None:
        """Release the cache backend: an in-process cache empties, a
        shared tier closes its store connection but keeps its entries
        (other processes may still be serving warm hits from them)."""
        if self.cache is not None:
            self.cache.close()
