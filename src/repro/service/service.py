"""Batched travel-time query service (ROADMAP serving layer).

:class:`TravelTimeService` wraps one immutable :class:`SNTIndex` plus a
:class:`QueryEngine` configuration and answers *batches* of trip queries:

* a cross-query :class:`SubQueryCache` shares FM-index backward searches,
  retrieval results, and histograms between trips (commuter workloads
  repeat sub-paths heavily);
* optional thread-pool fan-out runs independent trips concurrently while
  returning results in submission order (the index is immutable, numpy
  kernels release the GIL);
* :meth:`TravelTimeService.from_saved` cold-starts from a persisted index
  (:meth:`SNTIndex.save`), skipping the suffix-array build entirely.

Cached and fan-out execution is *bit-identical* to sequential
``QueryEngine.trip_query``: a cache hit re-enters Procedure 6 exactly
where the index scan would have, so only the ``n_index_scans`` /
``n_cache_hits`` accounting differs.  For single-threaded cached runs
their sum equals the uncached scan count exactly; under concurrent
fan-out two threads may race to first-answer the same sub-query and
each scan it once, so the sum can over-count scans (never miss work,
and never change answers).  The ``tests/service`` suite enforces the
equivalence across partitioners, splitters, and estimator
configurations.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..core.engine import QueryEngine, TripQueryResult
from ..core.spq import StrictPathQuery
from ..network.graph import RoadNetwork
from ..sntindex.index import SNTIndex
from .cache import CacheStats, SubQueryCache

__all__ = ["TravelTimeService"]


class TravelTimeService:
    """Travel-time histogram retrieval for query batches.

    Parameters
    ----------
    index, network:
        The SNT-index and its road network (as for ``QueryEngine``).
    cache:
        ``"default"`` builds a bounded :class:`SubQueryCache`; ``None``
        disables cross-query caching (every trip uses the engine's
        per-trip cache); or pass a pre-configured :class:`SubQueryCache`
        to control the LRU bounds or share one cache between services
        *over the same index and network* — the cache binds permanently
        to the first (index, network) pair it serves and rejects any
        other.
    n_workers:
        Default thread-pool width for :meth:`trip_query_many`.  ``1``
        keeps execution on the calling thread.
    **engine_kwargs:
        Forwarded to :class:`repro.core.engine.QueryEngine` (partitioner,
        splitter, ladder, bucket_width_s, estimator, ...).
    """

    def __init__(
        self,
        index: SNTIndex,
        network: RoadNetwork,
        cache: Union[SubQueryCache, None, str] = "default",
        n_workers: int = 1,
        **engine_kwargs,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if cache == "default":
            cache = SubQueryCache()
        elif isinstance(cache, str):
            raise ValueError(
                f"cache must be a SubQueryCache, None, or 'default'; "
                f"got {cache!r}"
            )
        self.cache: Optional[SubQueryCache] = cache
        self.n_workers = n_workers
        self.engine = QueryEngine(index, network, cache=cache, **engine_kwargs)

    @property
    def index(self) -> SNTIndex:
        return self.engine.index

    @property
    def network(self) -> RoadNetwork:
        return self.engine.network

    @classmethod
    def from_saved(
        cls,
        index_path: Union[str, Path],
        network: RoadNetwork,
        **kwargs,
    ) -> "TravelTimeService":
        """Cold-start a service from a persisted index directory."""
        return cls(SNTIndex.load(index_path), network, **kwargs)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def trip_query(
        self,
        query: StrictPathQuery,
        exclude_ids: Sequence[int] = (),
    ) -> TripQueryResult:
        """Answer one trip through the shared cache."""
        return self.engine.trip_query(query, exclude_ids=exclude_ids)

    def trip_query_many(
        self,
        queries: Sequence[StrictPathQuery],
        exclude_ids: Optional[Sequence[Sequence[int]]] = None,
        n_workers: Optional[int] = None,
    ) -> List[TripQueryResult]:
        """Answer a batch of independent trips.

        Parameters
        ----------
        queries:
            The trip queries, answered independently.
        exclude_ids:
            Optional per-query excluded trajectory ids (parallel to
            ``queries``); used by evaluation workloads to keep each query
            trajectory out of its own answer.
        n_workers:
            Overrides the service-level pool width for this batch.

        Returns
        -------
        Results in submission order, regardless of worker count — the
        batch API is deterministic so callers can zip results back onto
        their requests.
        """
        if exclude_ids is None:
            exclude_ids = [()] * len(queries)
        if len(exclude_ids) != len(queries):
            raise ValueError(
                f"got {len(queries)} queries but {len(exclude_ids)} "
                "exclude_ids entries"
            )
        workers = self.n_workers if n_workers is None else n_workers
        if workers < 1:
            raise ValueError("n_workers must be positive")
        workers = min(workers, max(1, len(queries)))

        def answer(position: int) -> TripQueryResult:
            return self.engine.trip_query(
                queries[position], exclude_ids=exclude_ids[position]
            )

        if workers == 1:
            return [answer(i) for i in range(len(queries))]
        # trip_query touches no engine state and the shared cache is
        # locked, so one engine serves every worker; map() preserves
        # submission order.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(answer, range(len(queries))))

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #

    def cache_stats(self) -> Optional[CacheStats]:
        """Shared-cache statistics, or ``None`` when caching is off."""
        return self.cache.stats() if self.cache is not None else None

    def clear_cache(self) -> None:
        if self.cache is not None:
            self.cache.clear()
