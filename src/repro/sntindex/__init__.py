"""The adapted SNT-index: FM-index partitions + extended temporal forest."""

from .index import BuildStats, SNTIndex
from .partition import IndexPartition, build_partition
from .persistence import FORMAT_VERSION, load_index, read_meta, save_index
from .procedures import TravelTimeResult, count_matches, get_travel_times

__all__ = [
    "SNTIndex",
    "BuildStats",
    "IndexPartition",
    "build_partition",
    "FORMAT_VERSION",
    "save_index",
    "load_index",
    "read_meta",
    "TravelTimeResult",
    "get_travel_times",
    "count_matches",
]
