"""The adapted SNT-index: FM-index partitions + extended temporal forest."""

from .compaction import (
    CompactionPolicy,
    CompactionReport,
    compact_index_dir,
)
from .index import BuildStats, SNTIndex
from .migrate import MigrationReport, migrate_index_dir
from .partition import IndexPartition, build_partition
from .persistence import FORMAT_VERSION, load_index, read_meta, save_index
from .procedures import TravelTimeResult, count_matches, get_travel_times
from .reader import EdgeStats, IndexReader
from .sharded import (
    SHARDED_FORMAT_VERSION,
    ShardedSNTIndex,
    ShardRouter,
    ShardStats,
    load_any_index,
    load_sharded_index,
    read_any_meta,
    read_sharded_meta,
    save_sharded_index,
)
from .store import (
    LocalDirStore,
    ObjectStore,
    ShardStore,
    as_store,
    is_store_uri,
)

__all__ = [
    "SNTIndex",
    "BuildStats",
    "IndexPartition",
    "build_partition",
    "FORMAT_VERSION",
    "save_index",
    "load_index",
    "read_meta",
    "TravelTimeResult",
    "get_travel_times",
    "count_matches",
    "IndexReader",
    "EdgeStats",
    "ShardedSNTIndex",
    "ShardRouter",
    "ShardStats",
    "SHARDED_FORMAT_VERSION",
    "save_sharded_index",
    "load_sharded_index",
    "read_sharded_meta",
    "read_any_meta",
    "load_any_index",
    "ShardStore",
    "LocalDirStore",
    "ObjectStore",
    "as_store",
    "is_store_uri",
    "CompactionPolicy",
    "CompactionReport",
    "compact_index_dir",
    "MigrationReport",
    "migrate_index_dir",
]
