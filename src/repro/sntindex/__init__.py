"""The adapted SNT-index: FM-index partitions + extended temporal forest."""

from .index import BuildStats, SNTIndex
from .partition import IndexPartition, build_partition
from .procedures import TravelTimeResult, count_matches, get_travel_times

__all__ = [
    "SNTIndex",
    "BuildStats",
    "IndexPartition",
    "build_partition",
    "TravelTimeResult",
    "get_travel_times",
    "count_matches",
]
