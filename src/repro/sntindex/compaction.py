"""Compaction of sealed shards: merge runs of small adjacent shards.

Every ``append()``/``seal_staging()`` cycle adds one sealed shard, so a
long-lived appendable index accretes many small shards and every
unprunable dispatch fans out across all of them (periodic time-of-day
predicates cannot prune at all).  Compaction is the inverse of the
sharded build's split: a run of *adjacent* sealed shards is replaced by
one shard whose temporal partitions are the members' partitions
concatenated in order.

Why the merge is bit-identical
------------------------------
Shard boundaries coincide with temporal partition boundaries and every
shard was built with the *global* window bounds, so the members' FM
partitions are byte-for-byte the partitions the monolithic index would
hold — the merge reuses them untouched, only renumbering the local
partition ids.  The per-segment leaf columns are re-sorted stably by
``t`` after concatenating the members in shard order: members are
contiguous partition runs, and each member's columns are themselves the
stable t-sort of its partition-major rows, so the concatenation's
equal-``t`` rows sit in exactly the monolithic partition-major order
and the stable re-sort reproduces the monolithic row order bit for bit
(the same argument that makes the router's ``(t, shard)`` merge exact,
applied at rest instead of per query).  Time-of-day histograms and the
user container are unions of disjoint keys.  The existing
sharded-equivalence suite is the proof harness: compacted layouts must
answer every query bit-identically to the uncompacted and monolithic
indexes.

Cache lineage
-------------
A compaction that merges anything bumps the index epoch and mints a
fresh ``epoch_token`` even though answers do not change — the PR-4
shared cache tier keys on ``(epoch, lineage)``, so the bump guarantees
no process ever serves an entry recorded against the pre-compaction
shard layout.  A planned-but-empty compaction changes nothing and
keeps warm caches valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ShardError
from ..histogram.tod import TimeOfDayHistogramStore
from ..temporal.forest import TemporalForest
from ..temporal.records import TraversalColumns
from .index import BuildStats, SNTIndex

__all__ = [
    "CompactionPolicy",
    "CompactionReport",
    "plan_compaction",
    "merge_shard_indexes",
    "compact_index_dir",
]


@dataclass(frozen=True)
class CompactionPolicy:
    """Which sealed shards to merge, and how aggressively.

    small_traversals:
        A sealed shard is a merge candidate only if it holds at most
        this many traversals; ``None`` (default) makes every sealed
        shard a candidate — full compaction down to one shard per
        ``max_group``.
    min_run:
        Minimum adjacent candidates to bother merging (>= 2: merging
        one shard is a copy, not a compaction).
    max_group:
        Cap on shards merged into one (``None`` = unbounded).  Bounds
        the working set of a single merge on huge indexes.
    """

    small_traversals: Optional[int] = None
    min_run: int = 2
    max_group: Optional[int] = None

    def __post_init__(self) -> None:
        if self.small_traversals is not None and self.small_traversals < 0:
            raise ShardError(
                f"small_traversals must be >= 0, got {self.small_traversals}"
            )
        if self.min_run < 2:
            raise ShardError(f"min_run must be >= 2, got {self.min_run}")
        if self.max_group is not None and self.max_group < self.min_run:
            raise ShardError(
                f"max_group ({self.max_group}) must be >= min_run "
                f"({self.min_run})"
            )


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`ShardedSNTIndex.compact` call did."""

    #: Sealed shard count before / after (equal for a no-op).
    n_sealed_before: int
    n_sealed_after: int
    #: Pre-compaction labels of each merged run, in shard order.
    merged_groups: List[List[str]] = field(default_factory=list)
    #: The index epoch after the call (bumped iff anything merged).
    epoch: int = 0

    @property
    def did_compact(self) -> bool:
        return self.n_sealed_after < self.n_sealed_before


def plan_compaction(
    sizes: Sequence[int], policy: CompactionPolicy
) -> List[List[int]]:
    """Positions of sealed shards to merge, grouped.

    ``sizes`` are the sealed shards' traversal counts in shard order.
    Maximal runs of adjacent candidates are chunked at ``max_group``;
    chunks shorter than ``min_run`` (including a short trailing chunk)
    are left alone.  Groups are disjoint, each ascending and contiguous.
    """
    candidates = [
        policy.small_traversals is None or size <= policy.small_traversals
        for size in sizes
    ]
    groups: List[List[int]] = []
    run: List[int] = []

    def close(run: List[int]) -> None:
        cap = policy.max_group or len(run)
        for start in range(0, len(run), cap):
            chunk = run[start : start + cap]
            if len(chunk) >= policy.min_run:
                groups.append(chunk)

    for position, eligible in enumerate(candidates):
        if eligible:
            run.append(position)
        elif run:
            close(run)
            run = []
    if run:
        close(run)
    return groups


def _require_agreement(indexes: Sequence[SNTIndex]) -> None:
    scalars = ("alphabet_size", "kind", "partition_days", "t_min",
               "tod_bucket_s")
    first = indexes[0]
    for name in scalars:
        values = {getattr(index, name) for index in indexes}
        if len(values) > 1:
            raise ShardError(
                f"cannot merge shards that disagree on {name}: "
                f"{sorted(map(repr, values))}"
            )
    if first.partition_days is None:
        raise ShardError(
            "cannot merge FULL (unpartitioned) indexes — shard merging "
            "concatenates temporal partitions"
        )


def merge_shard_indexes(indexes: Sequence[SNTIndex]) -> SNTIndex:
    """Concatenate adjacent shards' aligned partitions into one shard.

    ``indexes`` must be adjacent shards of one sharded index, in shard
    (= temporal) order.  The result is exactly the shard a sharded
    build would have produced for the union of their time slices — FM
    partitions reused byte-for-byte with local ids renumbered, leaf
    columns re-sorted stably per segment, histogram and user containers
    unioned.  See the module docstring for the bit-identity argument.
    """
    if not indexes:
        raise ShardError("cannot merge zero shards")
    if len(indexes) == 1:
        return indexes[0]
    _require_agreement(indexes)
    first = indexes[0]

    # Partition id offsets: member k's local partition w becomes
    # w + offsets[k], reproducing the global enumeration's order.
    offsets = [0]
    for index in indexes:
        offsets.append(offsets[-1] + index.n_partitions)

    partitions = []
    for index, offset in zip(indexes, offsets):
        for partition in index.partitions:
            partitions.append(replace(partition, w=partition.w + offset))

    # Per-segment leaf columns: concatenate members in shard order with
    # partition ids shifted; TraversalColumns.from_arrays re-sorts
    # stably by t, reproducing the monolithic row order.
    per_edge: Dict[int, TraversalColumns] = {}
    edges = sorted(
        {int(edge) for index in indexes for edge in index.forest.edges()}
    )
    for edge in edges:
        chunks: Dict[str, List[np.ndarray]] = {
            name: [] for name in ("t", "isa", "d", "tt", "a", "seq", "w")
        }
        for index, offset in zip(indexes, offsets):
            phi = index.forest.get(edge)
            if phi is None:
                continue
            columns = phi.columns
            for name in ("t", "isa", "d", "tt", "a", "seq"):
                chunks[name].append(getattr(columns, name))
            chunks["w"].append(
                np.asarray(columns.w, dtype=np.int64) + offset
            )
        per_edge[edge] = TraversalColumns.from_arrays(
            t=np.concatenate(chunks["t"]),
            isa=np.concatenate(chunks["isa"]),
            d=np.concatenate(chunks["d"]),
            tt=np.concatenate(chunks["tt"]),
            a=np.concatenate(chunks["a"]),
            seq=np.concatenate(chunks["seq"]),
            w=np.concatenate(chunks["w"]),
        )
    forest = TemporalForest.build(per_edge, kind=first.kind)

    # Time-of-day histograms: (edge, partition) keys are disjoint
    # across members once partition ids are shifted.
    key_chunks: List[np.ndarray] = []
    count_chunks: List[np.ndarray] = []
    for index, offset in zip(indexes, offsets):
        keys, counts = index.tod_store.as_arrays()
        if keys.size:
            shifted = np.array(keys, dtype=np.int64, copy=True)
            shifted[:, 1] += offset
            key_chunks.append(shifted)
            count_chunks.append(np.asarray(counts))
    if key_chunks:
        tod_store = TimeOfDayHistogramStore.from_arrays(
            first.tod_bucket_s,
            np.concatenate(key_chunks, axis=0),
            np.concatenate(count_chunks, axis=0),
        )
    else:
        tod_store = TimeOfDayHistogramStore(
            bucket_width_s=first.tod_bucket_s
        )

    # User container U: dense over the union id space, -1 = gap.  Ids
    # are disjoint across shards (append() enforces it), so overlaying
    # non-gap entries is a union.
    user_space = max(int(index.users.size) for index in indexes)
    users = np.full(user_space, -1, dtype=np.int64)
    for index in indexes:
        shard_users = np.asarray(index.users)
        mask = shard_users >= 0
        users[: shard_users.size][mask] = shard_users[mask]

    stats = BuildStats(
        setup_seconds=sum(
            index.build_stats.setup_seconds for index in indexes
        ),
        n_partitions=offsets[-1],
        n_trajectories=sum(
            index.build_stats.n_trajectories for index in indexes
        ),
        n_traversals=sum(
            index.build_stats.n_traversals for index in indexes
        ),
    )
    bounds = [index.data_time_bounds() for index in indexes]
    merged = SNTIndex(
        partitions=partitions,
        forest=forest,
        users=users,
        tod_store=tod_store,
        t_min=first.t_min,
        t_max=max(index.t_max for index in indexes),
        alphabet_size=first.alphabet_size,
        kind=first.kind,
        partition_days=first.partition_days,
        build_stats=stats,
        tod_bucket_s=first.tod_bucket_s,
        data_bounds=(
            min(lo for lo, _ in bounds),
            max(hi for _, hi in bounds),
        ),
    )
    return merged


def compact_index_dir(
    source: Union[str, Path, Any],
    policy: Optional[CompactionPolicy] = None,
) -> CompactionReport:
    """Compact a saved sharded index where it lives.

    ``source`` is a directory, store URI, or store holding a sharded
    index.  Loads it, merges per ``policy``, and — when anything merged
    — atomically re-installs the tree through the store with the
    manifest's ``extra`` provenance (the CLI's world digest) preserved
    and the epoch/lineage bump persisted.  A no-op plan writes nothing.
    """
    from .sharded import (
        load_sharded_index,
        read_any_meta,
        save_sharded_index,
    )
    from .store import as_store

    store = as_store(source)
    layout, manifest = read_any_meta(store)
    if layout != "sharded":
        raise ShardError(
            f"{store.uri} holds a monolithic index; compaction applies "
            "to sharded indexes (a monolithic index is already one "
            "shard)"
        )
    index = load_sharded_index(store)
    report = index.compact(policy)
    if report.did_compact:
        save_sharded_index(index, store, extra=manifest.get("extra") or {})
    return report
