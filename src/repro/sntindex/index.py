"""The adapted SNT-index (paper Section 4).

Composition of

* one FM-index per temporal partition (spatial part, Section 4.1.1/4.3.2),
* the shared temporal forest with extended leaves ``(isa, d, TT, a, seq,
  w)`` (Sections 4.1.2-4.1.3), built over CSS-trees (Section 4.3.1) or
  B+-trees,
* the associative container ``U: d -> u`` for user filtering, and
* per-(segment, partition) time-of-day histograms for the accurate
  cardinality-estimator modes (Section 4.4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import SECONDS_PER_DAY
from ..errors import IndexError_, MissingUserError, UnknownTrajectoryError
from ..histogram.tod import TimeOfDayHistogramStore
from ..temporal.forest import EdgeTemporalIndex, TemporalForest
from ..temporal.records import TraversalColumns
from ..trajectories.model import TrajectorySet
from .partition import IndexPartition, build_partition
from .persistence import load_index, save_index
from .store import ShardStore

__all__ = ["SNTIndex", "BuildStats", "assign_time_windows", "window_bounds"]


def assign_time_windows(
    trajectories, t_min: int, window: int
) -> Dict[int, List]:
    """Bucket trajectories into temporal partitions by start time.

    The single definition of the partition bucket id,
    ``(start_time - t_min) // window`` — the sharded index's
    bit-identical guarantee requires every builder (monolithic build,
    sharded build, staging append) to assign buckets identically, so
    none of them is allowed its own copy of this line.
    """
    groups: Dict[int, List] = {}
    for trajectory in trajectories:
        groups.setdefault(
            (trajectory.start_time - t_min) // window, []
        ).append(trajectory)
    return groups


def window_bounds(bucket: int, t_min: int, window: int) -> Tuple[int, int]:
    """``[lo, hi)`` time range of temporal-partition ``bucket``."""
    lo = t_min + bucket * window
    return lo, lo + window


@dataclass
class BuildStats:
    """Timings and sizes recorded while building the index (Fig. 10c)."""

    setup_seconds: float
    n_partitions: int
    n_trajectories: int
    n_traversals: int


class SNTIndex:
    """In-memory NCT index answering strict path queries."""

    #: Mutation counter of the :class:`IndexReader` protocol.  The
    #: monolithic index is immutable after build, so it never moves;
    #: shared caches read it to notice appendable readers changing.
    epoch: int = 0

    def __init__(
        self,
        partitions: Sequence[IndexPartition],
        forest: TemporalForest,
        users: np.ndarray,
        tod_store,
        t_min: int,
        t_max: int,
        alphabet_size: int,
        kind: str,
        partition_days: Optional[int],
        build_stats: BuildStats,
        tod_bucket_s: Optional[int] = None,
        data_bounds: Optional[Tuple[int, int]] = None,
    ):
        self.partitions = partitions
        self.forest = forest
        self.users = users
        if isinstance(tod_store, TimeOfDayHistogramStore):
            self._tod_store: Optional[TimeOfDayHistogramStore] = tod_store
            self._tod_loader = None
            self.tod_bucket_s = tod_store.bucket_width_s
        else:
            # A zero-arg loader (persistence hands one over so a loaded
            # index materialises the histogram dict only when the
            # estimator first needs it); the bucket width must then be
            # known up front — the sharded views read it without
            # touching the store.
            if not callable(tod_store) or tod_bucket_s is None:
                raise TypeError(
                    "tod_store must be a TimeOfDayHistogramStore, or a "
                    "loader callable accompanied by tod_bucket_s"
                )
            self._tod_store = None
            self._tod_loader = tod_store
            self.tod_bucket_s = int(tod_bucket_s)
        self.t_min = t_min
        self.t_max = t_max
        self.alphabet_size = alphabet_size
        self.kind = kind
        self.partition_days = partition_days
        self.build_stats = build_stats
        #: Traversal-timestamp bounds cached by the persistence layer
        #: (``None`` for a freshly built index — computed on demand).
        self._data_bounds = data_bounds

    @property
    def tod_store(self) -> TimeOfDayHistogramStore:
        """The time-of-day histogram store (materialised on first use)."""
        if self._tod_store is None:
            assert self._tod_loader is not None
            self._tod_store = self._tod_loader()
        return self._tod_store

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        trajectories: TrajectorySet,
        alphabet_size: int,
        partition_days: Optional[int] = None,
        kind: str = "css",
        tod_bucket_s: int = 600,
    ) -> "SNTIndex":
        """Build the index from a trajectory set.

        Parameters
        ----------
        trajectories:
            The map-matched NCT set ``T``.
        alphabet_size:
            ``max edge id + 1`` (use ``network.alphabet_size``).
        partition_days:
            Temporal partition size in days, or ``None`` for a single
            partition (the paper's FULL configuration).
        kind:
            Temporal tree type: ``"css"`` (default) or ``"btree"``.
        tod_bucket_s:
            Bucket width of the estimator's time-of-day histograms.
        """
        if len(trajectories) == 0:
            raise IndexError_("cannot build an index from zero trajectories")
        t_min, t_max = trajectories.time_span()

        # Assign trajectories to partitions by start time.
        if partition_days is None:
            grouped = [(t_min, t_max, list(trajectories))]
        else:
            if partition_days < 1:
                raise IndexError_("partition_days must be >= 1")
            window = partition_days * SECONDS_PER_DAY
            groups = assign_time_windows(trajectories, t_min, window)
            grouped = [
                (*window_bounds(bucket, t_min, window), groups[bucket])
                for bucket in sorted(groups)
            ]
        return cls.build_from_groups(
            grouped,
            alphabet_size,
            t_min=t_min,
            t_max=t_max,
            kind=kind,
            partition_days=partition_days,
            tod_bucket_s=tod_bucket_s,
        )

    @classmethod
    def build_from_groups(
        cls,
        grouped: Sequence[Tuple[int, int, List]],
        alphabet_size: int,
        t_min: int,
        t_max: int,
        kind: str = "css",
        partition_days: Optional[int] = None,
        tod_bucket_s: int = 600,
    ) -> "SNTIndex":
        """Build an index from pre-assigned temporal partitions.

        ``grouped`` holds one ``(t_lo, t_hi, members)`` triple per
        partition, in temporal order; partition ids ``w`` enumerate the
        triples.  :meth:`build` derives the triples from
        ``partition_days``; the sharded index calls this directly so a
        shard's partitions carry the *global* window boundaries (its own
        ``t_min`` would shift the windows and change the partition
        contents, breaking bit-identical answers).
        """
        if not grouped or not any(members for _, _, members in grouped):
            raise IndexError_("cannot build an index from zero trajectories")
        if any(not members for _, _, members in grouped):
            raise IndexError_("every partition group needs trajectories")
        started = time.perf_counter()

        partitions: List[IndexPartition] = []
        row_chunks: List[dict] = []
        w_chunks: List[np.ndarray] = []
        for w, (lo, hi, members) in enumerate(grouped):
            partition, rows = build_partition(
                w, members, alphabet_size, lo, hi
            )
            partitions.append(partition)
            row_chunks.append(rows)
            w_chunks.append(np.full(rows["edge"].size, w, dtype=np.int32))

        merged = {
            name: np.concatenate([chunk[name] for chunk in row_chunks])
            for name in ("edge", "t", "isa", "d", "tt", "a", "seq")
        }
        merged_w = np.concatenate(w_chunks)

        # Group rows by edge and build the forest.
        order = np.argsort(merged["edge"], kind="stable")
        edges_sorted = merged["edge"][order]
        unique_edges, first_positions = np.unique(
            edges_sorted, return_index=True
        )
        boundaries = np.append(first_positions, edges_sorted.size)
        per_edge: Dict[int, TraversalColumns] = {}
        tod_store = TimeOfDayHistogramStore(bucket_width_s=tod_bucket_s)
        for i, edge_id in enumerate(unique_edges):
            rows = order[boundaries[i] : boundaries[i + 1]]
            columns = TraversalColumns.from_arrays(
                t=merged["t"][rows],
                isa=merged["isa"][rows],
                d=merged["d"][rows],
                tt=merged["tt"][rows],
                a=merged["a"][rows],
                seq=merged["seq"][rows],
                w=merged_w[rows],
            )
            per_edge[int(edge_id)] = columns
            for w in np.unique(columns.w):
                tod_store.add_traversals(
                    int(edge_id),
                    columns.t[columns.w == w],
                    partition=int(w),
                )
        forest = TemporalForest.build(per_edge, kind=kind)

        # Associative container U: d -> u (dense trajectory ids).
        all_members = [tr for _, _, members in grouped for tr in members]
        max_id = max(tr.traj_id for tr in all_members)
        users = np.full(max_id + 1, -1, dtype=np.int64)
        for trajectory in all_members:
            users[trajectory.traj_id] = trajectory.user_id

        stats = BuildStats(
            setup_seconds=time.perf_counter() - started,
            n_partitions=len(partitions),
            n_trajectories=len(all_members),
            n_traversals=int(merged["edge"].size),
        )
        return cls(
            partitions=partitions,
            forest=forest,
            users=users,
            tod_store=tod_store,
            t_min=t_min,
            t_max=t_max,
            alphabet_size=alphabet_size,
            kind=kind,
            partition_days=partition_days,
            build_stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Spatial lookups
    # ------------------------------------------------------------------ #

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def isa_ranges(self, path: Sequence[int]) -> List[Tuple[int, int, int]]:
        """Per-partition ISA ranges ``(w, st, ed)``; empty ranges omitted.

        This is the temporally partitioned ``getISARange`` (Section 4.3.2).
        """
        ranges: List[Tuple[int, int, int]] = []
        for partition in self.partitions:
            st, ed = partition.isa_range(path)
            if st < ed:
                ranges.append((partition.w, st, ed))
        return ranges

    def isa_ranges_many(
        self, paths: Sequence[Sequence[int]]
    ) -> List[List[Tuple[int, int, int]]]:
        """Batched :meth:`isa_ranges` over many paths.

        Bit-identical to mapping :meth:`isa_ranges` over ``paths`` (the
        per-partition batched backward search replicates the scalar
        one), but each partition's FM-index walks all paths at once —
        see :meth:`repro.fmindex.fm.FMIndex.isa_ranges`.
        """
        results: List[List[Tuple[int, int, int]]] = [[] for _ in paths]
        for partition in self.partitions:
            for k, (st, ed) in enumerate(partition.fm.isa_ranges(paths)):
                if st < ed:
                    results[k].append((partition.w, st, ed))
        return results

    def path_traversal_count(self, path: Sequence[int]) -> int:
        """``c_P = ed - st`` summed over partitions (estimator input)."""
        return sum(ed - st for _, st, ed in self.isa_ranges(path))

    def contains_path(self, path: Sequence[int]) -> bool:
        """Established from the FM-indexes alone (Section 4.1)."""
        return bool(self.isa_ranges(path))

    def edge_index(self, edge: int) -> Optional[EdgeTemporalIndex]:
        return self.forest.get(edge)

    def user_of(self, traj_id: int) -> int:
        """User of trajectory ``d`` from the associative container ``U``.

        Raises :class:`UnknownTrajectoryError` for ids outside the dense
        id space and :class:`MissingUserError` for in-range gaps (``U``
        spans ``[0, max id]`` but not every id was assigned); both derive
        from :class:`IndexError_`.
        """
        if not 0 <= traj_id < self.users.size:
            raise UnknownTrajectoryError(traj_id)
        user = int(self.users[traj_id])
        if user < 0:
            raise MissingUserError(traj_id)
        return user

    def has_trajectory(self, traj_id: int) -> bool:
        """Whether ``traj_id`` names an indexed trajectory (no gap)."""
        return 0 <= traj_id < self.users.size and self.users[traj_id] >= 0

    # ------------------------------------------------------------------ #
    # Retrieval (IndexReader protocol; delegates to the procedures)
    # ------------------------------------------------------------------ #

    def get_travel_times(
        self,
        query,
        fallback_tt=None,
        exclude_ids: Sequence[int] = (),
        isa_ranges=None,
    ):
        """Procedure 5 over this index (see :mod:`.procedures`)."""
        from .procedures import monolithic_travel_times

        return monolithic_travel_times(
            self,
            query,
            fallback_tt=fallback_tt,
            exclude_ids=exclude_ids,
            isa_ranges=isa_ranges,
        )

    def get_travel_times_many(
        self,
        items: Sequence[Tuple],
        fallback_tt=None,
    ):
        """Procedure 5 for a deduplicated demand set (``(query,
        exclude_ids, isa_ranges)`` triples), with queries sharing a
        first or last edge grouped so that edge's interval selection and
        probe join run once for the group — bit-identical per item to
        :meth:`get_travel_times` (see
        :func:`repro.sntindex.procedures.monolithic_travel_times_many`).
        """
        from .procedures import monolithic_travel_times_many

        return monolithic_travel_times_many(
            self, items, fallback_tt=fallback_tt
        )

    def count_matches(
        self,
        path: Sequence[int],
        interval,
        user: Optional[int] = None,
        exclude_ids: Sequence[int] = (),
        limit: Optional[int] = None,
    ) -> int:
        """Exact strict-path match count (see :mod:`.procedures`)."""
        from .procedures import monolithic_count_matches

        return monolithic_count_matches(
            self,
            path,
            interval,
            user=user,
            exclude_ids=exclude_ids,
            limit=limit,
        )

    def data_time_bounds(self) -> Tuple[int, int]:
        """``(min, max)`` traversal entry timestamp across all segments.

        Unlike ``t_min``/``t_max`` (the corpus span recorded at build
        time, which a sharded wrapper sets globally), these bounds
        describe the rows actually indexed here — the shard router uses
        them to prune shards that cannot overlap a fixed interval.
        """
        if self._data_bounds is not None:
            return self._data_bounds
        lo: Optional[int] = None
        hi: Optional[int] = None
        for edge in self.forest.edges():
            phi = self.forest.get(edge)
            edge_lo, edge_hi = phi.min_t(), phi.max_t()
            if edge_lo is None:
                continue
            lo = edge_lo if lo is None else min(lo, edge_lo)
            hi = edge_hi if hi is None else max(hi, edge_hi)
        if lo is None:  # cannot happen for a built index (non-empty)
            return self.t_min, self.t_max
        return int(lo), int(hi)

    def build_tod_store(self, bucket_width_s: int) -> TimeOfDayHistogramStore:
        """Build a fresh time-of-day histogram store at another grain.

        Used by the Figure 10b experiment to cost 1/5/10-minute stores
        without rebuilding the FM-indexes and forest.
        """
        store = TimeOfDayHistogramStore(bucket_width_s=bucket_width_s)
        for edge in self.forest.edges():
            columns = self.forest.get(edge).columns
            for w in np.unique(columns.w):
                store.add_traversals(
                    int(edge), columns.t[columns.w == w], partition=int(w)
                )
        return store

    # ------------------------------------------------------------------ #
    # Persistence (service cold start without re-running ``build()``)
    # ------------------------------------------------------------------ #

    def save(
        self,
        path: Union[str, Path, "ShardStore"],
        extra: Optional[dict] = None,
    ) -> Path:
        """Serialise the index to ``path`` — a directory, a store URI
        (``object://...``), or a :class:`~repro.sntindex.store.ShardStore`.

        ``extra`` is optional JSON-serialisable provenance stored in the
        meta file (ignored by :meth:`load`).  See
        :mod:`repro.sntindex.persistence` for the on-disk layout and the
        format version tag.
        """
        return save_index(self, path, extra=extra)

    @classmethod
    def load(
        cls,
        path: Union[str, Path, "ShardStore"],
        expected_alphabet_size: Optional[int] = None,
        expected_kind: Optional[str] = None,
    ) -> "SNTIndex":
        """Load an index saved with :meth:`save`; no rebuild happens.

        ``expected_alphabet_size`` / ``expected_kind`` let callers that
        know the target world (the CLI knows the network) reject a
        mismatched manifest *before* the FM partitions are unpickled —
        both a faster failure and a safer one, given the warning below.

        .. warning::
            The partition payload is unpickled — only load directories
            you wrote yourself; a malicious index directory can execute
            arbitrary code.
        """
        return load_index(
            path,
            expected_alphabet_size=expected_alphabet_size,
            expected_kind=expected_kind,
        )

    # ------------------------------------------------------------------ #
    # Size accounting (real structures; Fig. 10 uses experiments.memory)
    # ------------------------------------------------------------------ #

    def component_sizes(self) -> Dict[str, int]:
        """Succinct/modelled sizes per component, in bytes."""
        wavelet = sum(p.fm.bwt.size_in_bytes() for p in self.partitions)
        counters = 8 * (self.alphabet_size + 1) * len(self.partitions)
        with_w = self.partition_days is not None
        return {
            "WT": wavelet,
            "C": counters,
            "user": 8 * int(self.users.size),
            "Forest": self.forest.size_in_bytes(with_partition_id=with_w),
            "tod_histograms": self.tod_store.size_in_bytes(),
        }
