"""In-place upgrade of pre-v2 saved index directories (``repro migrate``).

Format v1 (PRs 1-2) stored the bulk payload as one ``arrays.npz`` plus a
``partitions.pkl``; v2 split it into standalone mmap-able ``payload/*.npy``
files.  The v2 loaders refuse v1 directories outright — this module is
the upgrade path they point at: read the v1 payload with a faithful copy
of the v1 reader, then re-install the directory through the store API in
the current format.  The index content is unchanged (the v2 writer
serialises exactly the arrays the v1 reader reconstructed), so a
migrated index answers every query bit-identically to a fresh v2 build
of the same data.

Trust model
-----------
A v1 directory holds pickled FM partitions (``partitions.pkl``) and — in
the sharded layout — a pickled staged tail.  **Unpickling executes
whatever the pickle says.**  Migration therefore carries exactly the
trust requirements the v1 loader had: only migrate directories you (or
your build pipeline) wrote.  A foreign index directory is foreign code;
``repro migrate`` on one hands it an interpreter.  The migrated output
keeps the same property (v2 partitions are pickled too) — migration is
a format upgrade, not a sanitiser.

Both layouts are upgraded atomically via :meth:`ShardStore.install`
(sibling-tempdir swap locally, marker-last ordering on an object store),
so an interrupted migration leaves the original v1 directory untouched.
"""

from __future__ import annotations

import json
import pickle
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

import numpy as np

from ..errors import PersistenceError
from ..histogram.tod import TimeOfDayHistogramStore
from ..temporal.forest import TemporalForest
from ..temporal.records import TraversalColumns
from .index import BuildStats, SNTIndex
from .persistence import (
    FORMAT_NAME,
    FORMAT_VERSION,
    META_FILE,
    StoreLike,
    write_index_payload,
)
from .sharded import (
    MANIFEST_FILE,
    SHARDED_FORMAT_NAME,
    SHARDED_FORMAT_VERSION,
    STAGED_TRAJECTORIES_FILE,
)
from .store import ShardStore, as_store

__all__ = [
    "MigrationReport",
    "migrate_index_dir",
]

#: v1 payload files (replaced by ``payload/*.npy`` in v2).
V1_ARRAYS_FILE = "arrays.npz"
V1_PARTITIONS_FILE = "partitions.pkl"

_V1_COLUMNS = ("t", "isa", "d", "tt", "a", "seq", "w")


@dataclass(frozen=True)
class MigrationReport:
    """What one :func:`migrate_index_dir` call found and did."""

    #: ``"monolithic"`` or ``"sharded"``.
    layout: str
    #: Format version found on disk before the call.
    from_version: int
    #: Format version on disk after the call (current on success).
    to_version: int
    #: True iff the directory was rewritten (False: already current).
    changed: bool
    #: Shard directories rewritten (monolithic counts as one; the
    #: sharded staging shard is included when present).
    shard_dirs_migrated: List[str] = field(default_factory=list)


def _read_raw_meta(directory: Path, file_name: str, what: str) -> dict:
    """Parse a marker JSON without any format-version gate.

    ``read_meta``/``read_sharded_meta`` reject old versions — exactly
    the directories this module exists to handle — so migration parses
    the marker itself and gates only on the format *name*.
    """
    marker = directory / file_name
    try:
        meta = json.loads(marker.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(f"corrupt {file_name}: {error}") from error
    if not isinstance(meta, dict):
        raise PersistenceError(
            f"{marker} does not hold a JSON object"
        )
    return meta


def _meta_version(meta: dict, source: str) -> int:
    version = meta.get("format_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise PersistenceError(
            f"{source} declares format_version {version!r}; expected an "
            "integer"
        )
    return version


def _load_v1_index(source: Path, meta: dict) -> SNTIndex:
    """Load a v1 monolithic index directory (faithful v1 reader).

    .. warning:: Unpickles ``partitions.pkl`` — see the module docstring
       for the trust model.
    """
    try:
        with np.load(source / V1_ARRAYS_FILE) as payload:
            arrays = {name: payload[name] for name in payload.files}
        with open(source / V1_PARTITIONS_FILE, "rb") as handle:
            partitions = pickle.load(handle)
    except (
        OSError,
        EOFError,
        zipfile.BadZipFile,
        pickle.PickleError,
        ValueError,
        KeyError,
    ) as error:
        raise PersistenceError(
            f"failed to read v1 index payload from {source}: {error}"
        ) from error

    required = ["users", "edge_ids", "edge_offsets", "tod_keys",
                "tod_counts"]
    required += [f"col_{name}" for name in _V1_COLUMNS]
    missing = [name for name in required if name not in arrays]
    if missing:
        raise PersistenceError(
            f"{V1_ARRAYS_FILE} is missing arrays {missing}"
        )

    edges = arrays["edge_ids"]
    offsets = arrays["edge_offsets"]
    if (
        offsets.size != edges.size + 1
        or (offsets.size and offsets[0] != 0)
        or np.any(np.diff(offsets) < 0)
        or (offsets.size and offsets[-1] != arrays["col_t"].size)
    ):
        raise PersistenceError(
            f"corrupt {V1_ARRAYS_FILE}: edge_offsets are inconsistent "
            "with the column arrays"
        )
    try:
        per_edge: Dict[int, TraversalColumns] = {}
        for i, edge in enumerate(edges):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            per_edge[int(edge)] = TraversalColumns.from_arrays(
                t=arrays["col_t"][lo:hi],
                isa=arrays["col_isa"][lo:hi],
                d=arrays["col_d"][lo:hi],
                tt=arrays["col_tt"][lo:hi],
                a=arrays["col_a"][lo:hi],
                seq=arrays["col_seq"][lo:hi],
                w=arrays["col_w"][lo:hi],
            )
        forest = TemporalForest.build(per_edge, kind=meta["kind"])
        tod_store = TimeOfDayHistogramStore.from_arrays(
            meta["tod_bucket_s"], arrays["tod_keys"], arrays["tod_counts"]
        )
    except (ValueError, IndexError, KeyError, TypeError) as error:
        raise PersistenceError(
            f"failed to reconstruct v1 index from {source}: {error}"
        ) from error

    stats_meta = meta.get("build_stats") or {}
    if not isinstance(stats_meta, dict):
        raise PersistenceError(f"{source} has malformed build_stats")
    return SNTIndex(
        partitions=partitions,
        forest=forest,
        users=arrays["users"],
        tod_store=tod_store,
        t_min=int(meta["t_min"]),
        t_max=int(meta["t_max"]),
        alphabet_size=int(meta["alphabet_size"]),
        kind=meta["kind"],
        partition_days=meta["partition_days"],
        build_stats=BuildStats(
            setup_seconds=float(stats_meta.get("setup_seconds", 0.0)),
            n_partitions=int(stats_meta.get("n_partitions", 0)),
            n_trajectories=int(stats_meta.get("n_trajectories", 0)),
            n_traversals=int(stats_meta.get("n_traversals", 0)),
        ),
    )


def _check_v1(meta: dict, source: str, expected_format: str) -> int:
    if meta.get("format") != expected_format:
        raise PersistenceError(
            f"{source} holds format {meta.get('format')!r}, expected "
            f"{expected_format!r}"
        )
    version = _meta_version(meta, source)
    current = (
        FORMAT_VERSION
        if expected_format == FORMAT_NAME
        else SHARDED_FORMAT_VERSION
    )
    if version > current:
        raise PersistenceError(
            f"{source} has format version {version}, newer than this "
            f"build ({current}) — upgrade the software, not the index"
        )
    if version < 1:
        raise PersistenceError(
            f"{source} declares impossible format version {version}"
        )
    return version


def migrate_index_dir(source: StoreLike) -> MigrationReport:
    """Upgrade a saved index directory to the current format, in place.

    ``source`` is a directory, store URI, or store holding either a
    monolithic (``meta.json``) or sharded (``manifest.json``) saved
    index.  A directory already at the current version is left
    untouched (``changed=False``); a v1 directory is rewritten through
    the store's atomic install.  Raises
    :class:`~repro.errors.PersistenceError` for unknown layouts and
    versions newer than this build.

    .. warning:: Migrating a v1 directory unpickles its payload — only
       run this on directories you wrote (see module docstring).
    """
    store = as_store(source)
    local = store.localize("")

    if (local / MANIFEST_FILE).is_file():
        manifest = _read_raw_meta(local, MANIFEST_FILE, "sharded index")
        version = _check_v1(manifest, store.uri, SHARDED_FORMAT_NAME)
        if version == SHARDED_FORMAT_VERSION:
            return MigrationReport(
                layout="sharded",
                from_version=version,
                to_version=version,
                changed=False,
            )
        return _migrate_sharded_v1(store, local, manifest, version)

    if (local / META_FILE).is_file():
        meta = _read_raw_meta(local, META_FILE, "index")
        version = _check_v1(meta, store.uri, FORMAT_NAME)
        if version == FORMAT_VERSION:
            return MigrationReport(
                layout="monolithic",
                from_version=version,
                to_version=version,
                changed=False,
            )
        index = _load_v1_index(local, meta)
        store.install(
            "",
            marker_file=META_FILE,
            writer=lambda target: write_index_payload(
                index, target, extra=meta.get("extra") or {}
            ),
            what="saved SNT-index",
        )
        return MigrationReport(
            layout="monolithic",
            from_version=version,
            to_version=FORMAT_VERSION,
            changed=True,
            shard_dirs_migrated=["."],
        )

    raise PersistenceError(
        f"{store.uri} is not a saved SNT-index (neither {META_FILE} nor "
        f"{MANIFEST_FILE} present)"
    )


def _migrate_sharded_v1(
    store: ShardStore,
    local: Path,
    manifest: dict,
    from_version: int,
) -> MigrationReport:
    """Rewrite a v1 sharded tree: each shard dir v1→v2, manifest bumped.

    The manifest's shard table, epoch/epoch_token, scalars and ``extra``
    are preserved verbatim — only ``format_version`` changes, because
    the v1 and v2 sharded manifests differ solely in the shard payload
    format they point at.  The staged-tail pickle (when present) is
    copied byte-for-byte.
    """
    shard_entries = manifest.get("shards")
    if not isinstance(shard_entries, list):
        raise PersistenceError(
            f"{MANIFEST_FILE} in {store.uri} has no shard table"
        )
    described_dirs: List[str] = []
    for described in shard_entries:
        if not isinstance(described, dict) or "dir" not in described:
            raise PersistenceError(
                f"{MANIFEST_FILE} in {store.uri} has a malformed shard "
                "entry"
            )
        described_dirs.append(str(described["dir"]))
    staging_entry = manifest.get("staging")
    if staging_entry is not None:
        if not isinstance(staging_entry, dict) or "dir" not in staging_entry:
            raise PersistenceError(
                f"{MANIFEST_FILE} in {store.uri} has a malformed staging "
                "entry"
            )

    # Load every member up front (v1 reader), so a corrupt shard aborts
    # the migration before any install is attempted.
    members: List[tuple] = []
    for directory in described_dirs:
        shard_dir = local / directory
        shard_meta = _read_raw_meta(shard_dir, META_FILE, "index")
        _check_v1(shard_meta, str(shard_dir), FORMAT_NAME)
        members.append(
            (directory, _load_v1_index(shard_dir, shard_meta), shard_meta)
        )
    staging_member = None
    if staging_entry is not None:
        staging_dir = local / str(staging_entry["dir"])
        staging_meta = _read_raw_meta(staging_dir, META_FILE, "index")
        _check_v1(staging_meta, str(staging_dir), FORMAT_NAME)
        staging_member = (
            str(staging_entry["dir"]),
            _load_v1_index(staging_dir, staging_meta),
            staging_meta,
        )
    staged_blob = None
    staged_path = local / STAGED_TRAJECTORIES_FILE
    if staged_path.is_file():
        staged_blob = staged_path.read_bytes()

    migrated_dirs = [directory for directory, _, _ in members]
    if staging_member is not None:
        migrated_dirs.append(staging_member[0])

    def writer(target: Path) -> None:
        for directory, index, shard_meta in members:
            write_index_payload(
                index, target / directory, extra=shard_meta.get("extra") or {}
            )
        if staging_member is not None:
            directory, index, shard_meta = staging_member
            write_index_payload(
                index, target / directory, extra=shard_meta.get("extra") or {}
            )
        if staged_blob is not None:
            (target / STAGED_TRAJECTORIES_FILE).write_bytes(staged_blob)
        upgraded = dict(manifest)
        upgraded["format_version"] = SHARDED_FORMAT_VERSION
        with open(target / MANIFEST_FILE, "w") as handle:
            json.dump(upgraded, handle, indent=2)

    store.install(
        "",
        marker_file=MANIFEST_FILE,
        writer=writer,
        what="saved sharded SNT-index",
    )
    return MigrationReport(
        layout="sharded",
        from_version=from_version,
        to_version=SHARDED_FORMAT_VERSION,
        changed=True,
        shard_dirs_migrated=migrated_dirs,
    )
