"""One temporal partition of the SNT-index (paper Section 4.3.2).

Temporal partitioning splits the trajectory set by trajectory start time
into ``T_1 ... T_W``; each partition owns its own trajectory string, hence
its own FM-index (wavelet tree + segment counter ``C``), while all
partitions share the temporal forest, whose leaves carry the partition id
``w``.  Backward search must therefore be repeated per partition and can
return a different ISA range for the same path in every partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..fmindex import FMIndex
from ..trajectories.model import Trajectory

__all__ = ["IndexPartition", "build_partition"]


@dataclass
class IndexPartition:
    """FM-index plus bookkeeping for one temporal partition."""

    w: int
    fm: FMIndex
    n_trajectories: int
    n_traversals: int
    #: Start-time range [t_lo, t_hi) of trajectories assigned to this
    #: partition (informational; assignment happens at build time).
    t_lo: int
    t_hi: int

    def isa_range(self, path: Sequence[int]) -> Tuple[int, int]:
        return self.fm.isa_range(path)


def build_partition(
    w: int,
    trajectories: Sequence[Trajectory],
    alphabet_size: int,
    t_lo: int,
    t_hi: int,
) -> Tuple[IndexPartition, dict]:
    """Build the FM-index of one partition and its traversal rows.

    Returns the partition plus a dict of flat numpy row arrays
    (``edge, t, isa, d, tt, a, seq``) for all traversals, which the index
    builder merges into the shared temporal forest.
    """
    texts: List[np.ndarray] = []
    total = 0
    lengths = np.empty(len(trajectories), dtype=np.int64)
    for i, trajectory in enumerate(trajectories):
        path = np.fromiter(
            (p.edge for p in trajectory.points),
            dtype=np.int64,
            count=len(trajectory.points),
        )
        texts.append(path)
        texts.append(np.zeros(1, dtype=np.int64))
        lengths[i] = path.size
        total += path.size

    text = (
        np.concatenate(texts) if texts else np.zeros(0, dtype=np.int64)
    )
    fm = FMIndex(text, alphabet_size=alphabet_size)

    # Traversal positions in the trajectory string: trajectory i occupies
    # [start_i, start_i + l_i) with start offsets skipping terminators.
    starts = np.zeros(len(trajectories), dtype=np.int64)
    if len(trajectories) > 1:
        np.cumsum(lengths[:-1] + 1, out=starts[1:])

    edge = np.empty(total, dtype=np.int64)
    t = np.empty(total, dtype=np.int64)
    isa = np.empty(total, dtype=np.int64)
    d = np.empty(total, dtype=np.int64)
    tt = np.empty(total, dtype=np.float64)
    a = np.empty(total, dtype=np.float64)
    seq = np.empty(total, dtype=np.int32)

    cursor = 0
    for i, trajectory in enumerate(trajectories):
        l = int(lengths[i])
        sl = slice(cursor, cursor + l)
        edge[sl] = texts[2 * i]
        t[sl] = np.fromiter(
            (p.t for p in trajectory.points), dtype=np.int64, count=l
        )
        tts = np.fromiter(
            (p.tt for p in trajectory.points), dtype=np.float64, count=l
        )
        tt[sl] = tts
        a[sl] = np.cumsum(tts)
        seq[sl] = np.arange(l, dtype=np.int32)
        d[sl] = trajectory.traj_id
        isa[sl] = fm.isa[starts[i] : starts[i] + l]
        cursor += l

    partition = IndexPartition(
        w=w,
        fm=fm,
        n_trajectories=len(trajectories),
        n_traversals=total,
        t_lo=t_lo,
        t_hi=t_hi,
    )
    rows = {
        "edge": edge,
        "t": t,
        "isa": isa,
        "d": d,
        "tt": tt,
        "a": a,
        "seq": seq,
    }
    return partition, rows
