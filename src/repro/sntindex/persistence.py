"""On-disk format for the SNT-index (``SNTIndex.save`` / ``load``).

A service process should start serving without re-running ``build()`` —
suffix-array construction dominates build time and the index is immutable
afterwards, so it is built once and shipped as a directory:

``meta.json``
    Format tag + version, scalar index attributes, and the build stats.
``arrays.npz``
    The bulk numpy payload: the user container ``U``, the temporal-forest
    leaf columns (concatenated across edges with an offset table), and
    the time-of-day histogram store.
``partitions.pkl``
    The per-partition FM-indexes (wavelet trees over the BWT), pickled.
    These are deep object graphs of numpy arrays and dicts; pickling them
    verbatim is both compact and exact, and avoids re-running the
    suffix-array construction that dominates build time.

.. warning::
    Because the partitions are pickled, **loading executes whatever the
    pickle says** — only load index directories you (or your build
    pipeline) wrote.  A saved index is a build artifact, not a safe
    interchange format; treat foreign index directories like foreign
    code.

The forest and ToD store are *reconstructed* from the column arrays on
load (``TemporalForest.build`` is deterministic over sorted columns), so
the on-disk format stays independent of the tree internals — a CSS-tree
directory is cheap to rebuild, and the same file loads as ``"btree"``
data written by a ``"css"`` build would not arise (the kind is saved).

``FORMAT_VERSION`` gates compatibility: loaders refuse newer or older
majors outright rather than guessing.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

import numpy as np

from ..errors import PersistenceError
from ..histogram.tod import TimeOfDayHistogramStore
from ..temporal.forest import TemporalForest
from ..temporal.records import TraversalColumns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .index import SNTIndex

__all__ = [
    "FORMAT_VERSION",
    "FORMAT_NAME",
    "save_index",
    "load_index",
    "read_meta",
    "validate_meta",
    "validate_identity",
    "atomic_install_dir",
    "write_index_payload",
]

#: Bump on any incompatible change to the directory layout or array set.
FORMAT_VERSION = 1
FORMAT_NAME = "snt-index"

META_FILE = "meta.json"
ARRAYS_FILE = "arrays.npz"
PARTITIONS_FILE = "partitions.pkl"

_COLUMNS = ("t", "isa", "d", "tt", "a", "seq", "w")


def save_index(
    index: "SNTIndex", path: Union[str, Path], extra: Optional[dict] = None
) -> Path:
    """Write ``index`` to directory ``path`` (created if needed).

    ``extra`` is an optional JSON-serialisable dict stored verbatim under
    the ``extra`` meta key — provenance the caller wants to travel with
    the index (the CLI records a digest of the source world there).
    Loaders ignore it.

    The payload is staged in a sibling temp directory and swapped in at
    the end, so an interrupted re-save never leaves a directory mixing
    old and new files (which would pass every load check and answer
    queries wrongly); the reader finds either the old index, the new
    one, or — in the narrow swap window — none.
    """
    return atomic_install_dir(
        Path(path),
        marker_file=META_FILE,
        writer=lambda target: _write_payload(index, target, extra),
        what="saved SNT-index",
    )


def atomic_install_dir(
    final: Path,
    marker_file: str,
    writer,
    what: str = "saved SNT-index",
) -> Path:
    """Stage ``writer(target)`` in a sibling temp dir and swap it in.

    Shared by the monolithic index format (marker ``meta.json``) and the
    sharded manifest format (marker ``manifest.json``).  ``writer`` is
    called with a fresh staging directory and must fully populate it —
    including the marker file, which is how a later save recognises the
    target as safe to replace.
    """
    if final.exists():
        # The swap deletes whatever sits at the target; only a prior
        # saved index (or an empty directory) is fair game — a mistaken
        # --out must not destroy user data.
        if not final.is_dir():
            raise PersistenceError(
                f"cannot save index to {final}: exists and is not a "
                "directory"
            )
        if any(final.iterdir()) and not (final / marker_file).is_file():
            raise PersistenceError(
                f"refusing to overwrite {final}: directory exists and is "
                f"not a {what}"
            )
    final.parent.mkdir(parents=True, exist_ok=True)
    # Sweep staging/graveyard leftovers of *crashed* saves only: a
    # pid-suffixed dir whose owner is still alive belongs to a
    # concurrent saver and must not be touched.  A dead saver's
    # graveyard may hold the only surviving copy of the index (crash
    # between the two swap renames) — restore it, never delete it,
    # when no index is installed.
    for pattern in (f".{final.name}.tmp-*", f".{final.name}.old-*"):
        for stale in final.parent.glob(pattern):
            pid_text = stale.name.rsplit("-", 1)[-1]
            if pid_text.isdigit() and _pid_alive(int(pid_text)):
                continue
            if ".old-" in stale.name and not final.exists():
                try:
                    os.rename(stale, final)
                    continue
                except OSError:
                    pass
            shutil.rmtree(stale, ignore_errors=True)
    target = final.parent / f".{final.name}.tmp-{os.getpid()}"
    if target.exists():  # our own leftover; the sweep skips live pids
        shutil.rmtree(target)
    target.mkdir()
    try:
        writer(target)
    except BaseException:
        shutil.rmtree(target, ignore_errors=True)
        raise

    graveyard = None
    try:
        if final.exists():
            graveyard = final.parent / f".{final.name}.old-{os.getpid()}"
            if graveyard.exists():
                shutil.rmtree(graveyard)
            os.rename(final, graveyard)
        os.rename(target, final)
    except OSError as error:
        # Most likely two savers racing for the same target: the loser's
        # rename finds the directory already moved.  Put the old index
        # back if the failure left none installed.
        shutil.rmtree(target, ignore_errors=True)
        if (
            graveyard is not None
            and graveyard.exists()
            and not final.exists()
        ):
            try:
                os.rename(graveyard, final)
            except OSError:
                pass  # the sweep of a later save will restore it
        raise PersistenceError(
            f"could not install saved index at {final} (concurrent save "
            f"to the same path?): {error}"
        ) from error
    if graveyard is not None:
        # The new index is installed; a failed graveyard cleanup is not
        # a failed save (the next save's sweep collects it).
        shutil.rmtree(graveyard, ignore_errors=True)
    return final


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for staging-dir owners."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by another user
    except OSError:
        return True  # unknown: err on the side of not deleting
    return True


def write_index_payload(
    index: "SNTIndex", target: Union[str, Path], extra: Optional[dict] = None
) -> None:
    """Write an index's files directly into directory ``target``.

    For callers that already sit inside a staged/atomic context (the
    sharded manifest writer populates its shard subdirectories with
    this): no temp-dir dance of its own — :func:`save_index` is the
    crash-safe entry point for standalone directories.
    """
    target = Path(target)
    target.mkdir(parents=True, exist_ok=True)
    _write_payload(index, target, extra)


def _write_payload(
    index: "SNTIndex", target: Path, extra: Optional[dict] = None
) -> None:
    """Write meta/arrays/partitions into (staging) directory ``target``."""

    edges = sorted(index.forest.edges())
    chunks: Dict[str, list] = {name: [] for name in _COLUMNS}
    offsets = np.zeros(len(edges) + 1, dtype=np.int64)
    for i, edge in enumerate(edges):
        columns = index.forest.get(edge).columns
        offsets[i + 1] = offsets[i] + len(columns)
        for name in _COLUMNS:
            chunks[name].append(getattr(columns, name))

    arrays = {
        "users": index.users,
        "edge_ids": np.asarray(edges, dtype=np.int64),
        "edge_offsets": offsets,
    }
    for name in _COLUMNS:
        arrays[f"col_{name}"] = (
            np.concatenate(chunks[name])
            if chunks[name]
            else np.empty(0)
        )
    tod_keys, tod_counts = index.tod_store.as_arrays()
    arrays["tod_keys"] = tod_keys
    arrays["tod_counts"] = tod_counts
    np.savez_compressed(target / ARRAYS_FILE, **arrays)

    with open(target / PARTITIONS_FILE, "wb") as handle:
        pickle.dump(index.partitions, handle, protocol=pickle.HIGHEST_PROTOCOL)

    stats = index.build_stats
    meta = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "kind": index.kind,
        "partition_days": index.partition_days,
        "t_min": index.t_min,
        "t_max": index.t_max,
        "alphabet_size": index.alphabet_size,
        "tod_bucket_s": index.tod_store.bucket_width_s,
        "build_stats": {
            "setup_seconds": stats.setup_seconds,
            "n_partitions": stats.n_partitions,
            "n_trajectories": stats.n_trajectories,
            "n_traversals": stats.n_traversals,
        },
        "extra": dict(extra or {}),
    }
    with open(target / META_FILE, "w") as handle:
        json.dump(meta, handle, indent=2)


def read_meta(path: Union[str, Path]) -> dict:
    """Read and format-check ``meta.json`` of a saved index.

    Cheap (no payload I/O): callers can inspect provenance — the
    ``extra`` dict, build stats, scalar attributes — without loading
    the index.
    """
    source = Path(path)
    meta_path = source / META_FILE
    if not meta_path.is_file():
        raise PersistenceError(f"{source} is not a saved SNT-index "
                               f"({META_FILE} missing)")
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(f"corrupt {META_FILE}: {error}") from error
    if meta.get("format") != FORMAT_NAME:
        raise PersistenceError(
            f"{source} holds format {meta.get('format')!r}, "
            f"expected {FORMAT_NAME!r}"
        )
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"saved index has format version {version!r}; this build "
            f"reads version {FORMAT_VERSION} only"
        )
    return meta


def validate_identity(
    meta: dict,
    source: Union[str, Path],
    expected_alphabet_size: Optional[int] = None,
    expected_kind: Optional[str] = None,
) -> None:
    """Check the identity scalars (``kind``, ``alphabet_size``) of a
    manifest-like dict, including the caller's ``expected_*``
    cross-checks — shared by the monolithic :func:`validate_meta` and
    the sharded manifest loader, so the two formats cannot drift on
    what counts as a valid (or matching) index identity.
    """
    kind = meta["kind"]
    if kind not in ("css", "btree"):
        raise PersistenceError(
            f"{source} declares temporal index kind {kind!r}; this build "
            "knows 'css' and 'btree' — refusing before reading the "
            "partition payload"
        )
    alphabet = meta["alphabet_size"]
    if not isinstance(alphabet, int) or isinstance(alphabet, bool) \
            or alphabet < 1:
        raise PersistenceError(
            f"{source} declares alphabet_size {alphabet!r}; expected a "
            "positive integer — refusing before reading the partition "
            "payload"
        )
    if expected_kind is not None and kind != expected_kind:
        raise PersistenceError(
            f"saved index at {source} was built with kind {kind!r}, but "
            f"{expected_kind!r} is required — refusing before reading "
            "the partition payload"
        )
    if (
        expected_alphabet_size is not None
        and alphabet != expected_alphabet_size
    ):
        raise PersistenceError(
            f"saved index at {source} was built over alphabet size "
            f"{alphabet}, but the target network has "
            f"{expected_alphabet_size} — index and network must come "
            "from the same world (refusing before reading the partition "
            "payload)"
        )


def validate_meta(
    meta: dict,
    source: Union[str, Path],
    expected_alphabet_size: Optional[int] = None,
    expected_kind: Optional[str] = None,
) -> None:
    """Prove the manifest scalars sane *before* any payload I/O.

    Loading the FM partitions executes a pickle, so every check that can
    run against ``meta.json`` alone must run first: a manifest naming an
    impossible kind or alphabet, or one disagreeing with the world the
    caller is about to serve (``expected_*``), is rejected without ever
    opening ``partitions.pkl``.
    """
    required_meta = (
        "kind", "partition_days", "t_min", "t_max", "alphabet_size",
        "tod_bucket_s", "build_stats",
    )
    missing_meta = [name for name in required_meta if name not in meta]
    if missing_meta:
        raise PersistenceError(
            f"{META_FILE} is missing fields {missing_meta}"
        )
    validate_identity(
        meta,
        source,
        expected_alphabet_size=expected_alphabet_size,
        expected_kind=expected_kind,
    )
    partition_days = meta["partition_days"]
    if partition_days is not None and (
        not isinstance(partition_days, int)
        or isinstance(partition_days, bool)
        or partition_days < 1
    ):
        raise PersistenceError(
            f"{source} declares partition_days {partition_days!r}; "
            "expected null or a positive integer"
        )
    stats_meta = meta["build_stats"]
    stats_fields = (
        "setup_seconds", "n_partitions", "n_trajectories", "n_traversals"
    )
    if not isinstance(stats_meta, dict) or any(
        field not in stats_meta for field in stats_fields
    ):
        raise PersistenceError(f"{META_FILE} has incomplete build_stats")


def load_index(
    path: Union[str, Path],
    expected_alphabet_size: Optional[int] = None,
    expected_kind: Optional[str] = None,
) -> "SNTIndex":
    """Load an index previously written by :func:`save_index`.

    ``expected_alphabet_size`` / ``expected_kind`` are checked against
    the manifest before the pickled FM partitions are read — see
    :func:`validate_meta`.
    """
    from .index import BuildStats, SNTIndex

    source = Path(path)
    meta = read_meta(source)
    validate_meta(
        meta,
        source,
        expected_alphabet_size=expected_alphabet_size,
        expected_kind=expected_kind,
    )

    try:
        with np.load(source / ARRAYS_FILE) as payload:
            arrays = {name: payload[name] for name in payload.files}
        with open(source / PARTITIONS_FILE, "rb") as handle:
            partitions = pickle.load(handle)
    except (
        OSError,
        EOFError,
        zipfile.BadZipFile,
        pickle.PickleError,
        ValueError,
        KeyError,
    ) as error:
        raise PersistenceError(
            f"failed to read saved index payload from {source}: {error}"
        ) from error

    required_arrays = ["users", "edge_ids", "edge_offsets", "tod_keys",
                       "tod_counts"]
    required_arrays += [f"col_{name}" for name in _COLUMNS]
    missing = [name for name in required_arrays if name not in arrays]
    if missing:
        raise PersistenceError(
            f"{ARRAYS_FILE} is missing arrays {missing}"
        )

    edges = arrays["edge_ids"]
    offsets = arrays["edge_offsets"]
    # Slicing with bad offsets would silently clamp to empty columns, so
    # the offset table must be proven consistent, not trusted.
    if (
        offsets.size != edges.size + 1
        or (offsets.size and offsets[0] != 0)
        or np.any(np.diff(offsets) < 0)
        or (offsets.size and offsets[-1] != arrays["col_t"].size)
    ):
        raise PersistenceError(
            f"corrupt {ARRAYS_FILE}: edge_offsets are inconsistent with "
            "the column arrays"
        )
    try:
        per_edge: Dict[int, TraversalColumns] = {}
        for i, edge in enumerate(edges):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            per_edge[int(edge)] = TraversalColumns.from_arrays(
                t=arrays["col_t"][lo:hi],
                isa=arrays["col_isa"][lo:hi],
                d=arrays["col_d"][lo:hi],
                tt=arrays["col_tt"][lo:hi],
                a=arrays["col_a"][lo:hi],
                seq=arrays["col_seq"][lo:hi],
                w=arrays["col_w"][lo:hi],
            )
        forest = TemporalForest.build(per_edge, kind=meta["kind"])
        tod_store = TimeOfDayHistogramStore.from_arrays(
            meta["tod_bucket_s"], arrays["tod_keys"], arrays["tod_counts"]
        )
    except (ValueError, IndexError, KeyError, TypeError) as error:
        raise PersistenceError(
            f"failed to reconstruct index from {source}: {error}"
        ) from error

    stats_meta = meta["build_stats"]
    index = SNTIndex(
        partitions=partitions,
        forest=forest,
        users=arrays["users"],
        tod_store=tod_store,
        t_min=int(meta["t_min"]),
        t_max=int(meta["t_max"]),
        alphabet_size=int(meta["alphabet_size"]),
        kind=meta["kind"],
        partition_days=meta["partition_days"],
        build_stats=BuildStats(
            setup_seconds=float(stats_meta["setup_seconds"]),
            n_partitions=int(stats_meta["n_partitions"]),
            n_trajectories=int(stats_meta["n_trajectories"]),
            n_traversals=int(stats_meta["n_traversals"]),
        ),
    )
    # Where this index came from on disk — lets serving layers place
    # per-index artifacts (e.g. the shared cache tier) alongside it.
    index.source_path = source
    return index
