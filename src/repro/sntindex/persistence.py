"""On-disk format for the SNT-index (``SNTIndex.save`` / ``load``).

A service process should start serving without re-running ``build()`` —
suffix-array construction dominates build time and the index is immutable
afterwards, so it is built once and shipped as a directory:

``meta.json``
    Format tag + version, scalar index attributes, the build stats, the
    cached traversal-time bounds, and one *scalar-only* entry per
    temporal partition (``w``, trip/traversal counts, time bounds,
    FM text length).  Deliberately small: parsing it must not scale
    with the alphabet or the corpus.
``payload/``
    One standalone ``.npy`` file per bulk array: the user container
    ``U``, the temporal-forest leaf columns (concatenated across edges
    with an offset table), the forest's two per-edge sort permutations
    (``perm_tod.npy``, ``perm_probe.npy`` — v2.1, optional; see
    :data:`FORMAT_MINOR`), the time-of-day histogram arrays, and — per
    partition ``k`` — ``p{k}_counts.npy`` (the ``C`` array), the
    Huffman code table as three arrays (``p{k}_code_symbols.npy``,
    ``p{k}_code_lengths.npy``, and the concatenated code bits
    ``p{k}_code_bits.npy``), the per-node bit counts
    ``p{k}_node_bits.npy`` (in sorted-prefix order — the node
    *prefixes* are re-derived from the code table, so they are never
    stored), plus the concatenation of every wavelet-tree node's packed
    words (``p{k}_wt_words.npy``) and block-rank directory
    (``p{k}_wt_blocks.npy``), in the same node order.

Every payload file is opened with ``np.load(..., mmap_mode="r")``: a
sealed index opens in O(1) — no unpickling, no array copies — and fork
workers share the mapped pages.  The partitions themselves materialise
lazily (:class:`_LazyPartitionList`): opening parses the small manifest
and establishes the shared mmaps, and the first query that touches a
partition rebuilds its wavelet tree around zero-copy *slices* of the
mapped node concatenations
(:meth:`~repro.fmindex.bitvector.RankBitvector.from_arrays`).  The
temporal forest materialises per-edge tree directories lazily
(:class:`~repro.temporal.forest.SlicedTemporalForest`), and the
time-of-day store loads on first estimator use.

Format version 1 pickled the FM partitions (``partitions.pkl``); loading
executed whatever the pickle said.  Version 2 removes that file — the
monolithic format contains **no pickle at all** — which both closes the
load-time code-execution surface for this format and removes the
unpickle cost from the open path.  Version-1 directories are refused
with :class:`~repro.errors.IndexFormatError`; ``repro migrate`` (see
:mod:`repro.sntindex.migrate`) upgrades them in place.

``FORMAT_VERSION`` gates compatibility: loaders refuse newer or older
versions outright rather than guessing.

Every entry point accepts a path, a store URI, or a
:class:`~repro.sntindex.store.ShardStore` instance — the filesystem is
reached only through the store (:func:`~repro.sntindex.store.as_store`
wraps bare paths in a ``LocalDirStore``, preserving the historical
layout byte for byte).
"""

from __future__ import annotations

import json
from functools import partial
from pathlib import Path
from collections.abc import Sequence
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import IndexFormatError, PersistenceError, StoreError
from ..fmindex import FMIndex, RankBitvector, WaveletTree
from ..histogram.tod import TimeOfDayHistogramStore
from ..temporal.forest import SlicedTemporalForest
from .partition import IndexPartition
from .store import ShardStore, as_store, atomic_install_dir

StoreLike = Union[str, Path, ShardStore]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .index import SNTIndex

__all__ = [
    "FORMAT_VERSION",
    "FORMAT_MINOR",
    "FORMAT_NAME",
    "save_index",
    "load_index",
    "read_meta",
    "validate_meta",
    "validate_identity",
    "atomic_install_dir",
    "write_index_payload",
]

#: Bump on any incompatible change to the directory layout or array set.
#: v2: pickle-free payload of standalone mmap-able ``.npy`` files.
FORMAT_VERSION = 2
#: Backwards-compatible additions within v2.  Minor 1 (= "v2.1") adds the
#: two per-edge sort permutations of the temporal forest — ``perm_tod``
#: (time-of-day order) and ``perm_probe`` (packed ``(d, seq)`` probe-key
#: order) — concatenated across edges with the same ``edge_offsets``
#: table as the leaf columns.  Loaders treat both as optional: a v2.0
#: directory (no permutation files) opens unchanged and the orders are
#: rebuilt lazily per edge; a v2.1 directory hands the mmap'd slices to
#: each edge index zero-copy.
FORMAT_MINOR = 1
FORMAT_NAME = "snt-index"

META_FILE = "meta.json"
PAYLOAD_DIR = "payload"

_COLUMNS = ("t", "isa", "d", "tt", "a", "seq", "w")
_SHARED_ARRAYS = (
    "users",
    "edge_ids",
    "edge_offsets",
    "tod_keys",
    "tod_counts",
) + tuple(f"col_{name}" for name in _COLUMNS)


def save_index(
    index: "SNTIndex", path: StoreLike, extra: Optional[dict] = None
) -> Path:
    """Write ``index`` to ``path`` — a directory, store URI, or store.

    ``extra`` is an optional JSON-serialisable dict stored verbatim under
    the ``extra`` meta key — provenance the caller wants to travel with
    the index (the CLI records a digest of the source world there).
    Loaders ignore it.

    The payload is staged and installed atomically by the store
    (:meth:`~repro.sntindex.store.ShardStore.install`): for a local
    directory, the historical sibling-tempdir swap; for an object
    store, marker-last upload ordering.  Either way an interrupted
    re-save never leaves a target mixing old and new files (which would
    pass every load check and answer queries wrongly).
    """
    return as_store(path).install(
        "",
        marker_file=META_FILE,
        writer=lambda target: _write_payload(index, target, extra),
        what="saved SNT-index",
    )


def write_index_payload(
    index: "SNTIndex", target: Union[str, Path], extra: Optional[dict] = None
) -> None:
    """Write an index's files directly into directory ``target``.

    For callers that already sit inside a staged/atomic context (the
    sharded manifest writer populates its shard subdirectories with
    this): no temp-dir dance of its own — :func:`save_index` is the
    crash-safe entry point for standalone directories.
    """
    target = Path(target)
    target.mkdir(parents=True, exist_ok=True)
    _write_payload(index, target, extra)


def _code_prefixes(codes: Dict[int, Tuple[int, ...]]) -> List[tuple]:
    """Wavelet-tree node prefixes, sorted: every proper prefix of every
    code.  The tree has one node (bitvector) per such prefix, so the
    node directory never needs storing — it is a function of the code
    table."""
    prefixes = {code[:i] for code in codes.values() for i in range(len(code))}
    return sorted(prefixes)


def _partition_payload(
    partition: IndexPartition,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Split one partition into JSON-able scalars and payload arrays.

    The meta entry carries scalars only; the Huffman code table travels
    as three payload arrays (symbols, code lengths, concatenated code
    bits) and the node directory as per-node bit counts in
    sorted-prefix order.  The loader re-derives the prefixes from the
    codes and each node's array extents from its bit count.
    """
    tree = partition.fm.bwt
    nodes = sorted(tree.nodes.items())
    code_items = sorted(tree.codes.items())
    arrays = {
        "code_symbols": np.asarray(
            [symbol for symbol, _ in code_items], dtype=np.int64
        ),
        "code_lengths": np.asarray(
            [len(code) for _, code in code_items], dtype=np.int64
        ),
        "code_bits": np.asarray(
            [bit for _, code in code_items for bit in code], dtype=np.uint8
        ),
        "node_bits": np.asarray(
            [len(node) for _, node in nodes], dtype=np.int64
        ),
        "wt_words": (
            np.concatenate([node.words for _, node in nodes])
            if nodes
            else np.zeros(0, dtype=np.uint64)
        ),
        "wt_blocks": (
            np.concatenate([node.block_ranks for _, node in nodes])
            if nodes
            else np.zeros(0, dtype=np.int64)
        ),
    }
    entry = {
        "w": partition.w,
        "n_trajectories": partition.n_trajectories,
        "n_traversals": partition.n_traversals,
        "t_lo": partition.t_lo,
        "t_hi": partition.t_hi,
        "fm_n": len(partition.fm),
    }
    return entry, arrays


def _write_payload(
    index: "SNTIndex", target: Path, extra: Optional[dict] = None
) -> None:
    """Write ``meta.json`` + ``payload/`` into (staging) dir ``target``."""

    edges = sorted(index.forest.edges())
    chunks: Dict[str, list] = {name: [] for name in _COLUMNS}
    perm_tod_chunks: List[np.ndarray] = []
    perm_probe_chunks: List[np.ndarray] = []
    offsets = np.zeros(len(edges) + 1, dtype=np.int64)
    for i, edge in enumerate(edges):
        phi = index.forest.get(edge)
        columns = phi.columns
        offsets[i + 1] = offsets[i] + len(columns)
        for name in _COLUMNS:
            chunks[name].append(getattr(columns, name))
        # The v2.1 sort permutations (built here if no query has yet):
        # edge-relative row indices, sharing the edge_offsets table.
        perm_tod_chunks.append(phi.tod_order)
        perm_probe_chunks.append(phi.probe_order)

    arrays = {
        "users": index.users,
        "edge_ids": np.asarray(edges, dtype=np.int64),
        "edge_offsets": offsets,
    }
    for name in _COLUMNS:
        arrays[f"col_{name}"] = (
            np.concatenate(chunks[name])
            if chunks[name]
            else np.empty(0)
        )
    arrays["perm_tod"] = (
        np.concatenate(perm_tod_chunks)
        if perm_tod_chunks
        else np.empty(0, dtype=np.int64)
    )
    arrays["perm_probe"] = (
        np.concatenate(perm_probe_chunks)
        if perm_probe_chunks
        else np.empty(0, dtype=np.int64)
    )
    tod_keys, tod_counts = index.tod_store.as_arrays()
    arrays["tod_keys"] = tod_keys
    arrays["tod_counts"] = tod_counts

    partitions_meta = []
    for k, partition in enumerate(index.partitions):
        entry, partition_arrays = _partition_payload(partition)
        partitions_meta.append(entry)
        arrays[f"p{k}_counts"] = np.asarray(
            partition.fm.counts, dtype=np.int64
        )
        for name, array in partition_arrays.items():
            arrays[f"p{k}_{name}"] = array

    payload_dir = target / PAYLOAD_DIR
    payload_dir.mkdir(exist_ok=True)
    for name, array in arrays.items():
        # One standalone .npy per array: np.load only mmaps standalone
        # files, not npz members, and mmap is the whole point here.
        np.save(payload_dir / f"{name}.npy", np.ascontiguousarray(array))

    stats = index.build_stats
    meta = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "format_minor": FORMAT_MINOR,
        "kind": index.kind,
        "partition_days": index.partition_days,
        "t_min": index.t_min,
        "t_max": index.t_max,
        "alphabet_size": index.alphabet_size,
        "tod_bucket_s": index.tod_bucket_s,
        "data_time_bounds": list(index.data_time_bounds()),
        "partitions": partitions_meta,
        "build_stats": {
            "setup_seconds": stats.setup_seconds,
            "n_partitions": stats.n_partitions,
            "n_trajectories": stats.n_trajectories,
            "n_traversals": stats.n_traversals,
        },
        "extra": dict(extra or {}),
    }
    with open(target / META_FILE, "w") as handle:
        json.dump(meta, handle, indent=2)


def read_meta(path: StoreLike) -> dict:
    """Read and format-check ``meta.json`` of a saved index.

    Cheap (no payload I/O): callers can inspect provenance — the
    ``extra`` dict, build stats, scalar attributes — without loading
    the index.
    """
    store = as_store(path)
    source = store.uri
    if not store.exists(META_FILE):
        raise PersistenceError(f"{source} is not a saved SNT-index "
                               f"({META_FILE} missing)")
    try:
        meta = json.loads(store.get(META_FILE))
    except (StoreError, OSError, json.JSONDecodeError) as error:
        raise PersistenceError(f"corrupt {META_FILE}: {error}") from error
    if meta.get("format") != FORMAT_NAME:
        raise PersistenceError(
            f"{source} holds format {meta.get('format')!r}, "
            f"expected {FORMAT_NAME!r}"
        )
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise IndexFormatError(
            f"saved index has format version {version!r}; this build "
            f"reads version {FORMAT_VERSION} only — run `repro migrate` "
            "to upgrade it in place, or rebuild the index from source "
            "data"
        )
    return meta


def validate_identity(
    meta: dict,
    source: Union[str, Path],
    expected_alphabet_size: Optional[int] = None,
    expected_kind: Optional[str] = None,
) -> None:
    """Check the identity scalars (``kind``, ``alphabet_size``) of a
    manifest-like dict, including the caller's ``expected_*``
    cross-checks — shared by the monolithic :func:`validate_meta` and
    the sharded manifest loader, so the two formats cannot drift on
    what counts as a valid (or matching) index identity.
    """
    kind = meta["kind"]
    if kind not in ("css", "btree"):
        raise PersistenceError(
            f"{source} declares temporal index kind {kind!r}; this build "
            "knows 'css' and 'btree' — refusing before reading the "
            "partition payload"
        )
    alphabet = meta["alphabet_size"]
    if not isinstance(alphabet, int) or isinstance(alphabet, bool) \
            or alphabet < 1:
        raise PersistenceError(
            f"{source} declares alphabet_size {alphabet!r}; expected a "
            "positive integer — refusing before reading the partition "
            "payload"
        )
    if expected_kind is not None and kind != expected_kind:
        raise PersistenceError(
            f"saved index at {source} was built with kind {kind!r}, but "
            f"{expected_kind!r} is required — refusing before reading "
            "the partition payload"
        )
    if (
        expected_alphabet_size is not None
        and alphabet != expected_alphabet_size
    ):
        raise PersistenceError(
            f"saved index at {source} was built over alphabet size "
            f"{alphabet}, but the target network has "
            f"{expected_alphabet_size} — index and network must come "
            "from the same world (refusing before reading the partition "
            "payload)"
        )


def validate_meta(
    meta: dict,
    source: Union[str, Path],
    expected_alphabet_size: Optional[int] = None,
    expected_kind: Optional[str] = None,
) -> None:
    """Prove the manifest scalars sane *before* any payload I/O.

    Every check that can run against ``meta.json`` alone runs first: a
    manifest naming an impossible kind or alphabet, or one disagreeing
    with the world the caller is about to serve (``expected_*``), is
    rejected without ever opening the payload directory.
    """
    required_meta = (
        "kind", "partition_days", "t_min", "t_max", "alphabet_size",
        "tod_bucket_s", "build_stats", "partitions", "data_time_bounds",
    )
    missing_meta = [name for name in required_meta if name not in meta]
    if missing_meta:
        raise PersistenceError(
            f"{META_FILE} is missing fields {missing_meta}"
        )
    validate_identity(
        meta,
        source,
        expected_alphabet_size=expected_alphabet_size,
        expected_kind=expected_kind,
    )
    partition_days = meta["partition_days"]
    if partition_days is not None and (
        not isinstance(partition_days, int)
        or isinstance(partition_days, bool)
        or partition_days < 1
    ):
        raise PersistenceError(
            f"{source} declares partition_days {partition_days!r}; "
            "expected null or a positive integer"
        )
    partition_fields = (
        "w", "n_trajectories", "n_traversals", "t_lo", "t_hi", "fm_n",
    )
    partitions = meta["partitions"]
    if not isinstance(partitions, list) or any(
        not isinstance(entry, dict)
        or any(field not in entry for field in partition_fields)
        for entry in partitions
    ):
        raise PersistenceError(
            f"{META_FILE} has incomplete partition entries"
        )
    stats_meta = meta["build_stats"]
    stats_fields = (
        "setup_seconds", "n_partitions", "n_trajectories", "n_traversals"
    )
    if not isinstance(stats_meta, dict) or any(
        field not in stats_meta for field in stats_fields
    ):
        raise PersistenceError(f"{META_FILE} has incomplete build_stats")


def _load_array(payload_dir: Path, name: str) -> np.ndarray:
    """Memory-map one payload array; missing/corrupt files are typed."""
    target = payload_dir / f"{name}.npy"
    if not target.is_file():
        raise PersistenceError(
            f"{payload_dir.parent} payload is missing array {name!r}"
        )
    try:
        return np.load(target, mmap_mode="r")
    except (OSError, ValueError, EOFError) as error:
        raise PersistenceError(
            f"failed to read saved index payload from "
            f"{payload_dir.parent}: array {name!r}: {error}"
        ) from error


def _load_optional_array(payload_dir: Path, name: str) -> Optional[np.ndarray]:
    """Memory-map a payload array that older minors simply do not have."""
    if not (payload_dir / f"{name}.npy").is_file():
        return None
    return _load_array(payload_dir, name)


def _load_codes(payload_dir: Path, k: int) -> Dict[int, Tuple[int, ...]]:
    """Rebuild partition ``k``'s Huffman code table from its payload
    arrays, proving the three arrays mutually consistent first."""
    symbols = _load_array(payload_dir, f"p{k}_code_symbols")
    lengths = _load_array(payload_dir, f"p{k}_code_lengths")
    bits = _load_array(payload_dir, f"p{k}_code_bits")
    if (
        symbols.size != lengths.size
        or (lengths.size and int(lengths.min()) < 1)
        or int(lengths.sum()) != bits.size
        or (bits.size and int(bits.max()) > 1)
    ):
        raise PersistenceError(
            f"partition {k} code-table payload is corrupt: symbol, "
            "length, and bit arrays disagree"
        )
    starts = np.concatenate(([0], np.cumsum(lengths)))
    return {
        int(symbols[i]): tuple(
            int(b) for b in bits[starts[i] : starts[i + 1]]
        )
        for i in range(symbols.size)
    }


def _load_partition(
    entry: dict,
    payload_dir: Path,
    k: int,
    alphabet_size: int,
) -> IndexPartition:
    """Rebuild one temporal partition around memory-mapped payloads."""
    counts = _load_array(payload_dir, f"p{k}_counts")
    codes = _load_codes(payload_dir, k)
    node_bits = _load_array(payload_dir, f"p{k}_node_bits")
    words_all = _load_array(payload_dir, f"p{k}_wt_words")
    blocks_all = _load_array(payload_dir, f"p{k}_wt_blocks")
    prefixes = _code_prefixes(codes)
    if node_bits.size != len(prefixes):
        raise PersistenceError(
            f"partition {k} node directory disagrees with its code "
            f"table ({len(prefixes)} nodes expected, {node_bits.size} "
            "stored)"
        )
    word_counts = [(int(n) + 63) // 64 for n in node_bits]
    block_counts = [(n + 7) // 8 + 1 for n in word_counts]
    if sum(word_counts) != words_all.size \
            or sum(block_counts) != blocks_all.size:
        raise PersistenceError(
            f"partition {k} wavelet payload size disagrees with its "
            f"node directory ({sum(word_counts)} words / "
            f"{sum(block_counts)} block ranks expected, "
            f"{words_all.size} / {blocks_all.size} stored)"
        )
    nodes: Dict[tuple, RankBitvector] = {}
    word_cursor = 0
    block_cursor = 0
    for prefix, n_bits, n_words, n_blocks in zip(
        prefixes, node_bits, word_counts, block_counts
    ):
        nodes[prefix] = RankBitvector.from_arrays(
            int(n_bits),
            words_all[word_cursor : word_cursor + n_words],
            blocks_all[block_cursor : block_cursor + n_blocks],
        )
        word_cursor += n_words
        block_cursor += n_blocks
    tree = WaveletTree.from_arrays(
        int(entry["fm_n"]),
        codes,
        nodes,
        # The stored payload is already the sorted-prefix concatenation
        # the tree wants; adopting it keeps the mmap zero-copy.
        flat_words=words_all,
        flat_blocks=blocks_all,
    )
    fm = FMIndex.from_arrays(
        int(entry["fm_n"]), alphabet_size, counts, tree
    )
    return IndexPartition(
        w=int(entry["w"]),
        fm=fm,
        n_trajectories=int(entry["n_trajectories"]),
        n_traversals=int(entry["n_traversals"]),
        t_lo=int(entry["t_lo"]),
        t_hi=int(entry["t_hi"]),
    )


class _LazyPartitionList(Sequence):
    """Sequence of :class:`IndexPartition` that materialises on access.

    Opening a sealed index must not pay for rebuilding every
    partition's wavelet tree (O(partitions x alphabet) Python work) —
    that cost belongs to the first query that touches a partition.
    Materialised partitions are cached, so steady-state access is a
    list lookup.  Holds only paths and meta scalars, so a loaded index
    stays picklable and fork-friendly.
    """

    def __init__(
        self, entries: List[dict], payload_dir: Path, alphabet_size: int
    ):
        self._entries = entries
        self._payload_dir = payload_dir
        self._alphabet_size = alphabet_size
        self._cache: List[Optional[IndexPartition]] = [None] * len(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, position):
        if isinstance(position, slice):
            return [self[i] for i in range(*position.indices(len(self)))]
        index = range(len(self))[position]  # IndexError + negatives
        if self._cache[index] is None:
            try:
                self._cache[index] = _load_partition(
                    self._entries[index],
                    self._payload_dir,
                    index,
                    self._alphabet_size,
                )
            except PersistenceError:
                raise
            except (ValueError, IndexError, KeyError, TypeError, OSError,
                    EOFError) as error:
                raise PersistenceError(
                    f"failed to reconstruct index from "
                    f"{self._payload_dir.parent}: {error}"
                ) from error
        return self._cache[index]


def _load_tod_store(
    payload_dir: Path, bucket_width_s: int
) -> TimeOfDayHistogramStore:
    """Deferred ToD-store loader (module-level so indexes stay
    picklable when it travels as a ``functools.partial``)."""
    try:
        return TimeOfDayHistogramStore.from_arrays(
            bucket_width_s,
            _load_array(payload_dir, "tod_keys"),
            _load_array(payload_dir, "tod_counts"),
        )
    except (ValueError, IndexError, KeyError, TypeError) as error:
        raise PersistenceError(
            f"failed to reconstruct index from {payload_dir.parent}: "
            f"{error}"
        ) from error


def load_index(
    path: StoreLike,
    expected_alphabet_size: Optional[int] = None,
    expected_kind: Optional[str] = None,
) -> "SNTIndex":
    """Load an index previously written by :func:`save_index`.

    ``expected_alphabet_size`` / ``expected_kind`` are checked against
    the manifest before any payload I/O — see :func:`validate_meta`.
    Every payload array is memory-mapped read-only; nothing is copied
    and nothing is unpickled, so the open cost is independent of the
    index size (the FM partitions, per-edge tree directories, and the
    ToD histogram dict all materialise lazily on first use).  A remote
    store pages the payload into its local cache first
    (:meth:`~repro.sntindex.store.ShardStore.localize`); the mmaps then
    open against the cached copies.
    """
    from .index import BuildStats, SNTIndex

    store = as_store(path)
    source = store.uri
    meta = read_meta(store)
    validate_meta(
        meta,
        source,
        expected_alphabet_size=expected_alphabet_size,
        expected_kind=expected_kind,
    )
    payload_dir = store.localize("") / PAYLOAD_DIR
    if not payload_dir.is_dir():
        raise PersistenceError(
            f"{source} has no {PAYLOAD_DIR}/ directory"
        )

    arrays = {name: _load_array(payload_dir, name) for name in _SHARED_ARRAYS}

    edges = arrays["edge_ids"]
    offsets = arrays["edge_offsets"]
    # Slicing with bad offsets would silently clamp to empty columns, so
    # the offset table must be proven consistent, not trusted.
    if (
        offsets.size != edges.size + 1
        or (offsets.size and offsets[0] != 0)
        or np.any(np.diff(offsets) < 0)
        or (offsets.size and offsets[-1] != arrays["col_t"].size)
    ):
        raise PersistenceError(
            f"corrupt payload in {source}: edge_offsets are inconsistent "
            "with the column arrays"
        )
    # v2.1 sort permutations: optional (a v2.0 dir rebuilds the orders
    # lazily), but when present they must cover the columns exactly —
    # a short permutation would silently be ignored per edge, so prove
    # consistency here instead.
    permutations: Dict[str, Optional[np.ndarray]] = {}
    for name in ("perm_tod", "perm_probe"):
        permutation = _load_optional_array(payload_dir, name)
        if (
            permutation is not None
            and permutation.size != arrays["col_t"].size
        ):
            raise PersistenceError(
                f"corrupt payload in {source}: {name} has "
                f"{permutation.size} entries for {arrays['col_t'].size} "
                "traversal rows"
            )
        permutations[name] = permutation
    try:
        forest = SlicedTemporalForest(
            kind=meta["kind"],
            edge_ids=edges,
            offsets=offsets,
            columns={
                name: arrays[f"col_{name}"] for name in _COLUMNS
            },
            tod_order=permutations["perm_tod"],
            probe_order=permutations["perm_probe"],
        )
    except (ValueError, IndexError, KeyError, TypeError) as error:
        raise PersistenceError(
            f"failed to reconstruct index from {source}: {error}"
        ) from error
    alphabet_size = int(meta["alphabet_size"])
    partitions = _LazyPartitionList(
        meta["partitions"], payload_dir, alphabet_size
    )

    bounds = meta["data_time_bounds"]
    stats_meta = meta["build_stats"]
    index = SNTIndex(
        partitions=partitions,
        forest=forest,
        users=arrays["users"],
        tod_store=partial(
            _load_tod_store, payload_dir, int(meta["tod_bucket_s"])
        ),
        t_min=int(meta["t_min"]),
        t_max=int(meta["t_max"]),
        alphabet_size=alphabet_size,
        kind=meta["kind"],
        partition_days=meta["partition_days"],
        build_stats=BuildStats(
            setup_seconds=float(stats_meta["setup_seconds"]),
            n_partitions=int(stats_meta["n_partitions"]),
            n_trajectories=int(stats_meta["n_trajectories"]),
            n_traversals=int(stats_meta["n_traversals"]),
        ),
        tod_bucket_s=int(meta["tod_bucket_s"]),
        data_bounds=(int(bounds[0]), int(bounds[1])),
    )
    # Where this index is reachable on *this machine* — lets serving
    # layers place per-index artifacts (e.g. the shared cache tier)
    # alongside it.  For a local store this is the index directory
    # itself; for a remote store, its local page-in cache root.
    index.source_path = payload_dir.parent
    return index
