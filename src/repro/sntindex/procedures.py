"""Travel-time retrieval procedures (paper Procedures 3-5).

``buildMap`` scans the temporal index of the *first* segment of a query
path, filtering by time interval, ISA range and user predicate, and maps
``(d, seq)`` to the antecedent aggregate ``a - TT``.  ``probeMap`` scans
the *last* segment and emits ``a_last - (a_first - TT_first)`` — the exact
travel time over the whole path — for every record whose ``(d, seq + 1 -
l)`` hits the map.  ``get_travel_times`` (Procedure 5) glues both together
behind the FM-index ISA range.

The implementation is column-oriented: the forest returns candidate row
positions for the time predicate, and ISA/user filters are numpy masks.
Matches are taken in ascending entry time and cut at ``beta``, mirroring
the paper's early termination (Procedure 3 line 6).

The retrieval is split in two phases so a sharded index can run them per
shard and merge: :func:`first_segment_matches` (Procedure 3's scan and
filters, returning the matched first-segment rows) and
:func:`probe_travel_times` (Procedures 3-4's map build and probe,
returning the travel times plus the entry timestamps that order them).
Merging per-shard outputs on ``(entry time, shard order)`` reproduces the
monolithic row order exactly, because each shard's rows are a stable
restriction of the monolithic t-sorted columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.intervals import FixedInterval, PeriodicInterval, TimeInterval, is_periodic
from ..core.spq import StrictPathQuery

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .index import SNTIndex

__all__ = [
    "TravelTimeResult",
    "first_segment_matches",
    "probe_travel_times",
    "get_travel_times",
    "monolithic_travel_times",
    "count_matches",
    "monolithic_count_matches",
]


@dataclass
class TravelTimeResult:
    """Outcome of one strict path sub-query."""

    #: Retrieved travel times ``X`` (or the single fallback estimate).
    values: np.ndarray
    #: Number of trajectories matched in the first-segment scan.
    n_matched: int
    #: True when ``values`` holds the ``estimateTT`` speed-limit fallback.
    from_fallback: bool = False
    #: True when a periodic query matched fewer than ``beta`` trajectories
    #: (Procedure 5 line 7) and therefore returned no values.
    insufficient: bool = False

    @property
    def is_empty(self) -> bool:
        return self.values.size == 0

    # -- wire form (external cache tier contract) ---------------------- #

    def to_wire(self) -> Dict[str, object]:
        """JSON-compatible wire form, inverse of :meth:`from_wire`.

        The payload format of the cross-process
        :class:`~repro.service.cachetier.SharedCacheTier`: float64
        travel times round-trip exactly through JSON ``repr``, so a
        deserialised result is bit-identical to the computed one.
        """
        return {
            "values": [float(v) for v in self.values],
            "n_matched": int(self.n_matched),
            "from_fallback": bool(self.from_fallback),
            "insufficient": bool(self.insufficient),
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "TravelTimeResult":
        values = np.asarray(payload["values"], dtype=np.float64)
        values.setflags(write=False)
        return cls(
            values=values,
            n_matched=int(payload["n_matched"]),  # type: ignore[arg-type]
            from_fallback=bool(payload["from_fallback"]),
            insufficient=bool(payload["insufficient"]),
        )


def _interval_rows(index_edge, interval: TimeInterval) -> np.ndarray:
    if is_periodic(interval):
        return index_edge.rows_periodic(interval.start_tod, interval.duration)
    return index_edge.rows_fixed(interval.start, interval.end)


def first_segment_matches(
    index: SNTIndex,
    query: StrictPathQuery,
    exclude_ids: Sequence[int] = (),
    beta: Optional[int] = None,
    isa_ranges=None,
) -> Optional[Tuple[np.ndarray, "np.ndarray"]]:
    """Rows of the first segment matching all predicates, beta-cut.

    Returns ``(row_positions, columns)`` of the first segment's index, or
    ``None`` when the path does not occur / the edge has no data.  Row
    positions are in ascending entry time (ties in column order), so a
    prefix of them is exactly the paper's early-terminated match set.
    ``isa_ranges`` lets callers share one backward search between the
    cardinality estimate and the retrieval (the engine does this).
    """
    ranges = (
        isa_ranges if isa_ranges is not None else index.isa_ranges(query.path)
    )
    if not ranges:
        return None
    phi0 = index.edge_index(query.path[0])
    if phi0 is None or len(phi0) == 0:
        return None
    rows = _interval_rows(phi0, query.interval)
    if rows.size == 0:
        columns = phi0.columns
        return rows, columns
    columns = phi0.columns

    st_per_w = np.zeros(index.n_partitions, dtype=np.int64)
    ed_per_w = np.zeros(index.n_partitions, dtype=np.int64)
    for w, st, ed in ranges:
        st_per_w[w], ed_per_w[w] = st, ed
    w = columns.w[rows]
    isa = columns.isa[rows]
    mask = (isa >= st_per_w[w]) & (isa < ed_per_w[w])

    if query.user is not None:
        mask &= index.users[columns.d[rows]] == query.user
    for excluded in exclude_ids:
        mask &= columns.d[rows] != excluded

    selected = rows[mask]
    if beta is not None and selected.size > beta:
        selected = selected[:beta]  # ascending entry time (Procedure 3)
    return selected, columns


def probe_travel_times(
    index: SNTIndex,
    query: StrictPathQuery,
    selected: np.ndarray,
    columns,
) -> Tuple[np.ndarray, np.ndarray]:
    """Procedures 3-4 given the (already beta-cut) first-segment rows.

    Returns ``(values, order_t)``: the travel times of the matched
    traversals plus, per value, the entry timestamp of the record that
    emitted it (the first segment for single-segment paths, the last
    segment otherwise).  ``values`` is in the scan order of this index's
    columns; ``order_t`` is what a sharded router merges on to reproduce
    the monolithic emission order across shards.
    """
    l = query.length
    if l == 1:
        # The first segment is the last: X is the TT column directly.
        values = columns.tt[selected].astype(np.float64, copy=True)
        return values, columns.t[selected]

    # buildMap: (d, seq) -> a - TT for the first segment (Procedure 3).
    first_d = columns.d[selected]
    first_seq = columns.seq[selected]
    diffs = columns.a[selected] - columns.tt[selected]
    probe_map: Dict[Tuple[int, int], float] = {
        (int(first_d[i]), int(first_seq[i])): float(diffs[i])
        for i in range(int(selected.size))
    }

    # probeMap over the last segment (Procedure 4).
    empty = np.empty(0, dtype=np.float64)
    phi_last = index.edge_index(query.path[-1])
    if phi_last is None:  # cannot happen when the ISA range was non-empty
        return empty, np.empty(0, dtype=np.int64)
    last = phi_last.columns
    candidates = np.nonzero(np.isin(last.d, first_d))[0]
    values = []
    order_t = []
    for row in candidates:
        key = (int(last.d[row]), int(last.seq[row]) + 1 - l)
        diff = probe_map.get(key)
        if diff is not None:
            values.append(float(last.a[row]) - diff)
            order_t.append(int(last.t[row]))
    return (
        np.asarray(values, dtype=np.float64),
        np.asarray(order_t, dtype=np.int64),
    )


def get_travel_times(
    index,
    query: StrictPathQuery,
    fallback_tt: Optional[Callable[[int], float]] = None,
    exclude_ids: Sequence[int] = (),
    isa_ranges=None,
) -> TravelTimeResult:
    """Procedure 5: retrieve ``X`` for ``spq(P, I, f, beta)``.

    Accepts any :class:`~repro.sntindex.reader.IndexReader` and
    dispatches through it — the monolithic index runs
    :func:`monolithic_travel_times` below, a sharded index scatters the
    procedure per shard and merges.

    Parameters
    ----------
    index:
        The index reader.
    query:
        The (sub-)query.
    fallback_tt:
        ``estimateTT`` callable for the speed-limit fallback on empty
        single-segment results (Procedure 5 lines 12-13); usually
        ``network.estimate_tt``.
    exclude_ids:
        Trajectory ids excluded from matching (used by the evaluation
        workload to keep the query trajectory itself out of its answer).
    """
    return index.get_travel_times(
        query,
        fallback_tt=fallback_tt,
        exclude_ids=exclude_ids,
        isa_ranges=isa_ranges,
    )


def monolithic_travel_times(
    index: SNTIndex,
    query: StrictPathQuery,
    fallback_tt: Optional[Callable[[int], float]] = None,
    exclude_ids: Sequence[int] = (),
    isa_ranges=None,
) -> TravelTimeResult:
    """Procedure 5 over one :class:`SNTIndex`'s own columns.

    The implementation behind :meth:`SNTIndex.get_travel_times`; it
    needs the raw per-segment columns, so sharded readers never reach
    it directly — their router runs the two phases per shard instead.
    """
    empty = np.empty(0, dtype=np.float64)
    matches = first_segment_matches(
        index,
        query,
        exclude_ids=exclude_ids,
        beta=query.beta,
        isa_ranges=isa_ranges,
    )
    l = query.length

    if matches is None:
        selected = np.empty(0, dtype=np.int64)
        columns = None
    else:
        selected, columns = matches

    n_matched = int(selected.size)
    if (
        query.beta is not None
        and n_matched < query.beta
        and is_periodic(query.interval)
    ):
        # Procedure 5 line 7: periodic queries fail below the cardinality
        # requirement; fixed-interval queries proceed regardless of beta.
        return TravelTimeResult(empty, n_matched, insufficient=True)

    if n_matched == 0:
        if l == 1 and fallback_tt is not None:
            estimate = np.asarray([fallback_tt(query.path[0])])
            return TravelTimeResult(estimate, 0, from_fallback=True)
        return TravelTimeResult(empty, 0)

    result, _ = probe_travel_times(index, query, selected, columns)
    return TravelTimeResult(result, n_matched)


def count_matches(
    index,
    path: Sequence[int],
    interval: TimeInterval,
    user: Optional[int] = None,
    exclude_ids: Sequence[int] = (),
    limit: Optional[int] = None,
) -> int:
    """Exact number of trajectories matching a strict path predicate.

    Used by the longest-prefix splitter (``sigma_L``) and as the q-error
    ground truth ``n = |T|``.  ``limit`` caps the count (early
    termination) when only a threshold comparison is needed.  Dispatches
    through the :class:`~repro.sntindex.reader.IndexReader` surface, so
    monolithic and sharded readers both work.
    """
    return index.count_matches(
        path,
        interval,
        user=user,
        exclude_ids=exclude_ids,
        limit=limit,
    )


def monolithic_count_matches(
    index: SNTIndex,
    path: Sequence[int],
    interval: TimeInterval,
    user: Optional[int] = None,
    exclude_ids: Sequence[int] = (),
    limit: Optional[int] = None,
) -> int:
    """The count behind :meth:`SNTIndex.count_matches` (one index)."""
    query = StrictPathQuery(
        path=tuple(path), interval=interval, user=user, beta=limit
    )
    matches = first_segment_matches(
        index, query, exclude_ids=exclude_ids, beta=limit
    )
    if matches is None:
        return 0
    selected, _ = matches
    return int(selected.size)
