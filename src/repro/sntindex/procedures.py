"""Travel-time retrieval procedures (paper Procedures 3-5).

``buildMap`` scans the temporal index of the *first* segment of a query
path, filtering by time interval, ISA range and user predicate, and maps
``(d, seq)`` to the antecedent aggregate ``a - TT``.  ``probeMap`` scans
the *last* segment and emits ``a_last - (a_first - TT_first)`` — the exact
travel time over the whole path — for every record whose ``(d, seq + 1 -
l)`` hits the map.  ``get_travel_times`` (Procedure 5) glues both together
behind the FM-index ISA range.

The implementation is column-oriented: the forest returns candidate row
positions for the time predicate, and ISA/user filters are numpy masks.
Matches are taken in ascending entry time and cut at ``beta``, mirroring
the paper's early termination (Procedure 3 line 6).

The probe itself is a sorted-key join, not a hash map: both sides pack
``(d, seq)`` into one int64 composite key
(:func:`repro.temporal.records.pack_probe_keys`), the last segment keeps
a lazily built (and persisted) sort permutation over that key
(:attr:`repro.temporal.forest.EdgeTemporalIndex.probe_order`), and the
probe answers with two ``np.searchsorted`` passes plus a ragged gather —
no Python dict, no per-row loop, no ``np.isin`` full-column scan.
Duplicate ``(d, seq)`` keys among the first-segment matches keep the
*last* occurrence in match order, replicating the historical dict
overwrite; emission order reproduces the historical candidate scan by
sorting the joined rows back to ascending column position.

The retrieval is split in two phases so a sharded index can run them per
shard and merge: :func:`first_segment_matches` (Procedure 3's scan and
filters, returning the matched first-segment rows) and
:func:`probe_travel_times` (Procedures 3-4's map build and probe,
returning the travel times plus the entry timestamps that order them).
Merging per-shard outputs on ``(entry time, shard order)`` reproduces the
monolithic row order exactly, because each shard's rows are a stable
restriction of the monolithic t-sorted columns.

Both phases also come in grouped ``*_many`` forms that answer a whole
demand set with the per-edge work shared: queries are grouped by first
(respectively last) edge, each edge's interval selection and ISA-bound
table is built once for the group over stacked query bounds, and the
probe join runs one concatenated ``searchsorted`` per edge.  The grouped
forms are bit-identical to mapping the scalar forms over the set — the
batch executor and the shard router both rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np
import numpy.typing as npt

from ..core.intervals import (
    FixedInterval,
    PeriodicInterval,
    TimeInterval,
    is_periodic,
)
from ..core.spq import StrictPathQuery
from ..temporal.forest import EdgeTemporalIndex
from ..temporal.records import TraversalColumns, pack_probe_keys

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .index import SNTIndex
    from .reader import IndexReader

__all__ = [
    "TravelTimeResult",
    "first_segment_matches",
    "first_segment_matches_many",
    "probe_travel_times",
    "probe_travel_times_many",
    "get_travel_times",
    "monolithic_travel_times",
    "monolithic_travel_times_many",
    "count_matches",
    "monolithic_count_matches",
]

Int64Array = npt.NDArray[np.int64]
Float64Array = npt.NDArray[np.float64]
IsaRanges = List[Tuple[int, int, int]]
#: One grouped-scan work item: ``(query, exclude_ids, beta, isa_ranges)``.
MatchItem = Tuple[StrictPathQuery, Sequence[int], Optional[int],
                  Optional[IsaRanges]]
#: One grouped-probe work item: ``(query, selected_rows, first_columns)``.
ProbeEntry = Tuple[StrictPathQuery, Int64Array, TraversalColumns]


@dataclass
class TravelTimeResult:
    """Outcome of one strict path sub-query."""

    #: Retrieved travel times ``X`` (or the single fallback estimate).
    values: np.ndarray
    #: Number of trajectories matched in the first-segment scan.
    n_matched: int
    #: True when ``values`` holds the ``estimateTT`` speed-limit fallback.
    from_fallback: bool = False
    #: True when a periodic query matched fewer than ``beta`` trajectories
    #: (Procedure 5 line 7) and therefore returned no values.
    insufficient: bool = False

    @property
    def is_empty(self) -> bool:
        return self.values.size == 0

    # -- wire form (external cache tier contract) ---------------------- #

    def to_wire(self) -> Dict[str, object]:
        """JSON-compatible wire form, inverse of :meth:`from_wire`.

        The payload format of the cross-process
        :class:`~repro.service.cachetier.SharedCacheTier`: float64
        travel times round-trip exactly through JSON ``repr``, so a
        deserialised result is bit-identical to the computed one.
        """
        return {
            "values": np.asarray(self.values, dtype=np.float64).tolist(),
            "n_matched": int(self.n_matched),
            "from_fallback": bool(self.from_fallback),
            "insufficient": bool(self.insufficient),
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "TravelTimeResult":
        values = np.asarray(payload["values"], dtype=np.float64)
        values.setflags(write=False)
        return cls(
            values=values,
            n_matched=int(payload["n_matched"]),  # type: ignore[arg-type]
            from_fallback=bool(payload["from_fallback"]),
            insufficient=bool(payload["insufficient"]),
        )


def _interval_rows(
    index_edge: EdgeTemporalIndex, interval: TimeInterval
) -> Int64Array:
    if is_periodic(interval):
        assert isinstance(interval, PeriodicInterval)
        return index_edge.rows_periodic(interval.start_tod, interval.duration)
    assert isinstance(interval, FixedInterval)
    return index_edge.rows_fixed(interval.start, interval.end)


def _interval_rows_many(
    index_edge: EdgeTemporalIndex, intervals: Sequence[TimeInterval]
) -> List[Int64Array]:
    """Batched :func:`_interval_rows`: fixed and periodic predicates each
    resolve through one stacked bounds pass on the edge."""
    fixed_slots: List[int] = []
    periodic_slots: List[int] = []
    for i, interval in enumerate(intervals):
        (periodic_slots if is_periodic(interval) else fixed_slots).append(i)
    results: List[Optional[Int64Array]] = [None] * len(intervals)
    if fixed_slots:
        los: List[int] = []
        his: List[int] = []
        for i in fixed_slots:
            interval = intervals[i]
            assert isinstance(interval, FixedInterval)
            los.append(interval.start)
            his.append(interval.end)
        for i, rows in zip(fixed_slots, index_edge.rows_fixed_many(los, his)):
            results[i] = rows
    if periodic_slots:
        starts: List[int] = []
        durations: List[int] = []
        for i in periodic_slots:
            interval = intervals[i]
            assert isinstance(interval, PeriodicInterval)
            starts.append(interval.start_tod)
            durations.append(interval.duration)
        for i, rows in zip(
            periodic_slots, index_edge.rows_periodic_many(starts, durations)
        ):
            results[i] = rows
    return [
        rows if rows is not None else np.empty(0, dtype=np.int64)
        for rows in results
    ]


def first_segment_matches(
    index: "SNTIndex",
    query: StrictPathQuery,
    exclude_ids: Sequence[int] = (),
    beta: Optional[int] = None,
    isa_ranges: Optional[IsaRanges] = None,
) -> Optional[Tuple[Int64Array, TraversalColumns]]:
    """Rows of the first segment matching all predicates, beta-cut.

    Returns ``(row_positions, columns)`` of the first segment's index, or
    ``None`` when the path does not occur / the edge has no data.  Row
    positions are in ascending entry time (ties in column order), so a
    prefix of them is exactly the paper's early-terminated match set.
    ``isa_ranges`` lets callers share one backward search between the
    cardinality estimate and the retrieval (the engine does this).
    """
    ranges = (
        isa_ranges if isa_ranges is not None else index.isa_ranges(query.path)
    )
    if not ranges:
        return None
    phi0 = index.edge_index(query.path[0])
    if phi0 is None or len(phi0) == 0:
        return None
    rows = _interval_rows(phi0, query.interval)
    if rows.size == 0:
        columns = phi0.columns
        return rows, columns
    columns = phi0.columns

    st_per_w = np.zeros(index.n_partitions, dtype=np.int64)
    ed_per_w = np.zeros(index.n_partitions, dtype=np.int64)
    for w, st, ed in ranges:
        st_per_w[w], ed_per_w[w] = st, ed
    w_sel = columns.w[rows]
    isa = columns.isa[rows]
    mask = (isa >= st_per_w[w_sel]) & (isa < ed_per_w[w_sel])

    if query.user is not None:
        mask &= index.users[columns.d[rows]] == query.user
    if len(exclude_ids):
        mask &= np.isin(
            columns.d[rows],
            np.asarray(exclude_ids, dtype=np.int64),
            invert=True,
        )

    selected = rows[mask]
    if beta is not None and selected.size > beta:
        selected = selected[:beta]  # ascending entry time (Procedure 3)
    return selected, columns


def first_segment_matches_many(
    index: "SNTIndex", items: Sequence[MatchItem]
) -> List[Optional[Tuple[Int64Array, TraversalColumns]]]:
    """Grouped :func:`first_segment_matches` over a demand set.

    Items sharing a first edge are answered together: the edge's
    interval selection runs once over stacked query bounds, the per-``w``
    ISA bound table is built for the whole group in one scatter, and the
    ISA/user masks evaluate over the group's concatenated candidate
    rows.  Per item, the output (including the ``beta`` prefix cut and
    the ``None``-vs-empty distinction) is exactly the scalar function's.
    """
    n_items = len(items)
    results: List[Optional[Tuple[Int64Array, TraversalColumns]]] = (
        [None] * n_items
    )
    ranges_list: List[Optional[IsaRanges]] = [item[3] for item in items]
    missing = [i for i in range(n_items) if ranges_list[i] is None]
    if missing:
        # One batched backward search resolves every un-resolved path.
        resolved = index.isa_ranges_many(
            [items[i][0].path for i in missing]
        )
        for i, ranges in zip(missing, resolved):
            ranges_list[i] = ranges

    by_edge: Dict[int, List[int]] = {}
    for i in range(n_items):
        if not ranges_list[i]:
            continue  # no occurrence anywhere: scalar returns None
        by_edge.setdefault(int(items[i][0].path[0]), []).append(i)

    for edge, slots in by_edge.items():
        phi0 = index.edge_index(edge)
        if phi0 is None or len(phi0) == 0:
            continue  # scalar returns None for every query on this edge
        columns = phi0.columns
        rows_list = _interval_rows_many(
            phi0, [items[i][0].interval for i in slots]
        )
        sizes = np.asarray([rows.size for rows in rows_list], dtype=np.int64)
        total = int(sizes.sum())
        if total == 0:
            for i, rows in zip(slots, rows_list):
                results[i] = (rows, columns)
            continue

        # Stacked predicate evaluation over the group's candidates,
        # slot-major so each query's chunk stays one contiguous slice.
        rows_cat = np.concatenate(rows_list)
        slot_cat = np.repeat(np.arange(len(slots)), sizes)
        slot_idx: List[int] = []
        w_idx: List[int] = []
        st_vals: List[int] = []
        ed_vals: List[int] = []
        for k, i in enumerate(slots):
            ranges = ranges_list[i]
            assert ranges is not None
            for w, st, ed in ranges:
                slot_idx.append(k)
                w_idx.append(w)
                st_vals.append(st)
                ed_vals.append(ed)
        st2 = np.zeros((len(slots), index.n_partitions), dtype=np.int64)
        ed2 = np.zeros((len(slots), index.n_partitions), dtype=np.int64)
        st2[slot_idx, w_idx] = st_vals
        ed2[slot_idx, w_idx] = ed_vals
        w_cat = columns.w[rows_cat]
        isa_cat = columns.isa[rows_cat]
        d_cat = columns.d[rows_cat]
        mask = (isa_cat >= st2[slot_cat, w_cat]) & (
            isa_cat < ed2[slot_cat, w_cat]
        )

        if any(items[i][0].user is not None for i in slots):
            has_user = np.asarray(
                [items[i][0].user is not None for i in slots], dtype=bool
            )
            user_arr = np.asarray(
                [
                    items[i][0].user if items[i][0].user is not None else 0
                    for i in slots
                ],
                dtype=np.int64,
            )
            mask &= ~has_user[slot_cat] | (
                index.users[d_cat] == user_arr[slot_cat]
            )

        bounds = np.concatenate(([0], np.cumsum(sizes)))
        for k, i in enumerate(slots):
            b0, b1 = int(bounds[k]), int(bounds[k + 1])
            exclude_ids = items[i][1]
            if len(exclude_ids):
                mask[b0:b1] &= np.isin(
                    d_cat[b0:b1],
                    np.asarray(exclude_ids, dtype=np.int64),
                    invert=True,
                )
            selected = rows_cat[b0:b1][mask[b0:b1]]
            beta = items[i][2]
            if beta is not None and selected.size > beta:
                selected = selected[:beta]
            results[i] = (selected, columns)
    return results


def _dedup_probe_targets(
    columns: TraversalColumns, selected: Int64Array, length: int
) -> Tuple[Int64Array, Float64Array]:
    """buildMap as arrays: sorted unique probe keys and their ``a - TT``.

    The probe key of a first-segment match ``(d, seq)`` on a path of
    ``length`` segments is ``(d, seq + length - 1)`` — the ``(d, seq)``
    pair its last-segment record carries.  Duplicate keys keep the last
    occurrence in match order, replicating the dict overwrite of the
    historical per-row ``buildMap``.
    """
    first_seq = np.asarray(columns.seq[selected], dtype=np.int64)
    targets = pack_probe_keys(
        columns.d[selected], first_seq + np.int64(length - 1)
    )
    diffs = columns.a[selected] - columns.tt[selected]
    if targets.size == 0:
        return targets, np.asarray(diffs, dtype=np.float64)
    order = np.argsort(targets, kind="stable")
    sorted_targets = targets[order]
    keep = np.empty(sorted_targets.size, dtype=bool)
    keep[:-1] = sorted_targets[1:] != sorted_targets[:-1]
    keep[-1] = True
    return (
        np.asarray(sorted_targets[keep], dtype=np.int64),
        np.asarray(diffs[order][keep], dtype=np.float64),
    )


def _join_probe(
    phi_last: EdgeTemporalIndex,
    lo: Int64Array,
    counts: Int64Array,
    diffs: Float64Array,
) -> Tuple[Float64Array, Int64Array]:
    """Gather and emit the matches of one query's sorted-key probe.

    ``lo``/``counts`` bound each target's run in the last segment's
    probe order; the ragged gather materialises every hit, and sorting
    the hit rows ascending restores the historical candidate-scan
    emission order (rows are unique — one ``(d, seq)`` key per row).
    """
    total = int(counts.sum())
    last = phi_last.columns
    if total == 0:
        return (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64))
    starts = np.repeat(lo, counts)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    flat = starts + np.arange(total, dtype=np.int64) - offsets
    rows = phi_last.probe_order[flat]
    target_idx = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    emit = np.argsort(rows, kind="stable")
    rows_emit = rows[emit]
    values = last.a[rows_emit] - diffs[target_idx[emit]]
    return (
        np.asarray(values, dtype=np.float64),
        np.asarray(last.t[rows_emit], dtype=np.int64),
    )


def probe_travel_times(
    index: "SNTIndex",
    query: StrictPathQuery,
    selected: Int64Array,
    columns: TraversalColumns,
) -> Tuple[Float64Array, Int64Array]:
    """Procedures 3-4 given the (already beta-cut) first-segment rows.

    Returns ``(values, order_t)``: the travel times of the matched
    traversals plus, per value, the entry timestamp of the record that
    emitted it (the first segment for single-segment paths, the last
    segment otherwise).  ``values`` is in the scan order of this index's
    columns; ``order_t`` is what a sharded router merges on to reproduce
    the monolithic emission order across shards.
    """
    return probe_travel_times_many(index, [(query, selected, columns)])[0]


def probe_travel_times_many(
    index: "SNTIndex", entries: Sequence[ProbeEntry]
) -> List[Tuple[Float64Array, Int64Array]]:
    """Grouped :func:`probe_travel_times` over a demand set.

    Entries sharing a last edge share its sorted probe-key order: the
    group's probe targets are stacked and bounded with **one**
    ``searchsorted`` pair per edge, then each entry gathers and emits
    its own matches.  Single-segment paths bypass the join — their
    values are the first segment's ``TT`` column directly.
    """
    results: List[Optional[Tuple[Float64Array, Int64Array]]] = (
        [None] * len(entries)
    )
    by_edge: Dict[int, List[int]] = {}
    for i, (query, selected, columns) in enumerate(entries):
        if query.length == 1:
            # The first segment is the last: X is the TT column directly.
            values = columns.tt[selected].astype(np.float64, copy=True)
            results[i] = (values, np.asarray(columns.t[selected],
                                             dtype=np.int64))
        else:
            by_edge.setdefault(int(query.path[-1]), []).append(i)

    for edge, slots in by_edge.items():
        phi_last = index.edge_index(edge)
        if phi_last is None:  # cannot happen when the ISA range was non-empty
            for i in slots:
                results[i] = (
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.int64),
                )
            continue
        target_parts: List[Int64Array] = []
        diff_parts: List[Float64Array] = []
        for i in slots:
            query, selected, columns = entries[i]
            targets, diffs = _dedup_probe_targets(
                columns, selected, query.length
            )
            target_parts.append(targets)
            diff_parts.append(diffs)
        keys_sorted = phi_last.probe_keys_sorted()
        targets_cat = np.concatenate(target_parts)
        lo_cat = np.asarray(
            np.searchsorted(keys_sorted, targets_cat, side="left"),
            dtype=np.int64,
        )
        hi_cat = np.asarray(
            np.searchsorted(keys_sorted, targets_cat, side="right"),
            dtype=np.int64,
        )
        counts_cat = hi_cat - lo_cat
        t_sizes = [targets.size for targets in target_parts]
        t_bounds = np.concatenate(([0], np.cumsum(t_sizes)))
        for k, i in enumerate(slots):
            ta, tb = int(t_bounds[k]), int(t_bounds[k + 1])
            results[i] = _join_probe(
                phi_last, lo_cat[ta:tb], counts_cat[ta:tb], diff_parts[k]
            )
    return [
        result
        if result is not None
        else (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64))
        for result in results
    ]


def get_travel_times(
    index: "IndexReader",
    query: StrictPathQuery,
    fallback_tt: Optional[Callable[[int], float]] = None,
    exclude_ids: Sequence[int] = (),
    isa_ranges: Optional[IsaRanges] = None,
) -> TravelTimeResult:
    """Procedure 5: retrieve ``X`` for ``spq(P, I, f, beta)``.

    Accepts any :class:`~repro.sntindex.reader.IndexReader` and
    dispatches through it — the monolithic index runs
    :func:`monolithic_travel_times` below, a sharded index scatters the
    procedure per shard and merges.

    Parameters
    ----------
    index:
        The index reader.
    query:
        The (sub-)query.
    fallback_tt:
        ``estimateTT`` callable for the speed-limit fallback on empty
        single-segment results (Procedure 5 lines 12-13); usually
        ``network.estimate_tt``.
    exclude_ids:
        Trajectory ids excluded from matching (used by the evaluation
        workload to keep the query trajectory itself out of its answer).
    """
    return index.get_travel_times(
        query,
        fallback_tt=fallback_tt,
        exclude_ids=exclude_ids,
        isa_ranges=isa_ranges,
    )


def _classify_scan(
    query: StrictPathQuery,
    n_matched: int,
    fallback_tt: Optional[Callable[[int], float]],
) -> Optional[TravelTimeResult]:
    """Procedure 5's pre-probe classification; ``None`` means probe."""
    empty = np.empty(0, dtype=np.float64)
    if (
        query.beta is not None
        and n_matched < query.beta
        and is_periodic(query.interval)
    ):
        # Procedure 5 line 7: periodic queries fail below the cardinality
        # requirement; fixed-interval queries proceed regardless of beta.
        return TravelTimeResult(empty, n_matched, insufficient=True)
    if n_matched == 0:
        if query.length == 1 and fallback_tt is not None:
            estimate = np.asarray([fallback_tt(query.path[0])])
            return TravelTimeResult(estimate, 0, from_fallback=True)
        return TravelTimeResult(empty, 0)
    return None


def monolithic_travel_times(
    index: "SNTIndex",
    query: StrictPathQuery,
    fallback_tt: Optional[Callable[[int], float]] = None,
    exclude_ids: Sequence[int] = (),
    isa_ranges: Optional[IsaRanges] = None,
) -> TravelTimeResult:
    """Procedure 5 over one :class:`SNTIndex`'s own columns.

    The implementation behind :meth:`SNTIndex.get_travel_times`; it
    needs the raw per-segment columns, so sharded readers never reach
    it directly — their router runs the two phases per shard instead.
    """
    matches = first_segment_matches(
        index,
        query,
        exclude_ids=exclude_ids,
        beta=query.beta,
        isa_ranges=isa_ranges,
    )
    if matches is None:
        selected: Int64Array = np.empty(0, dtype=np.int64)
        columns: Optional[TraversalColumns] = None
    else:
        selected, columns = matches

    n_matched = int(selected.size)
    early = _classify_scan(query, n_matched, fallback_tt)
    if early is not None:
        return early
    assert columns is not None
    result, _ = probe_travel_times(index, query, selected, columns)
    return TravelTimeResult(result, n_matched)


def monolithic_travel_times_many(
    index: "SNTIndex",
    items: Sequence[Tuple[StrictPathQuery, Sequence[int],
                          Optional[IsaRanges]]],
    fallback_tt: Optional[Callable[[int], float]] = None,
) -> List[TravelTimeResult]:
    """Procedure 5 for a demand set over one index, scans grouped.

    ``items`` are ``(query, exclude_ids, isa_ranges)`` triples — the
    deduplicated demand set of one batch-executor round.  Both phases
    run through their grouped forms (:func:`first_segment_matches_many`,
    :func:`probe_travel_times_many`) so queries sharing a first or last
    edge share that edge's selection and join work; every per-query
    decision (beta cut, insufficient/fallback classification) is
    unchanged, making each result exactly what
    :func:`monolithic_travel_times` answers for that item alone.
    """
    matches = first_segment_matches_many(
        index,
        [
            (query, exclude_ids, query.beta, isa_ranges)
            for query, exclude_ids, isa_ranges in items
        ],
    )
    results: List[Optional[TravelTimeResult]] = [None] * len(items)
    probe_slots: List[int] = []
    probe_entries: List[ProbeEntry] = []
    matched_counts: List[int] = [0] * len(items)
    for i, ((query, _, _), match) in enumerate(zip(items, matches)):
        if match is None:
            n_matched = 0
        else:
            selected, columns = match
            n_matched = int(selected.size)
        matched_counts[i] = n_matched
        early = _classify_scan(query, n_matched, fallback_tt)
        if early is not None:
            results[i] = early
            continue
        assert match is not None
        probe_slots.append(i)
        probe_entries.append((query, match[0], match[1]))
    for i, (values, _) in zip(
        probe_slots, probe_travel_times_many(index, probe_entries)
    ):
        results[i] = TravelTimeResult(values, matched_counts[i])
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def count_matches(
    index: "IndexReader",
    path: Sequence[int],
    interval: TimeInterval,
    user: Optional[int] = None,
    exclude_ids: Sequence[int] = (),
    limit: Optional[int] = None,
) -> int:
    """Exact number of trajectories matching a strict path predicate.

    Used by the longest-prefix splitter (``sigma_L``) and as the q-error
    ground truth ``n = |T|``.  ``limit`` caps the count (early
    termination) when only a threshold comparison is needed.  Dispatches
    through the :class:`~repro.sntindex.reader.IndexReader` surface, so
    monolithic and sharded readers both work.
    """
    return index.count_matches(
        path,
        interval,
        user=user,
        exclude_ids=exclude_ids,
        limit=limit,
    )


def monolithic_count_matches(
    index: "SNTIndex",
    path: Sequence[int],
    interval: TimeInterval,
    user: Optional[int] = None,
    exclude_ids: Sequence[int] = (),
    limit: Optional[int] = None,
) -> int:
    """The count behind :meth:`SNTIndex.count_matches` (one index)."""
    query = StrictPathQuery(
        path=tuple(path), interval=interval, user=user, beta=limit
    )
    matches = first_segment_matches(
        index, query, exclude_ids=exclude_ids, beta=limit
    )
    if matches is None:
        return 0
    selected, _ = matches
    return int(selected.size)
