"""The ``IndexReader`` protocol: what the query stack needs from an index.

:class:`repro.core.engine.QueryEngine`, the cardinality estimator, and
the batched service historically consumed :class:`SNTIndex` directly.
This module names the surface they actually touch, so any structure that
can answer these calls — the monolithic :class:`SNTIndex` or the
time-sliced :class:`repro.sntindex.sharded.ShardedSNTIndex` — plugs into
the same engine unchanged:

* the **spatial** side: per-partition ISA ranges of a path and the
  derived traversal count (``getISARange``, Section 4.3.2);
* the **temporal** side: per-segment index statistics for the estimator
  (record counts, time bounds, exact range counts) via
  :meth:`IndexReader.edge_index`, and time-of-day selectivity via
  :attr:`IndexReader.tod_store`;
* the **retrieval** side: Procedure 5 (:meth:`IndexReader.get_travel_times`)
  and the exact match counter backing the ``sigma_L`` splitter
  (:meth:`IndexReader.count_matches`);
* the **user** container ``U: d -> u``;
* scalar identity: ``t_min``/``t_max``, ``alphabet_size``, ``kind``,
  ``n_partitions``, and the mutation ``epoch`` consumed by shared caches.

Partition ids returned by :meth:`isa_ranges` are globally dense
(``0 .. n_partitions - 1``) in temporal order, and the objects returned
by :meth:`edge_index` only promise the *statistics* subset used by the
estimator (``__len__``, ``count_fixed``, ``min_t``, ``max_t``,
``supports_fast_count``) — the full :class:`EdgeTemporalIndex` of the
monolithic index is a superset of that.
"""

from __future__ import annotations

from typing import (
    Callable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

__all__ = ["EdgeStats", "IndexReader"]


@runtime_checkable
class EdgeStats(Protocol):
    """Per-segment statistics consumed by the cardinality estimator."""

    def __len__(self) -> int:
        ...

    @property
    def supports_fast_count(self) -> bool:
        ...

    def min_t(self) -> Optional[int]:
        ...

    def max_t(self) -> Optional[int]:
        ...

    def count_fixed(self, lo: int, hi: int) -> int:
        ...


@runtime_checkable
class IndexReader(Protocol):
    """Read surface of a travel-time index (monolithic or sharded)."""

    t_min: int
    t_max: int
    alphabet_size: int
    kind: str
    #: Bumped on every mutation (append); immutable readers stay at 0.
    #: Shared caches compare it to drop entries from earlier index states.
    epoch: int

    @property
    def n_partitions(self) -> int:
        ...

    # -- spatial ------------------------------------------------------- #

    def isa_ranges(self, path: Sequence[int]) -> List[Tuple[int, int, int]]:
        ...

    def path_traversal_count(self, path: Sequence[int]) -> int:
        ...

    def contains_path(self, path: Sequence[int]) -> bool:
        ...

    # -- temporal / estimator ------------------------------------------ #

    def edge_index(self, edge: int) -> Optional[EdgeStats]:
        ...

    @property
    def tod_store(self):
        ...

    # -- users --------------------------------------------------------- #

    def user_of(self, traj_id: int) -> int:
        ...

    def has_trajectory(self, traj_id: int) -> bool:
        ...

    # -- retrieval ----------------------------------------------------- #

    def get_travel_times(
        self,
        query,
        fallback_tt: Optional[Callable[[int], float]] = None,
        exclude_ids: Sequence[int] = (),
        isa_ranges=None,
    ):
        ...

    def count_matches(
        self,
        path: Sequence[int],
        interval,
        user: Optional[int] = None,
        exclude_ids: Sequence[int] = (),
        limit: Optional[int] = None,
    ) -> int:
        ...
