"""Time-sliced sharding of the SNT-index (ROADMAP scale-out items).

The paper's index is already temporally partitioned — one FM-index per
time window of trajectory *start* times (Section 4.3.2) — which makes
time-range sharding the natural scale-out axis: a **shard** is a
contiguous run of those temporal partitions, built as a self-contained
:class:`SNTIndex` (so shards build in parallel worker processes and
persist with the unchanged PR-1 directory format), and a **router**
answers the :class:`~repro.sntindex.reader.IndexReader` protocol over
the shard set.

Bit-identical answers
---------------------
``ShardedSNTIndex`` answers every query *bit-identically* to the
monolithic ``SNTIndex`` built from the same corpus with the same
``partition_days``.  That guarantee rests on three invariants:

* **Partition alignment** — shard boundaries coincide with temporal
  partition boundaries and every shard receives the *global* window
  bounds (:meth:`SNTIndex.build_from_groups`), so each shard's FM
  partitions are byte-for-byte the monolithic ones and global partition
  ids are the concatenation of the shards' local ids.  This is also why
  sharding requires ``partition_days``: the FULL configuration has a
  single FM-index over the whole corpus, and splitting *that* would
  change per-partition estimator inputs.
* **Stable restriction** — a shard's per-segment columns are the
  monolithic t-sorted columns restricted to the shard's trajectories,
  in the same relative order.  Merging per-shard scan outputs on
  ``(entry time, shard order)`` with a stable sort therefore reproduces
  the monolithic row order exactly — including Procedure 3's ascending
  entry-time ``beta`` cut, which the router applies globally across the
  per-shard (already capped) prefixes.
* **Additive statistics** — ISA range widths, CSS range counts, and
  time-of-day histograms are integer-exact per partition, so the
  estimator views (:class:`_ShardedEdgeStats`, :class:`_ShardedTodStore`)
  reproduce the monolithic estimates bit-for-bit.

Appendable staging shard
------------------------
``append(trajectories)`` accumulates new trajectories in a small
*staging* shard that is rebuilt on each call — cheap, because only the
staged tail is rebuilt; the sealed shards are untouched.  Appends must
be strictly newer than every sealed shard's time window: that keeps the
global partition enumeration identical to what a from-scratch monolithic
build over the combined corpus would produce, preserving bit-identical
answers *after* appends too.  Each append bumps :attr:`epoch`, which
:class:`repro.service.SubQueryCache` watches to drop entries cached
against earlier index states.  ``seal_staging()`` promotes a grown
staging shard to a sealed one (pure bookkeeping — no epoch bump, since
no indexed content changes).
"""

from __future__ import annotations

import json
import pickle
import threading
import time
import uuid
from bisect import bisect_right
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import SECONDS_PER_DAY
from ..core.intervals import is_periodic
from ..forkpool import fork_map
from ..errors import (
    IndexError_,
    IndexFormatError,
    MissingUserError,
    PersistenceError,
    ShardError,
    UnknownTrajectoryError,
)
from ..trajectories.model import TrajectorySet
from .index import BuildStats, SNTIndex, assign_time_windows, window_bounds
from .persistence import (
    META_FILE,
    StoreLike,
    load_index,
    read_meta,
    validate_identity,
    write_index_payload,
)
from .store import as_store
from .procedures import (
    TravelTimeResult,
    first_segment_matches_many,
    monolithic_count_matches,
    probe_travel_times_many,
)

__all__ = [
    "ShardedSNTIndex",
    "ShardRouter",
    "ShardStats",
    "SHARDED_FORMAT_NAME",
    "SHARDED_FORMAT_VERSION",
    "MANIFEST_FILE",
    "save_sharded_index",
    "load_sharded_index",
    "read_sharded_meta",
    "read_any_meta",
    "load_any_index",
]

SHARDED_FORMAT_NAME = "snt-sharded-index"
#: v2: shard directories use the pickle-free mmap payload format
#: (:data:`repro.sntindex.persistence.FORMAT_VERSION` 2).
SHARDED_FORMAT_VERSION = 2
MANIFEST_FILE = "manifest.json"
STAGING_DIR = "staging"
#: Pickled staged tail (not the text trajectory format: ``%g`` rounding
#: there would change rebuilt staging values after a restart, breaking
#: the bit-identical contract; the directory already embeds trusted
#: pickles, so the trust model is unchanged).
STAGED_TRAJECTORIES_FILE = "staging_trajectories.pkl"


# ---------------------------------------------------------------------- #
# Shard bookkeeping
# ---------------------------------------------------------------------- #


@dataclass
class _ShardEntry:
    """One shard plus the routing metadata the router needs."""

    index: SNTIndex
    label: str
    #: Occupied global temporal-bucket range (inclusive) of the shard's
    #: trajectories; appends must land strictly after every sealed
    #: shard's ``bucket_hi``.
    bucket_lo: int
    bucket_hi: int
    #: Actual traversal-timestamp bounds (inclusive) across the shard's
    #: segments — pruning bounds, wider than the bucket window because a
    #: trajectory's traversals extend past its start bucket.
    t_lo: int
    t_hi: int
    #: Index scans served by this shard (router statistics).
    n_scans: int = 0

    @classmethod
    def wrap(
        cls, index: SNTIndex, label: str, bucket_lo: int, bucket_hi: int
    ) -> "_ShardEntry":
        t_lo, t_hi = index.data_time_bounds()
        return cls(
            index=index,
            label=label,
            bucket_lo=int(bucket_lo),
            bucket_hi=int(bucket_hi),
            t_lo=t_lo,
            t_hi=t_hi,
        )


@dataclass(frozen=True)
class ShardStats:
    """Routing statistics of a :class:`ShardRouter`.

    One instance always describes counters accumulated against a
    *single* shard topology: ``n_shards`` is the shard count the
    counters were recorded under, so ``per_shard_scans`` has exactly
    that many labels and ``prune_rate`` relates scans and prunes of the
    same denominator.  :meth:`ShardedSNTIndex.shard_stats` merges the
    per-epoch snapshots into lifetime totals (labels remapped to the
    current topology); :meth:`ShardedSNTIndex.shard_stats_history`
    returns the raw frozen segments.
    """

    #: Retrieval/count dispatches routed (one per sub-query scan).
    n_dispatches: int
    #: Sum over dispatches of shards actually scanned.
    n_shard_scans: int
    #: Shards skipped by interval pruning, summed over dispatches.
    n_shards_pruned: int
    #: Scans per shard label, in shard order (staging last).
    per_shard_scans: Dict[str, int]
    #: Shard count of the topology these counters were recorded under.
    n_shards: int = 0

    @property
    def prune_rate(self) -> float:
        total = self.n_shard_scans + self.n_shards_pruned
        return self.n_shards_pruned / total if total else 0.0


class _ShardedTodStore:
    """Global-partition view over the shards' time-of-day stores.

    Each global partition lives wholly inside one shard, so a lookup
    maps the global id to ``(shard, local id)`` and delegates — the
    shard's histogram *is* the monolithic one for that partition.
    """

    def __init__(self, entries: Sequence[_ShardEntry], offsets: Sequence[int]):
        self._entries = list(entries)
        self._offsets = list(offsets)
        # Read off the index scalar, not the store: touching the store
        # would materialise a lazily loaded shard's histogram dict.
        self.bucket_width_s = entries[0].index.tod_bucket_s

    def _locate(self, partition: int) -> Tuple[SNTIndex, int]:
        position = bisect_right(self._offsets, int(partition)) - 1
        if not 0 <= position < len(self._entries):
            raise IndexError_(f"unknown partition id {partition}")
        return (
            self._entries[position].index,
            int(partition) - self._offsets[position],
        )

    def total(self, edge: int, partition: int = 0) -> int:
        index, local = self._locate(partition)
        return index.tod_store.total(edge, partition=local)

    def count_window(
        self, edge: int, start_tod: int, duration: int, partition: int = 0
    ) -> float:
        index, local = self._locate(partition)
        return index.tod_store.count_window(
            edge, start_tod, duration, partition=local
        )

    def selectivity(
        self, edge: int, start_tod: int, duration: int, partition: int = 0
    ) -> float:
        index, local = self._locate(partition)
        return index.tod_store.selectivity(
            edge, start_tod, duration, partition=local
        )

    def __len__(self) -> int:
        return sum(len(e.index.tod_store) for e in self._entries)

    def size_in_bytes(self) -> int:
        return sum(e.index.tod_store.size_in_bytes() for e in self._entries)


class _ShardedEdgeStats:
    """Estimator statistics of one segment aggregated across shards.

    Implements the :class:`repro.sntindex.reader.EdgeStats` subset of
    ``EdgeTemporalIndex``.  Counts and record totals are integer-exact
    sums, and time bounds are min/max over the shards, so the estimator
    computes the same floats it would over the monolithic forest.
    """

    __slots__ = ("_phis", "kind")

    def __init__(self, phis, kind: str):
        self._phis = phis
        self.kind = kind

    def __len__(self) -> int:
        return sum(len(phi) for phi in self._phis)

    @property
    def supports_fast_count(self) -> bool:
        return self.kind == "css"

    def min_t(self) -> Optional[int]:
        bounds = [phi.min_t() for phi in self._phis]
        bounds = [b for b in bounds if b is not None]
        return min(bounds) if bounds else None

    def max_t(self) -> Optional[int]:
        bounds = [phi.max_t() for phi in self._phis]
        bounds = [b for b in bounds if b is not None]
        return max(bounds) if bounds else None

    def count_fixed(self, lo: int, hi: int) -> int:
        return sum(phi.count_fixed(lo, hi) for phi in self._phis)

    def count_periodic(self, start_tod: int, duration: int) -> int:
        return sum(
            phi.count_periodic(start_tod, duration) for phi in self._phis
        )


# ---------------------------------------------------------------------- #
# Router
# ---------------------------------------------------------------------- #


class ShardRouter:
    """Prunes, fans out, and merges retrieval over the shard set.

    The router owns the ordered shard entries (sealed shards in temporal
    order, staging last — which is also global partition order), the
    per-shard partition-id offsets, and the scan/prune statistics.
    Merging is what keeps the answers bit-identical to the monolithic
    index; see the module docstring for the argument.
    """

    def __init__(self, entries: Sequence[_ShardEntry]):
        if not entries:
            raise ShardError("a sharded index needs at least one shard")
        self.entries: List[_ShardEntry] = list(entries)
        self.offsets: List[int] = []
        cursor = 0
        for entry in self.entries:
            self.offsets.append(cursor)
            cursor += entry.index.n_partitions
        self.n_partitions = cursor
        self._lock = threading.Lock()
        self._n_dispatches = 0
        self._n_pruned = 0

    # -- routing -------------------------------------------------------- #

    def route(self, interval) -> List[int]:
        """Positions of shards whose data can overlap ``interval``.

        Fixed intervals prune on the shards' traversal-time bounds
        (pruned shards would contribute zero rows, so pruning never
        changes answers).  Periodic time-of-day predicates select across
        all days and cannot prune.
        """
        if interval is None or is_periodic(interval):
            return list(range(len(self.entries)))
        lo, hi = interval.start, interval.end  # rows are lo <= t < hi
        return [
            position
            for position, entry in enumerate(self.entries)
            if entry.t_lo < hi and entry.t_hi >= lo
        ]

    def _record_dispatch(self, n_routed: int) -> None:
        with self._lock:
            self._n_dispatches += 1
            self._n_pruned += len(self.entries) - n_routed

    def _record_scan(self, position: int) -> None:
        with self._lock:
            self.entries[position].n_scans += 1

    def stats(self) -> ShardStats:
        with self._lock:
            return ShardStats(
                n_dispatches=self._n_dispatches,
                n_shard_scans=sum(e.n_scans for e in self.entries),
                n_shards_pruned=self._n_pruned,
                per_shard_scans={e.label: e.n_scans for e in self.entries},
                n_shards=len(self.entries),
            )

    def drain(self) -> ShardStats:
        """Read-and-zero: the stats since the last drain, atomically.

        Used by :meth:`ShardedSNTIndex._snapshot_stats` to close a
        per-topology accounting segment before the shard set mutates;
        surviving entries carry on from zero so nothing is counted
        twice.
        """
        with self._lock:
            snapshot = ShardStats(
                n_dispatches=self._n_dispatches,
                n_shard_scans=sum(e.n_scans for e in self.entries),
                n_shards_pruned=self._n_pruned,
                per_shard_scans={e.label: e.n_scans for e in self.entries},
                n_shards=len(self.entries),
            )
            self._n_dispatches = 0
            self._n_pruned = 0
            for entry in self.entries:
                entry.n_scans = 0
            return snapshot

    # -- reader surface ------------------------------------------------- #

    def isa_ranges(self, path: Sequence[int]) -> List[Tuple[int, int, int]]:
        ranges: List[Tuple[int, int, int]] = []
        for entry, offset in zip(self.entries, self.offsets):
            for w, st, ed in entry.index.isa_ranges(path):
                ranges.append((w + offset, st, ed))
        return ranges

    def isa_ranges_many(
        self, paths: Sequence[Sequence[int]]
    ) -> List[List[Tuple[int, int, int]]]:
        """Batched :meth:`isa_ranges`: same shard walk, all paths at
        once per shard (bit-identical — see
        :meth:`repro.sntindex.index.SNTIndex.isa_ranges_many`)."""
        results: List[List[Tuple[int, int, int]]] = [[] for _ in paths]
        for entry, offset in zip(self.entries, self.offsets):
            for k, ranges in enumerate(entry.index.isa_ranges_many(paths)):
                for w, st, ed in ranges:
                    results[k].append((w + offset, st, ed))
        return results

    def _local_ranges(self, ranges, position: int):
        offset = self.offsets[position]
        count = self.entries[position].index.n_partitions
        return [
            (w - offset, st, ed)
            for w, st, ed in ranges
            if offset <= w < offset + count
        ]

    def get_travel_times(
        self,
        query,
        fallback_tt=None,
        exclude_ids: Sequence[int] = (),
        isa_ranges=None,
    ) -> TravelTimeResult:
        """Procedure 5 scattered over the shards and merged exactly."""
        return self.get_travel_times_many(
            [(query, exclude_ids, isa_ranges)], fallback_tt=fallback_tt
        )[0]

    def get_travel_times_many(
        self,
        items: Sequence[Tuple],
        fallback_tt=None,
    ) -> List[TravelTimeResult]:
        """Procedure 5 for a set of independent sub-queries, with the
        per-shard scans grouped.

        ``items`` are ``(query, exclude_ids, isa_ranges)`` triples — the
        deduplicated demand set of one batch-executor round.  Both scan
        phases walk the shards in the outer loop and the routed queries
        in the inner loop, so each shard's columns are visited
        contiguously for the whole set instead of once per query; every
        per-query decision (global beta cut, the insufficient/fallback
        classification, the ``(t, shard)`` merge) is unchanged, so each
        returned result is exactly what :meth:`get_travel_times` answers
        for that item alone.
        """
        n_items = len(items)
        routed: List[List[int]] = []
        for query, _, _ in items:
            positions = self.route(query.interval)
            self._record_dispatch(len(positions))
            routed.append(positions)
        by_position: Dict[int, List[int]] = {}
        for item_index, positions in enumerate(routed):
            for position in positions:
                by_position.setdefault(position, []).append(item_index)

        # Phase 1, grouped: per-shard first-segment matches (each capped
        # at beta; the global cut below only ever keeps a prefix of
        # each).  Ascending shard order per query — the same order the
        # per-query loop produced — so each query's chunk list is still
        # its routed prefix order.  Within a shard the routed queries go
        # through the grouped scan, sharing each first edge's interval
        # selection and ISA-bound table.
        per_shard: List[List[Tuple[int, np.ndarray, object]]] = [
            [] for _ in range(n_items)
        ]
        for position in sorted(by_position):
            entry = self.entries[position]
            shard_items = []
            for item_index in by_position[position]:
                query, exclude_ids, isa_ranges = items[item_index]
                self._record_scan(position)
                local = (
                    self._local_ranges(isa_ranges, position)
                    if isa_ranges is not None
                    else None
                )
                shard_items.append((query, exclude_ids, query.beta, local))
            matches_list = first_segment_matches_many(
                entry.index, shard_items
            )
            for item_index, matches in zip(
                by_position[position], matches_list
            ):
                if matches is None:
                    continue
                selected, columns = matches
                if selected.size:
                    per_shard[item_index].append(
                        (position, selected, columns)
                    )

        # Phase 2, per query: the global ascending-entry-time beta cut
        # and the insufficient/empty/fallback classification.  The merge
        # key is (t, shard order), matching the monolithic column order
        # because each shard is a stable restriction of it.
        empty = np.empty(0, dtype=np.float64)
        results: List[Optional[TravelTimeResult]] = [None] * n_items
        matched_counts = [0] * n_items
        for item_index, (query, _, _) in enumerate(items):
            chunks = per_shard[item_index]
            sizes = [int(selected.size) for _, selected, _ in chunks]
            total = sum(sizes)
            if query.beta is not None and total > query.beta:
                stamps = np.concatenate(
                    [columns.t[selected] for _, selected, columns in chunks]
                )
                kept = np.argsort(stamps, kind="stable")[: query.beta]
                bounds = np.cumsum([0] + sizes)
                source = np.searchsorted(bounds, kept, side="right") - 1
                keep_counts = np.bincount(source, minlength=len(chunks))
                per_shard[item_index] = [
                    (position, selected[: int(keep_counts[i])], columns)
                    for i, (position, selected, columns) in enumerate(chunks)
                ]
                n_matched = int(query.beta)
            else:
                n_matched = total
            matched_counts[item_index] = n_matched

            if (
                query.beta is not None
                and n_matched < query.beta
                and is_periodic(query.interval)
            ):
                # Procedure 5 line 7, applied to the global match count.
                results[item_index] = TravelTimeResult(
                    empty, n_matched, insufficient=True
                )
            elif n_matched == 0:
                if query.length == 1 and fallback_tt is not None:
                    estimate = np.asarray([fallback_tt(query.path[0])])
                    results[item_index] = TravelTimeResult(
                        estimate, 0, from_fallback=True
                    )
                else:
                    results[item_index] = TravelTimeResult(empty, 0)

        # Phase 3, grouped: per-shard map/probe for the queries still
        # open, merged per query on (entry time, shard).  Each probe
        # entry carries its chunk, so the shard-grouped walk stays
        # linear in the total chunk count.
        value_chunks: List[List[np.ndarray]] = [[] for _ in range(n_items)]
        stamp_chunks: List[List[np.ndarray]] = [[] for _ in range(n_items)]
        probes: Dict[int, List[Tuple[int, np.ndarray, object]]] = {}
        for item_index in range(n_items):
            if results[item_index] is not None:
                continue
            for position, selected, columns in per_shard[item_index]:
                if selected.size:
                    probes.setdefault(position, []).append(
                        (item_index, selected, columns)
                    )
        for position in sorted(probes):
            entry = self.entries[position]
            outputs = probe_travel_times_many(
                entry.index,
                [
                    (items[item_index][0], selected, columns)
                    for item_index, selected, columns in probes[position]
                ],
            )
            for (item_index, _, _), (values, stamps) in zip(
                probes[position], outputs
            ):
                value_chunks[item_index].append(values)
                stamp_chunks[item_index].append(stamps)

        for item_index in range(n_items):
            if results[item_index] is not None:
                continue
            n_matched = matched_counts[item_index]
            if not value_chunks[item_index]:
                results[item_index] = TravelTimeResult(empty, n_matched)
                continue
            values = np.concatenate(value_chunks[item_index])
            stamps = np.concatenate(stamp_chunks[item_index])
            merged = values[np.argsort(stamps, kind="stable")]
            results[item_index] = TravelTimeResult(merged, n_matched)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def count_matches(
        self,
        path: Sequence[int],
        interval,
        user: Optional[int] = None,
        exclude_ids: Sequence[int] = (),
        limit: Optional[int] = None,
    ) -> int:
        routed = self.route(interval)
        self._record_dispatch(len(routed))
        total = 0
        for position in routed:
            # Record per shard as it is scanned: the limit early-return
            # below must not claim scans on shards it never reached.
            self._record_scan(position)
            total += monolithic_count_matches(
                self.entries[position].index,
                path,
                interval,
                user=user,
                exclude_ids=exclude_ids,
                limit=limit,
            )
            if limit is not None and total >= limit:
                # The monolithic counter early-terminates at ``limit``;
                # summing per-shard capped counts can only overshoot it.
                return int(limit)
        return int(total)


# ---------------------------------------------------------------------- #
# The sharded index
# ---------------------------------------------------------------------- #


def _build_shard_task(payload) -> SNTIndex:
    """Worker-process entry: build one shard from its partition groups."""
    (
        grouped,
        alphabet_size,
        t_min,
        t_max,
        kind,
        partition_days,
        tod_bucket_s,
    ) = payload
    return SNTIndex.build_from_groups(
        grouped,
        alphabet_size,
        t_min=t_min,
        t_max=t_max,
        kind=kind,
        partition_days=partition_days,
        tod_bucket_s=tod_bucket_s,
    )


def _build_shards_parallel(tasks, workers: int) -> List[SNTIndex]:
    """Run the shard builds in a process pool, preserving task order.

    On fork platforms the workers read their trajectory groups from the
    forked copy-on-write heap (:func:`repro.forkpool.fork_map`), so only
    an integer position crosses the pipe on the way in and only the
    built shard (mostly numpy payload — cheap to pickle) comes back;
    shipping the trajectory objects through the pool instead costs more
    than the per-shard build savings at small corpus sizes.  Spawn
    platforms fall back to pickling the (picklable) tasks.
    """
    return fork_map(
        _build_shard_task,
        tasks,
        workers,
        pickled_fallback=_build_shard_task,
    )


def _balanced_runs(
    buckets: Sequence[int], weights: Sequence[int], n_runs: int
) -> List[List[int]]:
    """Split buckets into ``n_runs`` contiguous, non-empty runs.

    Greedy walk closing a run whenever the cumulative weight crosses the
    proportional target — or when the remaining buckets are only just
    enough to keep every remaining run non-empty.
    """
    total = sum(weights)
    runs: List[List[int]] = []
    current: List[int] = []
    cumulative = 0
    for i, bucket in enumerate(buckets):
        current.append(bucket)
        cumulative += weights[i]
        remaining_buckets = len(buckets) - i - 1
        remaining_runs = n_runs - len(runs) - 1
        if len(runs) < n_runs - 1 and (
            cumulative * n_runs >= total * (len(runs) + 1)
            or remaining_buckets == remaining_runs
        ):
            runs.append(current)
            current = []
    runs.append(current)
    return runs


class ShardedSNTIndex:
    """Time-sliced SNT-index: K shard indexes behind one reader.

    Implements the same :class:`~repro.sntindex.reader.IndexReader`
    surface as :class:`SNTIndex`, so :class:`repro.core.engine.QueryEngine`
    and :class:`repro.service.TravelTimeService` use it unchanged — with
    answers bit-identical to the monolithic index over the same corpus
    and ``partition_days`` (see the module docstring for why).
    """

    def __init__(
        self,
        sealed: Sequence[_ShardEntry],
        staging: Optional[_ShardEntry],
        t_min: int,
        t_max: int,
        alphabet_size: int,
        kind: str,
        partition_days: int,
        tod_bucket_s: int,
        staged_trajectories: Optional[List] = None,
        epoch: int = 0,
        build_wall_seconds: Optional[float] = None,
    ):
        if not sealed:
            raise ShardError("a sharded index needs at least one shard")
        for entry in list(sealed) + ([staging] if staging else []):
            if entry.index.alphabet_size != alphabet_size:
                raise ShardError("shards disagree on alphabet_size")
            if entry.index.kind != kind:
                raise ShardError("shards disagree on temporal index kind")
        self._sealed: List[_ShardEntry] = list(sealed)
        self._staging: Optional[_ShardEntry] = staging
        self._staged: List = list(staged_trajectories or [])
        self.t_min = int(t_min)
        self.t_max = int(t_max)
        self.alphabet_size = int(alphabet_size)
        self.kind = kind
        self.partition_days = int(partition_days)
        self.tod_bucket_s = int(tod_bucket_s)
        self.epoch = int(epoch)
        #: Distinguishes *which* mutation produced the current epoch.
        #: Epochs are per-object ordinal counters, so two processes that
        #: independently append different tails to copies of one saved
        #: index both land on the same epoch number; the token makes the
        #: (epoch, content) pair unique so a shared cache tier never
        #: conflates their entries.  Empty for unmutated (disk) state —
        #: that state is shared content, so sharing its entries is safe.
        self.epoch_token = ""
        self._build_wall_seconds = build_wall_seconds
        # Per-topology stats accounting (see shard_stats): closed
        # segments land in _stats_history (one frozen ShardStats per
        # topology the router lived under), their per-label sums in the
        # _stats_base_* accumulators keyed by *current* labels.
        self._stats_history: List[ShardStats] = []
        self._stats_base_scans: Dict[str, int] = {}
        self._stats_base_dispatches = 0
        self._stats_base_pruned = 0
        self._rebuild_router()

    # -- construction --------------------------------------------------- #

    @classmethod
    def build(
        cls,
        trajectories,
        alphabet_size: int,
        n_shards: int = 2,
        partition_days: Optional[int] = 7,
        kind: str = "css",
        tod_bucket_s: int = 600,
        build_workers: int = 1,
    ) -> "ShardedSNTIndex":
        """Build K time-sliced shards, optionally in worker processes.

        Parameters mirror :meth:`SNTIndex.build` plus:

        n_shards:
            Contiguous time slices to build; clamped to the number of
            occupied temporal partitions (a shard cannot split one
            FM-index partition without changing estimator inputs).
        build_workers:
            Worker processes for the shard builds.  ``1`` builds inline;
            suffix-array construction dominates build time and shards
            are independent, so the build scales with real cores.
        """
        if partition_days is None:
            raise ShardError(
                "sharding needs temporal partitioning: a single-FM FULL "
                "index has no partition boundaries to slice on — pass "
                "partition_days"
            )
        if partition_days < 1:
            raise ShardError("partition_days must be >= 1")
        if n_shards < 1:
            raise ShardError("n_shards must be >= 1")
        if build_workers < 1:
            raise ShardError("build_workers must be >= 1")
        if len(trajectories) == 0:
            raise IndexError_("cannot build an index from zero trajectories")
        started = time.perf_counter()

        t_min, t_max = trajectories.time_span()
        window = partition_days * SECONDS_PER_DAY
        groups = assign_time_windows(trajectories, t_min, window)
        buckets = sorted(groups)
        n_shards = min(n_shards, len(buckets))
        weights = [
            sum(len(trajectory) for trajectory in groups[bucket])
            for bucket in buckets
        ]
        runs = _balanced_runs(buckets, weights, n_shards)

        tasks = []
        for run in runs:
            grouped = [
                (*window_bounds(bucket, t_min, window), groups[bucket])
                for bucket in run
            ]
            tasks.append(
                (
                    grouped,
                    alphabet_size,
                    t_min,
                    t_max,
                    kind,
                    partition_days,
                    tod_bucket_s,
                )
            )

        if build_workers == 1 or len(tasks) == 1:
            built = [_build_shard_task(task) for task in tasks]
        else:
            built = _build_shards_parallel(tasks, build_workers)

        sealed = [
            _ShardEntry.wrap(index, f"shard_{i:04d}", run[0], run[-1])
            for i, (index, run) in enumerate(zip(built, runs))
        ]
        return cls(
            sealed=sealed,
            staging=None,
            t_min=t_min,
            t_max=t_max,
            alphabet_size=alphabet_size,
            kind=kind,
            partition_days=partition_days,
            tod_bucket_s=tod_bucket_s,
            build_wall_seconds=time.perf_counter() - started,
        )

    # -- internal views -------------------------------------------------- #

    def _entries(self) -> List[_ShardEntry]:
        entries = list(self._sealed)
        if self._staging is not None:
            entries.append(self._staging)
        return entries

    def _rebuild_router(self) -> None:
        # The fresh router starts all counters at zero: every mutation
        # calls _snapshot_stats() first, which drains the outgoing
        # topology's counters into the per-epoch history.  (The old
        # carry-the-counters-across approach left shard_stats()
        # internally inconsistent after appends: dispatch/prune totals
        # recorded against N shards mixed with scan rows of N+1.)
        self._router = ShardRouter(self._entries())
        self._tod_view = _ShardedTodStore(
            self._router.entries, self._router.offsets
        )
        # Per-edge aggregate views are immutable between mutations, and
        # edge_index() sits on the estimator hot path (once per segment
        # per sub-query) — memoize them for the life of this router.
        # A benign construction race under threads just builds the same
        # view twice.
        self._edge_views: Dict[int, Optional[_ShardedEdgeStats]] = {}
        self._user_space = max(
            entry.index.users.size for entry in self._router.entries
        )

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def n_shards(self) -> int:
        return len(self._router.entries)

    @property
    def shards(self) -> List[SNTIndex]:
        """The shard indexes in temporal order (staging last)."""
        return [entry.index for entry in self._router.entries]

    @property
    def has_staging(self) -> bool:
        return self._staging is not None

    def shard_stats(self) -> ShardStats:
        """Lifetime scan/prune statistics across every topology epoch.

        The merge of the frozen per-epoch segments
        (:meth:`shard_stats_history`) and the live segment: totals are
        sums, and per-shard scans from earlier topologies are carried
        under the label their shard has *now* (a shard sealed from
        staging, or merged away by compaction, contributes its history
        to its successor).  ``per_shard_scans`` therefore always lists
        exactly the current shards, in shard order (staging last), and
        ``n_shards`` is the current shard count — internally consistent
        no matter how many appends, seals, or compactions happened.
        """
        current = self._router.stats()
        per_shard = {
            label: self._stats_base_scans.get(label, 0) + n
            for label, n in current.per_shard_scans.items()
        }
        return ShardStats(
            n_dispatches=self._stats_base_dispatches + current.n_dispatches,
            n_shard_scans=sum(per_shard.values()),
            n_shards_pruned=self._stats_base_pruned
            + current.n_shards_pruned,
            per_shard_scans=per_shard,
            n_shards=current.n_shards,
        )

    def shard_stats_history(self) -> List[ShardStats]:
        """The closed per-topology accounting segments, oldest first.

        One frozen :class:`ShardStats` per topology epoch the router
        has lived under (each closed by the mutation — append, seal,
        compact — that changed the shard set).  Labels of shards that
        were since renamed or merged away are rewritten to their
        successors (:meth:`_remap_stats`), so every label here resolves
        in the current topology.  The live segment is :meth:`router`'s
        ``stats()``; :meth:`shard_stats` merges all of them.
        """
        return list(self._stats_history)

    def _snapshot_stats(self) -> None:
        """Close the current accounting segment before a mutation.

        Drains the router's counters (read-and-zero, so surviving
        entries restart from zero) into the frozen history and the
        per-label base sums.  Callers mutate the shard set afterwards
        and apply :meth:`_remap_stats` for any labels that moved.
        """
        segment = self._router.drain()
        if not (
            segment.n_dispatches
            or segment.n_shard_scans
            or segment.n_shards_pruned
        ):
            return  # nothing routed under this topology; no segment
        self._stats_history.append(segment)
        self._stats_base_dispatches += segment.n_dispatches
        self._stats_base_pruned += segment.n_shards_pruned
        for label, n in segment.per_shard_scans.items():
            self._stats_base_scans[label] = (
                self._stats_base_scans.get(label, 0) + n
            )

    def _remap_stats(self, remap: Dict[str, str]) -> None:
        """Re-key accumulated per-shard history after labels move.

        ``remap`` maps old label → successor label (seal: ``staging`` →
        its sealed name; compaction: every pre-compaction label → the
        merged/renumbered shard it now lives in).  Applied to the base
        sums *and* every stored history segment, so no accessor ever
        reports a label the current topology does not have.
        """
        if not remap:
            return
        base: Dict[str, int] = {}
        for label, n in self._stats_base_scans.items():
            target = remap.get(label, label)
            base[target] = base.get(target, 0) + n
        self._stats_base_scans = base
        rewritten: List[ShardStats] = []
        for segment in self._stats_history:
            per_shard: Dict[str, int] = {}
            for label, n in segment.per_shard_scans.items():
                target = remap.get(label, label)
                per_shard[target] = per_shard.get(target, 0) + n
            rewritten.append(replace(segment, per_shard_scans=per_shard))
        self._stats_history = rewritten

    # -- IndexReader: scalars ------------------------------------------- #

    @property
    def n_partitions(self) -> int:
        return self._router.n_partitions

    @property
    def build_stats(self) -> BuildStats:
        """Aggregate of the shards' build stats (CLI summaries).

        ``setup_seconds`` is the wall-clock time of the whole (possibly
        parallel) build when this instance ran it; for a loaded index
        the slowest shard's build time stands in — summing the per-shard
        worker times would over-report a parallel build by its width.
        """
        shard_stats = [e.index.build_stats for e in self._router.entries]
        wall = self._build_wall_seconds
        if wall is None:
            wall = max(s.setup_seconds for s in shard_stats)
        return BuildStats(
            setup_seconds=wall,
            n_partitions=self.n_partitions,
            n_trajectories=sum(s.n_trajectories for s in shard_stats),
            n_traversals=sum(s.n_traversals for s in shard_stats),
        )

    @property
    def tod_store(self) -> _ShardedTodStore:
        return self._tod_view

    # -- IndexReader: spatial ------------------------------------------- #

    def isa_ranges(self, path: Sequence[int]) -> List[Tuple[int, int, int]]:
        return self._router.isa_ranges(path)

    def isa_ranges_many(
        self, paths: Sequence[Sequence[int]]
    ) -> List[List[Tuple[int, int, int]]]:
        return self._router.isa_ranges_many(paths)

    def path_traversal_count(self, path: Sequence[int]) -> int:
        return sum(ed - st for _, st, ed in self.isa_ranges(path))

    def contains_path(self, path: Sequence[int]) -> bool:
        return bool(self.isa_ranges(path))

    # -- IndexReader: temporal ------------------------------------------ #

    def edge_index(self, edge: int) -> Optional[_ShardedEdgeStats]:
        edge = int(edge)
        try:
            return self._edge_views[edge]
        except KeyError:
            pass
        phis = [
            phi
            for entry in self._router.entries
            if (phi := entry.index.edge_index(edge)) is not None
        ]
        view = _ShardedEdgeStats(phis, self.kind) if phis else None
        self._edge_views[edge] = view
        return view

    # -- IndexReader: users --------------------------------------------- #

    def user_of(self, traj_id: int) -> int:
        if not 0 <= traj_id < self._user_space:
            raise UnknownTrajectoryError(traj_id)
        for entry in self._router.entries:
            users = entry.index.users
            if traj_id < users.size and users[traj_id] >= 0:
                return int(users[traj_id])
        raise MissingUserError(traj_id)

    def has_trajectory(self, traj_id: int) -> bool:
        return any(
            entry.index.has_trajectory(traj_id)
            for entry in self._router.entries
        )

    # -- IndexReader: retrieval ----------------------------------------- #

    def get_travel_times(
        self,
        query,
        fallback_tt=None,
        exclude_ids: Sequence[int] = (),
        isa_ranges=None,
    ) -> TravelTimeResult:
        return self._router.get_travel_times(
            query,
            fallback_tt=fallback_tt,
            exclude_ids=exclude_ids,
            isa_ranges=isa_ranges,
        )

    def get_travel_times_many(
        self,
        items: Sequence[Tuple],
        fallback_tt=None,
    ) -> List[TravelTimeResult]:
        """Procedure 5 for a deduplicated demand set, with the per-shard
        scans grouped so each shard is walked contiguously (see
        :meth:`ShardRouter.get_travel_times_many`)."""
        return self._router.get_travel_times_many(
            items, fallback_tt=fallback_tt
        )

    def count_matches(
        self,
        path: Sequence[int],
        interval,
        user: Optional[int] = None,
        exclude_ids: Sequence[int] = (),
        limit: Optional[int] = None,
    ) -> int:
        return self._router.count_matches(
            path,
            interval,
            user=user,
            exclude_ids=exclude_ids,
            limit=limit,
        )

    # -- append / staging ----------------------------------------------- #

    def append(self, trajectories) -> int:
        """Index new trajectories through the staging shard.

        Only the staging shard (the accumulated appended tail) is
        rebuilt; sealed shards are untouched.  Every appended trajectory
        must start in a time window strictly after all sealed shards —
        the contract that keeps post-append answers bit-identical to a
        from-scratch monolithic build over the combined corpus.  Bumps
        :attr:`epoch` so shared sub-query caches drop stale entries.

        Returns the number of trajectories appended.  Raises
        :class:`ShardError` on id collisions or out-of-order appends
        (the index is left unchanged).
        """
        batch = list(trajectories)
        if not batch:
            return 0
        seen_ids = set()
        for trajectory in batch:
            if trajectory.traj_id in seen_ids:
                raise ShardError(
                    f"duplicate trajectory id {trajectory.traj_id} in "
                    "append batch"
                )
            seen_ids.add(trajectory.traj_id)
            if self.has_trajectory(trajectory.traj_id):
                raise ShardError(
                    f"trajectory id {trajectory.traj_id} is already indexed"
                )
        window = self.partition_days * SECONDS_PER_DAY
        sealed_max = max(entry.bucket_hi for entry in self._sealed)
        batch_groups = assign_time_windows(batch, self.t_min, window)
        for bucket in sorted(batch_groups):
            if bucket <= sealed_max:
                offender = batch_groups[bucket][0]
                raise ShardError(
                    f"append only accepts trajectories starting after the "
                    f"sealed shards (time window {sealed_max} at "
                    f"{self.partition_days} day(s) per window); trajectory "
                    f"{offender.traj_id} starts in window {bucket}. "
                    "Rebuild the index to backfill history."
                )

        staged = self._staged + batch
        groups = assign_time_windows(staged, self.t_min, window)
        grouped = [
            (*window_bounds(bucket, self.t_min, window), groups[bucket])
            for bucket in sorted(groups)
        ]
        # The corpus-span definition lives in TrajectorySet.time_span;
        # a from-scratch monolithic rebuild over the combined corpus
        # computes t_max through it, so the append must too.
        _, staged_end = TrajectorySet(staged).time_span()
        new_t_max = max(self.t_max, staged_end)
        staging_index = SNTIndex.build_from_groups(
            grouped,
            self.alphabet_size,
            t_min=self.t_min,
            t_max=new_t_max,
            kind=self.kind,
            partition_days=self.partition_days,
            tod_bucket_s=self.tod_bucket_s,
        )
        # Close the outgoing topology's accounting segment first; the
        # new staging entry keeps the "staging" label, so no remap.
        self._snapshot_stats()
        self._staging = _ShardEntry.wrap(
            staging_index, "staging", min(groups), max(groups)
        )
        self._staged = staged
        self.t_max = new_t_max
        self.epoch += 1
        self.epoch_token = uuid.uuid4().hex
        self._rebuild_router()
        return len(batch)

    def seal_staging(self) -> None:
        """Promote the staging shard to a sealed shard.

        Pure bookkeeping: the indexed content (and therefore every
        answer) is unchanged, so the epoch does not move and caches stay
        valid.  Subsequent appends must start after the newly sealed
        window.
        """
        if self._staging is None:
            return
        self._snapshot_stats()
        entry = self._staging
        label = f"shard_{len(self._sealed):04d}"
        entry.label = label
        self._sealed.append(entry)
        self._staging = None
        self._staged = []
        # The shard formerly known as "staging" keeps its scan history
        # under its sealed name.
        self._remap_stats({"staging": label})
        self._rebuild_router()

    # -- compaction ------------------------------------------------------ #

    def compact(self, policy=None) -> "CompactionReport":
        """Merge runs of small adjacent sealed shards in place.

        Repeated append/seal cycles accrete many small shards; every
        unprunable dispatch then fans out across all of them.  This
        merges each eligible run (:class:`repro.sntindex.compaction.
        CompactionPolicy` decides which — by default every adjacent
        pair or longer of sealed shards) into one shard by
        concatenating the aligned temporal partitions — the exact
        inverse of the sharded build's split, so answers stay
        bit-identical (see :func:`repro.sntindex.compaction.
        merge_shard_indexes` for the argument).  Sealed shards are
        renumbered densely afterwards; the staging shard is untouched.

        A compaction that merges anything bumps :attr:`epoch` and
        mints a fresh :attr:`epoch_token` even though answers are
        unchanged: shard-granular state (per-shard scan attribution,
        mmap'd payload identity) *did* change, and the bump guarantees
        the PR-4 shared cache tier never serves entries recorded
        against the pre-compaction layout.  A no-op compaction (no
        eligible runs) changes nothing and keeps caches warm.

        Returns a :class:`repro.sntindex.compaction.CompactionReport`.
        """
        # Local import: compaction.py imports SNTIndex machinery and is
        # imported by the CLI; importing it lazily here keeps the
        # sharded module free of the cycle.
        from .compaction import (
            CompactionPolicy,
            CompactionReport,
            merge_shard_indexes,
            plan_compaction,
        )

        if policy is None:
            policy = CompactionPolicy()
        sizes = [
            entry.index.build_stats.n_traversals for entry in self._sealed
        ]
        groups = plan_compaction(sizes, policy)
        n_before = len(self._sealed)
        if not groups:
            return CompactionReport(
                n_sealed_before=n_before,
                n_sealed_after=n_before,
                merged_groups=[],
                epoch=self.epoch,
            )
        self._snapshot_stats()
        group_by_start = {group[0]: group for group in groups}
        grouped_members = {position for group in groups for position in group}
        new_sealed: List[_ShardEntry] = []
        remap: Dict[str, str] = {}
        merged_groups: List[List[str]] = []
        position = 0
        while position < n_before:
            group = group_by_start.get(position)
            label = f"shard_{len(new_sealed):04d}"
            if group is not None:
                members = [self._sealed[i] for i in group]
                merged = merge_shard_indexes(
                    [member.index for member in members]
                )
                entry = _ShardEntry.wrap(
                    merged,
                    label,
                    members[0].bucket_lo,
                    members[-1].bucket_hi,
                )
                for member in members:
                    remap[member.label] = label
                merged_groups.append([member.label for member in members])
                position = group[-1] + 1
            else:
                assert position not in grouped_members
                entry = self._sealed[position]
                remap[entry.label] = label
                entry.label = label
                position += 1
            new_sealed.append(entry)
        self._sealed = new_sealed
        self._remap_stats(remap)
        self.epoch += 1
        self.epoch_token = uuid.uuid4().hex
        self._rebuild_router()
        return CompactionReport(
            n_sealed_before=n_before,
            n_sealed_after=len(new_sealed),
            merged_groups=merged_groups,
            epoch=self.epoch,
        )

    # -- sizes ----------------------------------------------------------- #

    def component_sizes(self) -> Dict[str, int]:
        """Component sizes summed over the shards, in bytes."""
        totals: Dict[str, int] = {}
        for entry in self._router.entries:
            for name, size in entry.index.component_sizes().items():
                totals[name] = totals.get(name, 0) + size
        return totals

    # -- persistence ----------------------------------------------------- #

    def save(self, path: StoreLike, extra: Optional[dict] = None) -> Path:
        """Write the sharded manifest directory; see
        :func:`save_sharded_index`."""
        return save_sharded_index(self, path, extra=extra)

    @classmethod
    def load(
        cls,
        path: StoreLike,
        expected_alphabet_size: Optional[int] = None,
        expected_kind: Optional[str] = None,
    ) -> "ShardedSNTIndex":
        """Load a sharded manifest directory; see
        :func:`load_sharded_index`."""
        return load_sharded_index(
            path,
            expected_alphabet_size=expected_alphabet_size,
            expected_kind=expected_kind,
        )


# ---------------------------------------------------------------------- #
# Persistence: manifest directory of PR-1 index dirs
# ---------------------------------------------------------------------- #


def _entry_manifest(entry: _ShardEntry, directory: str) -> dict:
    return {
        "dir": directory,
        "label": entry.label,
        "bucket_lo": entry.bucket_lo,
        "bucket_hi": entry.bucket_hi,
        "t_lo": entry.t_lo,
        "t_hi": entry.t_hi,
        "n_partitions": entry.index.n_partitions,
    }


def save_sharded_index(
    index: ShardedSNTIndex,
    path: StoreLike,
    extra: Optional[dict] = None,
) -> Path:
    """Write ``index`` as ``manifest.json`` + one PR-1 index dir per shard.

    ``path`` is a directory, store URI, or store.  Layout::

        manifest.json            format tag, scalars, shard table, epoch
        shard_0000/ ...          save_index() directories, one per shard
        staging/                 the staging shard (when present)
        staging_trajectories.pkl staged tail, so appends survive restarts

    The whole tree is staged and installed atomically by the store —
    sibling-tempdir swap for a local directory, manifest-last upload
    ordering for an object store — like the monolithic format.
    """

    def writer(target: Path) -> None:
        # ``target`` is already the outer atomic-install staging dir, so
        # the shard subdirectories are written directly — running
        # save_index's own temp-dir/swap dance per shard inside it
        # would be K extra rename pairs protecting nothing.
        shard_dirs = []
        for i, entry in enumerate(index._sealed):
            directory = f"shard_{i:04d}"
            write_index_payload(entry.index, target / directory)
            shard_dirs.append(_entry_manifest(entry, directory))
        staging_manifest = None
        if index._staging is not None:
            write_index_payload(index._staging.index, target / STAGING_DIR)
            staging_manifest = _entry_manifest(index._staging, STAGING_DIR)
            with open(target / STAGED_TRAJECTORIES_FILE, "wb") as handle:
                pickle.dump(
                    index._staged, handle, protocol=pickle.HIGHEST_PROTOCOL
                )
        manifest = {
            "format": SHARDED_FORMAT_NAME,
            "format_version": SHARDED_FORMAT_VERSION,
            "alphabet_size": index.alphabet_size,
            "kind": index.kind,
            "partition_days": index.partition_days,
            "t_min": index.t_min,
            "t_max": index.t_max,
            "tod_bucket_s": index.tod_bucket_s,
            "epoch": index.epoch,
            # Which mutation produced this epoch (see __init__): without
            # it, two saves of differently-appended copies of one base
            # index would reload indistinguishable at the same epoch and
            # collide in a shared cache tier.
            "epoch_token": index.epoch_token,
            "shards": shard_dirs,
            "staging": staging_manifest,
            "extra": dict(extra or {}),
        }
        with open(target / MANIFEST_FILE, "w") as handle:
            json.dump(manifest, handle, indent=2)

    return as_store(path).install(
        "",
        marker_file=MANIFEST_FILE,
        writer=writer,
        what="saved sharded SNT-index",
    )


def read_sharded_meta(path: StoreLike) -> dict:
    """Read and format-check ``manifest.json`` of a sharded index dir."""
    store = as_store(path)
    source = store.uri
    if not store.exists(MANIFEST_FILE):
        raise PersistenceError(
            f"{source} is not a saved sharded SNT-index "
            f"({MANIFEST_FILE} missing)"
        )
    try:
        manifest = json.loads(store.get(MANIFEST_FILE))
    except (PersistenceError, OSError, json.JSONDecodeError) as error:
        raise PersistenceError(
            f"corrupt {MANIFEST_FILE}: {error}"
        ) from error
    if manifest.get("format") != SHARDED_FORMAT_NAME:
        raise PersistenceError(
            f"{source} holds format {manifest.get('format')!r}, expected "
            f"{SHARDED_FORMAT_NAME!r}"
        )
    version = manifest.get("format_version")
    if version != SHARDED_FORMAT_VERSION:
        raise IndexFormatError(
            f"saved sharded index has format version {version!r}; this "
            f"build reads version {SHARDED_FORMAT_VERSION} only — run "
            "`repro migrate` to upgrade it in place, or rebuild the "
            "index from source data"
        )
    return manifest


def _entry_from_manifest(store, described: dict, manifest: dict) -> _ShardEntry:
    required = ("dir", "label", "bucket_lo", "bucket_hi", "t_lo", "t_hi",
                "n_partitions")
    missing = [name for name in required if name not in described]
    if missing:
        raise PersistenceError(
            f"{MANIFEST_FILE} shard entry is missing fields {missing}"
        )
    for name in ("bucket_lo", "bucket_hi", "t_lo", "t_hi", "n_partitions"):
        value = described[name]
        if not isinstance(value, int) or isinstance(value, bool):
            raise PersistenceError(
                f"{MANIFEST_FILE} shard entry declares {name} = "
                f"{value!r}; expected an integer"
            )
    source = store.uri
    # Page the shard's objects into a local directory (the identity for
    # a local store) — the meta cross-check and the mmap-based loader
    # below both read the localized copy.
    shard_dir = store.localize(str(described["dir"]))
    # A shard is only valid inside *this* manifest if its own meta
    # agrees on every scalar that shapes the global partition layout —
    # a shard copied in from another build (different partition_days,
    # different corpus t_min, different ToD grain) would load cleanly
    # on its own and then silently break the bit-identical merge.
    shard_meta = read_meta(shard_dir)
    for name in ("partition_days", "t_min", "tod_bucket_s"):
        if shard_meta.get(name) != manifest[name]:
            raise PersistenceError(
                f"shard {described['dir']} in {source} declares "
                f"{name} = {shard_meta.get(name)!r}, but the manifest "
                f"says {manifest[name]!r} — the shard belongs to a "
                "different build (refusing before reading its payload)"
            )
    shard_index = load_index(
        shard_dir,
        expected_alphabet_size=manifest["alphabet_size"],
        expected_kind=manifest["kind"],
    )
    if shard_index.n_partitions != int(described["n_partitions"]):
        raise PersistenceError(
            f"shard {described['dir']} in {source} holds "
            f"{shard_index.n_partitions} partition(s), but the manifest "
            f"recorded {described['n_partitions']} — the shard payload "
            "does not match this manifest"
        )
    return _ShardEntry(
        index=shard_index,
        label=str(described["label"]),
        bucket_lo=int(described["bucket_lo"]),
        bucket_hi=int(described["bucket_hi"]),
        t_lo=int(described["t_lo"]),
        t_hi=int(described["t_hi"]),
    )


def load_sharded_index(
    path: StoreLike,
    expected_alphabet_size: Optional[int] = None,
    expected_kind: Optional[str] = None,
) -> ShardedSNTIndex:
    """Load a tree written by :func:`save_sharded_index` from ``path``
    — a directory, store URI, or store.

    The manifest scalars are validated (including the optional
    ``expected_*`` cross-checks) before any shard payload is read, and
    each shard load re-checks its own meta against the manifest — so a
    directory mixing shards of different worlds is rejected.

    .. warning::
        The staged tail is unpickled — only load directories (or remote
        stores) you wrote yourself (same trust model as
        :func:`repro.sntindex.persistence.load_index`).
    """
    store = as_store(path)
    source = store.uri
    manifest = read_sharded_meta(store)
    required = (
        "alphabet_size", "kind", "partition_days", "t_min", "t_max",
        "tod_bucket_s", "epoch", "shards",
    )
    missing = [name for name in required if name not in manifest]
    if missing:
        raise PersistenceError(
            f"{MANIFEST_FILE} is missing fields {missing}"
        )
    validate_identity(
        manifest,
        source,
        expected_alphabet_size=expected_alphabet_size,
        expected_kind=expected_kind,
    )
    kind = manifest["kind"]
    alphabet = manifest["alphabet_size"]
    # A sharded index always has temporal partitioning, and every
    # scalar below is fed to int() after the (pickled) shard payloads
    # load — so prove them sane first, like the monolithic
    # validate_meta does.
    scalar_checks = {
        "partition_days": lambda v: isinstance(v, int)
        and not isinstance(v, bool) and v >= 1,
        "t_min": lambda v: isinstance(v, int) and not isinstance(v, bool),
        "t_max": lambda v: isinstance(v, int) and not isinstance(v, bool),
        "tod_bucket_s": lambda v: isinstance(v, int)
        and not isinstance(v, bool) and v >= 1,
        "epoch": lambda v: isinstance(v, int)
        and not isinstance(v, bool) and v >= 0,
    }
    for name, check in scalar_checks.items():
        if not check(manifest[name]):
            raise PersistenceError(
                f"{source} declares {name} = {manifest[name]!r}; "
                "refusing before reading any shard payload"
            )
    if not manifest["shards"]:
        raise PersistenceError(f"{MANIFEST_FILE} lists no shards")

    sealed = [
        _entry_from_manifest(store, described, manifest)
        for described in manifest["shards"]
    ]
    staging = None
    staged: List = []
    if manifest.get("staging") is not None:
        staging = _entry_from_manifest(store, manifest["staging"], manifest)
        if not store.exists(STAGED_TRAJECTORIES_FILE):
            raise PersistenceError(
                f"{source} has a staging shard but no "
                f"{STAGED_TRAJECTORIES_FILE}"
            )
        try:
            staged = list(pickle.loads(store.get(STAGED_TRAJECTORIES_FILE)))
        except (OSError, EOFError, pickle.PickleError) as error:
            raise PersistenceError(
                f"failed to read staged trajectories from {source}: "
                f"{error}"
            ) from error
    index = ShardedSNTIndex(
        sealed=sealed,
        staging=staging,
        t_min=int(manifest["t_min"]),
        t_max=int(manifest["t_max"]),
        alphabet_size=int(alphabet),
        kind=kind,
        partition_days=int(manifest["partition_days"]),
        tod_bucket_s=int(manifest["tod_bucket_s"]),
        staged_trajectories=staged,
        epoch=int(manifest["epoch"]),
    )
    # Restore the mutation lineage (pre-PR-4 manifests lack the field;
    # "" marks unmutated state, matching a fresh build).
    index.epoch_token = str(manifest.get("epoch_token", ""))
    # Where this index is reachable on *this machine* — lets serving
    # layers place per-index artifacts (e.g. the shared cache tier)
    # alongside it; a remote store's local page-in cache root for a
    # remote index.
    index.source_path = store.local_anchor()
    return index


# ---------------------------------------------------------------------- #
# Layout detection (CLI / service cold start)
# ---------------------------------------------------------------------- #


def read_any_meta(path: StoreLike) -> Tuple[str, dict]:
    """Detect the stored layout and read its manifest.

    Returns ``("sharded", manifest)`` or ``("monolithic", meta)``.
    ``path`` is a directory, store URI, or store.
    """
    store = as_store(path)
    if store.exists(MANIFEST_FILE):
        return "sharded", read_sharded_meta(store)
    if store.exists(META_FILE):
        return "monolithic", read_meta(store)
    raise PersistenceError(
        f"{store.uri} is neither a saved SNT-index ({META_FILE}) nor a "
        f"sharded index ({MANIFEST_FILE})"
    )


def load_any_index(
    path: StoreLike,
    expected_alphabet_size: Optional[int] = None,
    expected_kind: Optional[str] = None,
) -> Union[SNTIndex, ShardedSNTIndex]:
    """Load a monolithic or sharded index, whichever ``path`` holds."""
    store = as_store(path)
    layout, _ = read_any_meta(store)
    if layout == "sharded":
        return load_sharded_index(
            store,
            expected_alphabet_size=expected_alphabet_size,
            expected_kind=expected_kind,
        )
    return load_index(
        store,
        expected_alphabet_size=expected_alphabet_size,
        expected_kind=expected_kind,
    )
