"""Pluggable shard storage: the :class:`ShardStore` protocol.

The persistence layer (``persistence.py`` / ``sharded.py``) never talks
to the filesystem directly any more — every save, load, and manifest
read routes through a store:

:class:`LocalDirStore`
    Today's layout, byte for byte: the store root *is* the index
    directory, ``localize()`` is the identity, and ``install()`` is the
    existing sibling-tempdir atomic swap.  ``as_store`` wraps any bare
    path (or ``file:`` URI) in one of these, so existing call sites and
    on-disk trees are untouched.
:class:`ObjectStore`
    An S3-style object namespace with explicit ``get``/``put``/
    ``list``/``etag`` semantics, backed by a local directory standing
    in for the remote service (the repo adds no network dependencies).
    Objects are immutable-ish blobs addressed by ``/``-separated keys;
    ``localize()`` pages a key prefix into a bounded local cache —
    etag-validated, LRU-evicted — and returns a plain directory the
    mmap-based loaders open exactly as they would a local index.
    Combined with the O(1) mmap open, this is the elastic-fleet story:
    any worker, anywhere, opens any sealed shard on demand.

Store URIs (accepted everywhere a path was: ``EngineConfig.store``,
CLI ``--store``/``--index``/``--out``, ``open_db``):

- ``/path/to/index`` or ``file:/path/to/index`` — :class:`LocalDirStore`
- ``object:///path/to/remote?cache=/path/to/cache&cache_bytes=N`` —
  :class:`ObjectStore`; ``cache`` defaults to a per-remote directory
  under the system temp dir, ``cache_bytes`` (optional) bounds the
  page-in cache.

Crash safety: :func:`atomic_install_dir` (moved here from
``persistence.py``, still re-exported there) stages a writer's output
in a sibling temp dir and swaps it in, so a reader finds either the old
tree, the new one, or none.  :meth:`ObjectStore.install` gets the same
guarantee from ordering alone: the marker object (``meta.json`` /
``manifest.json``) is deleted first and re-uploaded *last*, so a
half-written remote prefix is never marker-complete.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import hashlib
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Union
from urllib.parse import parse_qs, unquote

from ..errors import PersistenceError, StoreError

__all__ = [
    "ShardStore",
    "LocalDirStore",
    "ObjectStore",
    "as_store",
    "is_store_uri",
    "atomic_install_dir",
]

StoreSource = Union[str, "os.PathLike[str]", "ShardStore"]
Writer = Callable[[Path], None]


def atomic_install_dir(
    final: Path,
    marker_file: str,
    writer: Writer,
    what: str = "saved SNT-index",
) -> Path:
    """Stage ``writer(target)`` in a sibling temp dir and swap it in.

    Shared by the monolithic index format (marker ``meta.json``) and the
    sharded manifest format (marker ``manifest.json``).  ``writer`` is
    called with a fresh staging directory and must fully populate it —
    including the marker file, which is how a later save recognises the
    target as safe to replace.
    """
    if final.exists():
        # The swap deletes whatever sits at the target; only a prior
        # saved index (or an empty directory) is fair game — a mistaken
        # --out must not destroy user data.
        if not final.is_dir():
            raise PersistenceError(
                f"cannot save index to {final}: exists and is not a "
                "directory"
            )
        if any(final.iterdir()) and not (final / marker_file).is_file():
            raise PersistenceError(
                f"refusing to overwrite {final}: directory exists and is "
                f"not a {what}"
            )
    final.parent.mkdir(parents=True, exist_ok=True)
    # Sweep staging/graveyard leftovers of *crashed* saves only: a
    # pid-suffixed dir whose owner is still alive belongs to a
    # concurrent saver and must not be touched.  A dead saver's
    # graveyard may hold the only surviving copy of the index (crash
    # between the two swap renames) — restore it, never delete it,
    # when no index is installed.
    for pattern in (f".{final.name}.tmp-*", f".{final.name}.old-*"):
        for stale in final.parent.glob(pattern):
            pid_text = stale.name.rsplit("-", 1)[-1]
            if pid_text.isdigit() and _pid_alive(int(pid_text)):
                continue
            if ".old-" in stale.name and not final.exists():
                try:
                    os.rename(stale, final)
                    continue
                except OSError:
                    pass
            shutil.rmtree(stale, ignore_errors=True)
    target = final.parent / f".{final.name}.tmp-{os.getpid()}"
    if target.exists():  # our own leftover; the sweep skips live pids
        shutil.rmtree(target)
    target.mkdir()
    try:
        writer(target)
    except BaseException:
        shutil.rmtree(target, ignore_errors=True)
        raise

    graveyard = None
    try:
        if final.exists():
            graveyard = final.parent / f".{final.name}.old-{os.getpid()}"
            if graveyard.exists():
                shutil.rmtree(graveyard)
            os.rename(final, graveyard)
        os.rename(target, final)
    except OSError as error:
        # Most likely two savers racing for the same target: the loser's
        # rename finds the directory already moved.  Put the old index
        # back if the failure left none installed.
        shutil.rmtree(target, ignore_errors=True)
        if (
            graveyard is not None
            and graveyard.exists()
            and not final.exists()
        ):
            try:
                os.rename(graveyard, final)
            except OSError:
                pass  # the sweep of a later save will restore it
        raise PersistenceError(
            f"could not install saved index at {final} (concurrent save "
            f"to the same path?): {error}"
        ) from error
    if graveyard is not None:
        # The new index is installed; a failed graveyard cleanup is not
        # a failed save (the next save's sweep collects it).
        shutil.rmtree(graveyard, ignore_errors=True)
    return final


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for staging-dir owners."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by another user
    except OSError:
        return True  # unknown: err on the side of not deleting
    return True


class ShardStore(ABC):
    """Where a saved index (or one shard of one) lives.

    Keys are ``/``-separated relative paths into the store's namespace
    (``"meta.json"``, ``"shard_0003/payload/users.npy"``); the empty
    prefix ``""`` denotes the whole store.  Two access planes:

    - **object plane** — ``get``/``put``/``list``/``exists``/``etag``
      for small control files (manifests, staged pickles).
    - **directory plane** — ``localize(prefix)`` returns a real local
      directory holding that prefix's objects so the ``np.load(...,
      mmap_mode="r")`` payload loaders work unchanged, and
      ``install(prefix, ...)`` atomically replaces a prefix with a
      writer's staged output.

    ``local_anchor()`` is a local directory that identifies this store
    on this machine — serving layers place per-index artifacts (the
    shared cache tier's SQLite file) there, exactly as they previously
    used the index directory itself.
    """

    @property
    @abstractmethod
    def uri(self) -> str:
        """Canonical URI, round-trippable through :func:`as_store`."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Read one object; :class:`StoreError` when absent."""

    @abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Write one object (atomically replacing any previous value)."""

    @abstractmethod
    def list(self, prefix: str = "") -> List[str]:
        """All object keys under ``prefix``, sorted."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether object ``key`` is present."""

    @abstractmethod
    def etag(self, key: str) -> str:
        """Opaque version tag; changes whenever the object's bytes may
        have."""

    @abstractmethod
    def localize(self, prefix: str = "") -> Path:
        """A local directory holding ``prefix``'s objects (paged in and
        validated if the store is remote; the backing directory itself
        if it is local)."""

    @abstractmethod
    def install(
        self,
        prefix: str,
        marker_file: str,
        writer: Writer,
        what: str = "saved SNT-index",
    ) -> Path:
        """Atomically replace ``prefix`` with ``writer``'s staged tree.

        Same contract as :func:`atomic_install_dir`: the writer fully
        populates a fresh staging directory including ``marker_file``,
        and a non-empty existing target lacking the marker is refused.
        Returns the local directory the installed tree is reachable at
        (for a remote store: the not-yet-paged-in cache path).
        """

    @abstractmethod
    def local_anchor(self) -> Path:
        """Local directory that identifies this store on this machine."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.uri!r})"


def _check_key(key: str) -> str:
    """Reject keys that escape the store namespace."""
    if key.startswith("/") or key.startswith("\\"):
        raise StoreError(f"store keys are relative, got {key!r}")
    parts = [part for part in key.split("/") if part not in ("", ".")]
    if any(part == ".." for part in parts):
        raise StoreError(f"store key {key!r} escapes the store root")
    return "/".join(parts)


class LocalDirStore(ShardStore):
    """The store backing today's on-disk layout, byte for byte.

    The root *is* the saved-index directory; every operation is a plain
    filesystem operation under it and ``install`` is the pre-existing
    :func:`atomic_install_dir` swap, so directories written through
    this store are indistinguishable from ones written before stores
    existed (the sharded-equivalence suite pokes files at fixed
    relative paths to prove exactly that).
    """

    def __init__(self, root: Union[str, "os.PathLike[str]"]) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        return self._root

    @property
    def uri(self) -> str:
        return str(self._root)

    def _path(self, key: str) -> Path:
        checked = _check_key(key)
        return self._root / checked if checked else self._root

    def get(self, key: str) -> bytes:
        target = self._path(key)
        try:
            return target.read_bytes()
        except OSError as error:
            raise StoreError(
                f"no object {key!r} in store {self.uri}: {error}"
            ) from error

    def put(self, key: str, data: bytes) -> None:
        target = self._path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        staged = target.parent / f".{target.name}.put-{os.getpid()}"
        staged.write_bytes(data)
        os.replace(staged, target)

    def list(self, prefix: str = "") -> List[str]:
        base = self._path(prefix)
        if not base.is_dir():
            return []
        return sorted(
            str(item.relative_to(self._root))
            for item in base.rglob("*")
            if item.is_file()
        )

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def etag(self, key: str) -> str:
        try:
            stat = self._path(key).stat()
        except OSError as error:
            raise StoreError(
                f"no object {key!r} in store {self.uri}: {error}"
            ) from error
        return f"{stat.st_size}-{stat.st_mtime_ns}"

    def localize(self, prefix: str = "") -> Path:
        return self._path(prefix)

    def install(
        self,
        prefix: str,
        marker_file: str,
        writer: Writer,
        what: str = "saved SNT-index",
    ) -> Path:
        return atomic_install_dir(self._path(prefix), marker_file, writer, what)

    def local_anchor(self) -> Path:
        return self._root


#: Cache-state sidecar at an :class:`ObjectStore` cache root.  Holds an
#: access counter (a persisted logical clock — eviction must not depend
#: on wall-clock time) and, per cached prefix, the key→etag map it was
#: paged in against plus its byte size and last-access tick.
_STATE_FILE = ".store-state.json"


class ObjectStore(ShardStore):
    """An object-namespace store with a bounded local page-in cache.

    ``remote_root`` is a plain directory standing in for the remote
    service; objects are files under it, keys their relative paths.
    All *payload* access goes through :meth:`localize`: list the remote
    prefix, compare per-key etags with the cache's recorded state,
    fetch only what changed, delete what disappeared, and return the
    cache directory — which the mmap loaders then open like any local
    index.  Prefixes this store instance handed out stay pinned (their
    mmaps may be live); everything else is LRU-evictable once the cache
    exceeds ``cache_bytes``.

    :meth:`install` writes *through* to the remote and never populates
    the cache — marker deleted first, payload uploaded, stale objects
    removed, marker uploaded last — so a crashed install leaves a
    prefix without a marker, which every loader refuses, mirroring
    :func:`atomic_install_dir`'s guarantee without renames.
    """

    def __init__(
        self,
        remote_root: Union[str, "os.PathLike[str]"],
        cache_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        cache_bytes: Optional[int] = None,
        uri: Optional[str] = None,
    ) -> None:
        if cache_bytes is not None and cache_bytes < 0:
            raise StoreError(
                f"cache_bytes must be >= 0, got {cache_bytes!r}"
            )
        self._remote = Path(remote_root)
        if cache_dir is None:
            digest = hashlib.sha256(
                str(self._remote.absolute()).encode()
            ).hexdigest()[:12]
            cache_dir = (
                Path(tempfile.gettempdir()) / f"repro-store-cache-{digest}"
            )
        self._cache = Path(cache_dir)
        self._cache_bytes = cache_bytes
        self._uri = uri if uri is not None else f"object://{self._remote}"
        # Prefixes localized by this instance: their arrays may be
        # mmap'd by a live index, so eviction must never touch them.
        self._pinned: Set[str] = set()

    @property
    def uri(self) -> str:
        return self._uri

    def _remote_path(self, key: str) -> Path:
        checked = _check_key(key)
        return self._remote / checked if checked else self._remote

    def _cache_path(self, key: str) -> Path:
        checked = _check_key(key)
        return self._cache / checked if checked else self._cache

    # -- object plane (straight to the remote; no caching of control
    # files — manifests are small and must never be stale) -------------

    def get(self, key: str) -> bytes:
        target = self._remote_path(key)
        try:
            return target.read_bytes()
        except OSError as error:
            raise StoreError(
                f"no object {key!r} in store {self.uri}: {error}"
            ) from error

    def put(self, key: str, data: bytes) -> None:
        target = self._remote_path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        staged = target.parent / f".{target.name}.put-{os.getpid()}"
        staged.write_bytes(data)
        os.replace(staged, target)

    def delete(self, key: str) -> None:
        try:
            self._remote_path(key).unlink()
        except FileNotFoundError:
            pass
        except OSError as error:
            raise StoreError(
                f"could not delete object {key!r} from store {self.uri}: "
                f"{error}"
            ) from error

    def list(self, prefix: str = "") -> List[str]:
        base = self._remote_path(prefix)
        if not base.is_dir():
            return []
        return sorted(
            str(item.relative_to(self._remote))
            for item in base.rglob("*")
            if item.is_file() and not item.name.startswith(".")
        )

    def exists(self, key: str) -> bool:
        return self._remote_path(key).is_file()

    def etag(self, key: str) -> str:
        try:
            stat = self._remote_path(key).stat()
        except OSError as error:
            raise StoreError(
                f"no object {key!r} in store {self.uri}: {error}"
            ) from error
        return f"{stat.st_size}-{stat.st_mtime_ns}"

    # -- cache state ----------------------------------------------------

    def _load_state(self) -> Dict[str, object]:
        state_path = self._cache / _STATE_FILE
        try:
            raw = json.loads(state_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {"counter": 0, "prefixes": {}}
        if not isinstance(raw, dict) or not isinstance(
            raw.get("prefixes"), dict
        ):
            return {"counter": 0, "prefixes": {}}
        return raw

    def _save_state(self, state: Dict[str, object]) -> None:
        self._cache.mkdir(parents=True, exist_ok=True)
        staged = self._cache / f"{_STATE_FILE}.tmp-{os.getpid()}"
        staged.write_text(json.dumps(state))
        os.replace(staged, self._cache / _STATE_FILE)

    @staticmethod
    def _prefixes(state: Dict[str, object]) -> Dict[str, Dict[str, object]]:
        prefixes = state.get("prefixes")
        assert isinstance(prefixes, dict)
        return prefixes

    @staticmethod
    def _as_int(value: object) -> int:
        return value if isinstance(value, int) else 0

    def _drop_cached_prefix(
        self, state: Dict[str, object], prefix: str
    ) -> None:
        """Delete a cached prefix's recorded files (and empty parents)."""
        entry = self._prefixes(state).pop(prefix, None)
        if entry is None:
            return
        keys = entry.get("keys")
        if isinstance(keys, dict):
            for key in keys:
                try:
                    self._cache_path(key).unlink()
                except OSError:
                    pass
        # Prune now-empty directories bottom-up; best-effort only.  The
        # cache root itself stays (it holds the state sidecar and other
        # prefixes), but its emptied subtrees must not.
        root = self._cache_path(prefix)
        if root.is_dir():
            for item in sorted(
                root.rglob("*"), key=lambda p: len(p.parts), reverse=True
            ):
                if item.is_dir():
                    try:
                        item.rmdir()
                    except OSError:
                        pass
            if root != self._cache:
                try:
                    root.rmdir()
                except OSError:
                    pass

    def _overlaps_pinned(self, prefix: str) -> bool:
        return any(
            prefix.startswith(pin) or pin.startswith(prefix)
            for pin in self._pinned
        )

    def _evict(self, state: Dict[str, object]) -> None:
        """LRU-evict unpinned prefixes until the cache fits its bound."""
        if self._cache_bytes is None:
            return
        prefixes = self._prefixes(state)

        def total() -> int:
            return sum(
                self._as_int(entry.get("bytes"))
                for entry in prefixes.values()
            )

        while total() > self._cache_bytes:
            victims = sorted(
                (self._as_int(entry.get("access")), prefix)
                for prefix, entry in prefixes.items()
                if not self._overlaps_pinned(prefix)
            )
            if not victims:
                return  # everything live is pinned; the bound yields
            self._drop_cached_prefix(state, victims[0][1])

    # -- directory plane ------------------------------------------------

    def localize(self, prefix: str = "") -> Path:
        """Page ``prefix`` into the local cache and return its directory.

        Etag-validated: objects whose remote etag matches the recorded
        cache state are not re-fetched; changed or new objects are,
        and locally cached objects the remote no longer lists are
        deleted.  The returned prefix is pinned for this store
        instance's lifetime (live mmaps), then the LRU bound runs over
        the unpinned remainder.
        """
        prefix = _check_key(prefix)
        remote_keys = self.list(prefix)
        state = self._load_state()
        counter = self._as_int(state.get("counter")) + 1
        state["counter"] = counter
        prefixes = self._prefixes(state)
        entry = prefixes.get(prefix)
        known: Dict[str, str] = {}
        known_keys = entry.get("keys") if isinstance(entry, dict) else None
        if isinstance(known_keys, dict):
            known = {str(key): str(tag) for key, tag in known_keys.items()}
        fresh: Dict[str, str] = {}
        n_bytes = 0
        for key in remote_keys:
            tag = self.etag(key)
            local = self._cache_path(key)
            if known.get(key) != tag or not local.is_file():
                local.parent.mkdir(parents=True, exist_ok=True)
                staged = local.parent / f".{local.name}.fetch-{os.getpid()}"
                staged.write_bytes(self.get(key))
                os.replace(staged, local)
            fresh[key] = tag
            n_bytes += self._remote_path(key).stat().st_size
        for key in known:
            if key not in fresh:
                try:
                    self._cache_path(key).unlink()
                except OSError:
                    pass
                # Prune now-empty parents up to the cache root so a
                # stale subtree (e.g. a merged-away shard dir) does not
                # linger as empty directories beside the live payload.
                parent = self._cache_path(key).parent
                while parent != self._cache:
                    try:
                        parent.rmdir()
                    except OSError:
                        break
                    parent = parent.parent
        prefixes[prefix] = {
            "keys": fresh,
            "bytes": n_bytes,
            "access": counter,
        }
        self._pinned.add(prefix)
        self._evict(state)
        self._save_state(state)
        return self._cache_path(prefix)

    def install(
        self,
        prefix: str,
        marker_file: str,
        writer: Writer,
        what: str = "saved SNT-index",
    ) -> Path:
        prefix = _check_key(prefix)
        marker_key = f"{prefix}/{marker_file}" if prefix else marker_file
        existing = self.list(prefix)
        if existing and not self.exists(marker_key):
            raise StoreError(
                f"refusing to overwrite {self.uri}/{prefix or '.'}: "
                f"objects exist and are not a {what}"
            )
        staging = Path(tempfile.mkdtemp(prefix="repro-store-install-"))
        try:
            writer(staging)
            staged_files = {
                str(item.relative_to(staging)): item
                for item in staging.rglob("*")
                if item.is_file()
            }
            if marker_file not in staged_files:
                raise StoreError(
                    f"install writer produced no {marker_file!r} marker"
                )
            # Marker first out, last in: between the two uploads the
            # prefix is never marker-complete, so a crash mid-install
            # can only leave a tree every loader refuses.
            self.delete(marker_key)
            for rel, item in sorted(staged_files.items()):
                if rel == marker_file:
                    continue
                key = f"{prefix}/{rel}" if prefix else rel
                self.put(key, item.read_bytes())
            fresh_keys = {
                f"{prefix}/{rel}" if prefix else rel for rel in staged_files
            }
            for key in existing:
                if key not in fresh_keys and key != marker_key:
                    self.delete(key)
            self.put(marker_key, staged_files[marker_file].read_bytes())
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        # Invalidate cached state overlapping the installed prefix so
        # the next localize re-validates everything against the remote.
        state = self._load_state()
        for cached in list(self._prefixes(state)):
            if cached.startswith(prefix) or prefix.startswith(cached):
                self._drop_cached_prefix(state, cached)
        self._save_state(state)
        return self._cache_path(prefix)

    def local_anchor(self) -> Path:
        self._cache.mkdir(parents=True, exist_ok=True)
        return self._cache


def is_store_uri(text: str) -> bool:
    """Whether ``text`` is a store URI rather than a plain path.

    Recognised schemes only — a Windows-style drive or a path that
    merely contains ``:`` is not a URI.
    """
    return text.startswith(("file:", "object://"))


def _parse_object_uri(uri: str) -> ObjectStore:
    rest = uri[len("object://"):]
    query = ""
    if "?" in rest:
        rest, query = rest.split("?", 1)
    root = unquote(rest)
    if not root:
        raise StoreError(f"store URI {uri!r} names no remote root")
    cache_dir: Optional[str] = None
    cache_bytes: Optional[int] = None
    for name, values in parse_qs(query, keep_blank_values=True).items():
        value = values[-1]
        if name == "cache":
            cache_dir = value
        elif name == "cache_bytes":
            try:
                cache_bytes = int(value)
            except ValueError:
                raise StoreError(
                    f"store URI {uri!r}: cache_bytes={value!r} is not an "
                    "integer"
                ) from None
        else:
            raise StoreError(
                f"store URI {uri!r} has unknown parameter {name!r} "
                "(knows: cache, cache_bytes)"
            )
    return ObjectStore(
        root, cache_dir=cache_dir, cache_bytes=cache_bytes, uri=uri
    )


def as_store(source: StoreSource) -> ShardStore:
    """Normalise a path, store URI, or store instance to a store.

    The universal entry point of the persistence layer: every loader
    and saver calls this on its ``path`` argument, which is how bare
    ``Path`` call sites keep working while URI-configured deployments
    route to remote backends.
    """
    if isinstance(source, ShardStore):
        return source
    if isinstance(source, os.PathLike):
        return LocalDirStore(Path(source))
    if not isinstance(source, str):
        raise StoreError(
            f"cannot interpret {source!r} as a store (expected a path, "
            "store URI, or ShardStore)"
        )
    if source.startswith("object://"):
        return _parse_object_uri(source)
    if source.startswith("file://"):
        return LocalDirStore(Path(unquote(source[len("file://"):]) or "/"))
    if source.startswith("file:"):
        return LocalDirStore(Path(unquote(source[len("file:"):])))
    if ":" in source.split("/", 1)[0] and "://" in source:
        raise StoreError(
            f"unknown store URI scheme in {source!r} (knows: file:, "
            "object://)"
        )
    return LocalDirStore(Path(source))
