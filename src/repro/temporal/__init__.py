"""Temporal index substrate: B+-tree, CSS-tree, and the per-edge forest.

Implements the temporal half of the SNT-index (paper Sections 4.1.2, 4.1.3
and 4.3.1): for every road segment a tree keyed by traversal entry time
whose leaves carry ``(isa, d, TT, a, seq, w)``.
"""

from .btree import BPlusTree
from .css_tree import CSSTree
from .forest import EdgeTemporalIndex, TemporalForest
from .records import LeafRecord, TraversalColumns

__all__ = [
    "BPlusTree",
    "CSSTree",
    "EdgeTemporalIndex",
    "TemporalForest",
    "LeafRecord",
    "TraversalColumns",
]
