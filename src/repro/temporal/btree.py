"""In-memory B+-tree multimap.

Stands in for Google's ``cpp-btree`` ``btree_multimap`` used by the paper's
B+-tree forest (Section 6.3).  Keys are integer timestamps, values are row
ids into a :class:`~repro.temporal.records.TraversalColumns` store.  The
tree supports point inserts, bulk loading, ordered iteration, and range
scans; duplicate keys are allowed and preserved in insertion order.

Unlike the CSS-tree, counting the entries of a key range costs O(k) leaf
walking here — which is exactly why the paper's BT estimator modes fall back
to the naive time-frame selectivity formula (3) instead of exact counts.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Tuple

__all__ = ["BPlusTree"]

#: Maximum number of keys per node (cpp-btree uses large nodes as well).
DEFAULT_ORDER = 32


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: List[int] = []
        self.values: List[int] = []
        self.next: "_Leaf | None" = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: List[int] = []  # separator keys
        self.children: List[object] = []


class BPlusTree:
    """B+-tree multimap from int key to int value."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError("order must be at least 4")
        self._order = order
        self._root: object = _Leaf()
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, key: int, value: int) -> None:
        """Insert ``(key, value)``; duplicates keep insertion order."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Inner()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert(self, node, key: int, value: int):
        if isinstance(node, _Leaf):
            # bisect_right keeps duplicate keys in insertion order.
            position = bisect.bisect_right(node.keys, key)
            node.keys.insert(position, key)
            node.values.insert(position, value)
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        position = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[position], key, value)
        if split is not None:
            separator, right = split
            node.keys.insert(position, separator)
            node.children.insert(position + 1, right)
            if len(node.children) > self._order:
                return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_inner(self, inner: _Inner):
        middle = len(inner.keys) // 2
        separator = inner.keys[middle]
        right = _Inner()
        right.keys = inner.keys[middle + 1 :]
        right.children = inner.children[middle + 1 :]
        inner.keys = inner.keys[:middle]
        inner.children = inner.children[: middle + 1]
        return separator, right

    @classmethod
    def bulk_load(
        cls, pairs: List[Tuple[int, int]], order: int = DEFAULT_ORDER
    ) -> "BPlusTree":
        """Build a tree from ``(key, value)`` pairs (sorted or not)."""
        tree = cls(order=order)
        for key, value in sorted(pairs, key=lambda kv: kv[0]):
            tree.insert(key, value)
        return tree

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def _leftmost_leaf(self, key: int) -> Tuple[_Leaf, int]:
        """Leaf and in-leaf position of the first entry with ``k >= key``."""
        node = self._root
        while isinstance(node, _Inner):
            position = bisect.bisect_left(node.keys, key)
            # Separator equal to key: entries equal to key may live in the
            # right child, but earlier duplicates sit left of it; descend
            # left-most among equals.
            node = node.children[position]
        position = bisect.bisect_left(node.keys, key)
        return node, position

    def range_scan(self, lo: int, hi: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(key, value)`` for all entries with ``lo <= key < hi``."""
        if lo >= hi:
            return
        leaf, position = self._leftmost_leaf(lo)
        while leaf is not None:
            keys = leaf.keys
            n = len(keys)
            while position < n:
                key = keys[position]
                if key >= hi:
                    return
                yield key, leaf.values[position]
                position += 1
            leaf = leaf.next
            position = 0

    def range_values(self, lo: int, hi: int) -> List[int]:
        """Values of all entries in ``[lo, hi)`` in key order."""
        return [value for _, value in self.range_scan(lo, hi)]

    def range_count(self, lo: int, hi: int) -> int:
        """Count entries in ``[lo, hi)``; O(k), unlike the CSS-tree."""
        return sum(1 for _ in self.range_scan(lo, hi))

    def items(self) -> Iterator[Tuple[int, int]]:
        """All entries in key order."""
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def min_key(self) -> int | None:
        for key, _ in self.items():
            return key
        return None

    def max_key(self) -> int | None:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[-1]
        if not node.keys:
            return None
        return node.keys[-1]

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError``."""
        size = sum(1 for _ in self.items())
        assert size == self._size, "size bookkeeping out of sync"
        keys = [key for key, _ in self.items()]
        assert keys == sorted(keys), "leaf chain must be sorted"
        self._validate_node(self._root, depth=1)

    def _validate_node(self, node, depth: int) -> int:
        if isinstance(node, _Leaf):
            assert len(node.keys) == len(node.values)
            assert len(node.keys) <= self._order
            return depth
        assert len(node.children) == len(node.keys) + 1
        assert len(node.children) <= self._order
        depths = {self._validate_node(child, depth + 1) for child in node.children}
        assert len(depths) == 1, "all leaves must sit at the same depth"
        return depths.pop()

    def size_in_bytes(self) -> int:
        """Modelled C++ size: 16 B per entry plus ~20 % node overhead.

        Matches the paper's observation (Fig. 10a) that the B+-tree forest
        needs slightly more memory than the CSS forest for the same leaves.
        """
        return int(self._size * 16 * 1.2) + 64
