"""Cache-sensitive search tree (CSS-tree) over a sorted key array.

Rao and Ross's CSS-tree (paper Section 4.3.1) is a pointer-less directory
laid over a sorted array: internal nodes are stored in a contiguous array
and child positions are computed arithmetically, so a search touches one
cache line per level.  The paper uses it as an append-only replacement for
the B+-tree forest; its ability to compute the size of a key range in
logarithmic time powers the CSS-Fast/CSS-Acc cardinality estimator modes.

This implementation keeps the directory as a list of numpy levels (each
level stores the *first* key of every node of the level below), performs
searches by explicit directory descent, and exposes ``lower_bound``,
``range_bounds`` and ``range_count``.  A vectorised ``bounds_fast`` using
``numpy.searchsorted`` is provided for hot loops; tests assert both paths
agree everywhere.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["CSSTree"]

#: Keys per node: 64-byte cache line / 4-byte key + one child slot, as in
#: Rao & Ross.  Any value >= 2 works; 16 keeps directories shallow.
DEFAULT_NODE_KEYS = 16


class CSSTree:
    """Append-only search tree over a sorted int64 key array."""

    def __init__(self, keys: np.ndarray, node_keys: int = DEFAULT_NODE_KEYS):
        if node_keys < 2:
            raise ValueError("node_keys must be at least 2")
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and np.any(np.diff(keys) < 0):
            raise ValueError("CSS-tree requires sorted keys")
        self._node_keys = node_keys
        self._keys = keys
        self._levels: List[np.ndarray] = []
        self._rebuild_directory()

    def _rebuild_directory(self) -> None:
        """Build directory levels bottom-up.

        ``_levels[0]`` summarises the key array; ``_levels[i]`` summarises
        ``_levels[i-1]``.  Each directory entry is the first key of the node
        it points to.
        """
        self._levels = []
        m = self._node_keys
        current = self._keys
        while current.size > m:
            summary = current[::m].copy()
            self._levels.append(summary)
            current = summary

    def __len__(self) -> int:
        return int(self._keys.size)

    @property
    def keys(self) -> np.ndarray:
        return self._keys

    @property
    def height(self) -> int:
        """Number of directory levels above the key array."""
        return len(self._levels)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def lower_bound(self, key: int) -> int:
        """Index of the first key ``>= key`` via directory descent."""
        m = self._node_keys
        # Start at the top directory level and narrow one node per level.
        # Each directory entry holds the *first* key of the node it covers,
        # so the descent follows the last entry strictly smaller than the
        # key; duplicates spanning node boundaries are then found by the
        # final in-node search.
        node_start = 0
        for level in reversed(self._levels):
            lo = node_start
            hi = min(node_start + m, level.size)
            child = lo
            for position in range(lo, hi):
                if level[position] < key:
                    child = position
                else:
                    break
            node_start = child * m
        lo = node_start
        hi = min(node_start + m, self._keys.size)
        segment = self._keys[lo:hi]
        return lo + int(np.searchsorted(segment, key, side="left"))

    def bounds_fast(self, lo_key: int, hi_key: int) -> Tuple[int, int]:
        """Vectorised ``(lower_bound(lo_key), lower_bound(hi_key))``."""
        lo = int(np.searchsorted(self._keys, lo_key, side="left"))
        hi = int(np.searchsorted(self._keys, hi_key, side="left"))
        return lo, hi

    def range_bounds(self, lo_key: int, hi_key: int) -> Tuple[int, int]:
        """Positions ``[lo, hi)`` of entries with ``lo_key <= k < hi_key``."""
        if lo_key >= hi_key:
            return (0, 0)
        return self.lower_bound(lo_key), self.lower_bound(hi_key)

    def range_count(self, lo_key: int, hi_key: int) -> int:
        """Exact number of keys in ``[lo_key, hi_key)`` in O(log n).

        This is the operation the paper highlights: "its ability to
        efficiently compute the size of a key range in logarithmic time is
        used to improve the accuracy of the cardinality estimator".
        """
        lo, hi = self.range_bounds(lo_key, hi_key)
        return max(0, hi - lo)

    def min_key(self) -> int | None:
        return int(self._keys[0]) if self._keys.size else None

    def max_key(self) -> int | None:
        return int(self._keys[-1]) if self._keys.size else None

    # ------------------------------------------------------------------ #
    # Append-only maintenance
    # ------------------------------------------------------------------ #

    def append_batch(self, new_keys: np.ndarray) -> None:
        """Append a sorted batch of keys ``>=`` the current maximum.

        The CSS-tree indexes a sorted array, so only appends are efficient
        (paper: "we deem this an acceptable trade-off because inserting
        additional trajectories would also require a re-computation of the
        entire FM-index").
        """
        new_keys = np.asarray(new_keys, dtype=np.int64)
        if new_keys.size == 0:
            return
        if np.any(np.diff(new_keys) < 0):
            raise ValueError("appended batch must be sorted")
        if self._keys.size and new_keys[0] < self._keys[-1]:
            raise ValueError(
                "appended keys must not precede the current maximum; "
                "rebuild the tree for out-of-order inserts"
            )
        self._keys = np.concatenate([self._keys, new_keys])
        self._rebuild_directory()

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check directory invariants; raises ``AssertionError``."""
        assert not np.any(np.diff(self._keys) < 0)
        m = self._node_keys
        below = self._keys
        for level in self._levels:
            assert level.size == (below.size + m - 1) // m
            assert np.array_equal(level, below[::m])
            below = level
        if self._levels:
            assert self._levels[-1].size <= m

    def size_in_bytes(self) -> int:
        """Modelled size: 8 B per key + directory (no pointers)."""
        directory = sum(level.size for level in self._levels)
        return int(8 * (self._keys.size + directory))
