"""Per-segment temporal index forest (paper Sections 4.1.2-4.1.3, 4.3.1).

``F = {Phi_e | e in E}`` holds one temporal index per segment, keyed by the
entry timestamp ``t`` of each traversal.  Two tree variants are supported:

* ``"css"`` — the CSS-tree over the sorted timestamp column (default; the
  paper's optimised configuration), and
* ``"btree"`` — a B+-tree multimap (the original SNT-index configuration).

The forest answers *time-predicate* row selections; spatial (ISA range) and
user filtering happen in :mod:`repro.sntindex.procedures` on top of the row
sets returned here.

Sorted auxiliary orders
-----------------------
Besides the primary ``t``-sorted leaf order, each edge index maintains two
lazily built (and optionally persisted) sort permutations:

* ``tod_order`` — rows sorted by time of day.  A periodic predicate then
  reduces to at most two ``searchsorted`` cuts on the sorted
  time-of-day column (plus an O(k log k) re-sort of the selected rows back
  to scan order), and ``count_periodic`` to the cut widths alone —
  O(log n) instead of the former full-column ``np.mod`` pass per query.
* ``probe_order`` — rows sorted by the packed ``(d, seq)`` composite key
  (:func:`repro.temporal.records.pack_probe_keys`).  The retrieval's
  probe join binary-searches this order instead of scanning the whole
  ``d`` column per query.

Both orders are pure functions of the (immutable) columns, so adopting
them from a saved index (format v2.1) is safe and zero-copy; v2 payloads
without them simply rebuild the orders on first use.

Periodic scans
--------------
A periodic time-of-day predicate selects every traversal whose time of day
falls in a window, across all days (paper Section 2.3).  The CSS variant
evaluates it on the sorted time-of-day order as described above.  The
B+-tree variant performs one range scan per day, which is the faithful
tree access path and is measurably slower, matching the relationship shown
in Figure 11b.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
import numpy.typing as npt

from ..config import SECONDS_PER_DAY
from .btree import BPlusTree
from .css_tree import CSSTree
from .records import TraversalColumns

__all__ = ["EdgeTemporalIndex", "TemporalForest", "SlicedTemporalForest"]

Int64Array = npt.NDArray[np.int64]


def _adopt_permutation(
    permutation: Optional[Int64Array], n_rows: int
) -> Optional[Int64Array]:
    """Accept a persisted sort permutation if its shape fits the columns."""
    if permutation is None or int(permutation.size) != n_rows:
        return None
    return permutation


class EdgeTemporalIndex:
    """Temporal index ``Phi_e`` of one segment."""

    def __init__(
        self,
        columns: TraversalColumns,
        kind: str = "css",
        tod_order: Optional[Int64Array] = None,
        probe_order: Optional[Int64Array] = None,
    ) -> None:
        if kind not in ("css", "btree"):
            raise ValueError(f"unknown temporal index kind {kind!r}")
        self.kind = kind
        self.columns = columns
        n_rows = len(columns)
        self._tod: Int64Array = (
            np.mod(columns.t, SECONDS_PER_DAY)
            if n_rows
            else np.empty(0, np.int64)
        )
        # Sorted auxiliary orders: adopted from persistence when offered
        # (zero-copy mmap slices), else built lazily on first use.
        self._tod_order = _adopt_permutation(tod_order, n_rows)
        self._probe_order = _adopt_permutation(probe_order, n_rows)
        self.tod_order_adopted = self._tod_order is not None
        self.probe_order_adopted = self._probe_order is not None
        self._tod_sorted: Optional[Int64Array] = None
        self._probe_keys_sorted: Optional[Int64Array] = None
        if kind == "css":
            self.tree: Union[CSSTree, BPlusTree] = CSSTree(columns.t)
        else:
            tree = BPlusTree()
            for row, key in enumerate(columns.t.tolist()):
                tree.insert(key, row)
            self.tree = tree

    def __len__(self) -> int:
        return len(self.columns)

    @property
    def supports_fast_count(self) -> bool:
        """Only the CSS-tree can count a key range in O(log n)."""
        return self.kind == "css"

    def min_t(self) -> Optional[int]:
        return self.tree.min_key()

    def max_t(self) -> Optional[int]:
        return self.tree.max_key()

    # ------------------------------------------------------------------ #
    # Sorted auxiliary orders
    # ------------------------------------------------------------------ #

    @property
    def tod_order(self) -> Int64Array:
        """Permutation sorting rows by time of day (stable, so equal
        times keep scan order)."""
        if self._tod_order is None:
            self._tod_order = np.argsort(self._tod, kind="stable").astype(
                np.int64, copy=False
            )
        return self._tod_order

    def _tod_sorted_keys(self) -> Int64Array:
        if self._tod_sorted is None:
            self._tod_sorted = np.asarray(
                self._tod[self.tod_order], dtype=np.int64
            )
        return self._tod_sorted

    @property
    def probe_order(self) -> Int64Array:
        """Permutation sorting rows by the packed ``(d, seq)`` key."""
        if self._probe_order is None:
            self._probe_order = np.argsort(
                self.columns.probe_keys(), kind="stable"
            ).astype(np.int64, copy=False)
        return self._probe_order

    def probe_keys_sorted(self) -> Int64Array:
        """The packed ``(d, seq)`` keys in :attr:`probe_order` order."""
        if self._probe_keys_sorted is None:
            keys: Int64Array = self.columns.probe_keys()
            self._probe_keys_sorted = np.asarray(
                keys[self.probe_order], dtype=np.int64
            )
        return self._probe_keys_sorted

    def _periodic_cuts(
        self, start_tod: int, duration: int
    ) -> List[Tuple[int, int]]:
        """Tod-sorted position ranges covering the periodic window.

        Callers guarantee ``0 <= start_tod < SECONDS_PER_DAY`` and
        ``0 < duration < SECONDS_PER_DAY``; the window is at most two
        contiguous runs of the sorted time-of-day column (one when it
        does not wrap midnight).
        """
        keys = self._tod_sorted_keys()
        end = start_tod + duration
        segments = [(start_tod, min(end, SECONDS_PER_DAY))]
        if end > SECONDS_PER_DAY:
            segments.append((0, end - SECONDS_PER_DAY))
        cuts: List[Tuple[int, int]] = []
        for lo, hi in segments:
            a = int(np.searchsorted(keys, lo, side="left"))
            b = int(np.searchsorted(keys, hi, side="left"))
            if b > a:
                cuts.append((a, b))
        return cuts

    # ------------------------------------------------------------------ #
    # Row selection by time predicate
    # ------------------------------------------------------------------ #

    def rows_fixed(self, lo: int, hi: int) -> Int64Array:
        """Rows with ``lo <= t < hi`` in ascending ``t`` order."""
        if lo >= hi or not len(self):
            return np.empty(0, dtype=np.int64)
        if self.kind == "css":
            assert isinstance(self.tree, CSSTree)
            start, stop = self.tree.bounds_fast(lo, hi)
            return np.arange(start, stop, dtype=np.int64)
        assert isinstance(self.tree, BPlusTree)
        return np.asarray(self.tree.range_values(lo, hi), dtype=np.int64)

    def rows_fixed_many(
        self, los: Sequence[int], his: Sequence[int]
    ) -> List[Int64Array]:
        """Batched :meth:`rows_fixed`: one stacked ``searchsorted`` pair
        resolves every query's bounds (CSS only; the B+-tree loops)."""
        if self.kind != "css" or not len(self):
            return [self.rows_fixed(lo, hi) for lo, hi in zip(los, his)]
        lo_arr = np.asarray(los, dtype=np.int64)
        hi_arr = np.asarray(his, dtype=np.int64)
        starts = np.searchsorted(self.columns.t, lo_arr, side="left")
        stops = np.searchsorted(self.columns.t, hi_arr, side="left")
        return [
            (
                np.arange(int(start), int(stop), dtype=np.int64)
                if lo < hi
                else np.empty(0, dtype=np.int64)
            )
            for lo, hi, start, stop in zip(lo_arr, hi_arr, starts, stops)
        ]

    def rows_periodic(self, start_tod: int, duration: int) -> Int64Array:
        """Rows whose time of day lies in the periodic window.

        The window covers ``[start_tod, start_tod + duration)`` modulo one
        day; ``duration >= SECONDS_PER_DAY`` selects every row.
        """
        if duration <= 0 or not len(self):
            return np.empty(0, dtype=np.int64)
        if duration >= SECONDS_PER_DAY:
            return np.arange(len(self), dtype=np.int64)
        start_tod = int(start_tod) % SECONDS_PER_DAY
        if self.kind == "css":
            order = self.tod_order
            cuts = self._periodic_cuts(start_tod, duration)
            if not cuts:
                return np.empty(0, dtype=np.int64)
            if len(cuts) == 1:
                selected = order[cuts[0][0] : cuts[0][1]]
            else:
                selected = np.concatenate([order[a:b] for a, b in cuts])
            # Ascending row position == ascending entry time (scan order),
            # exactly what the former np.mod full-column pass emitted.
            return np.asarray(np.sort(selected), dtype=np.int64)
        return self._rows_periodic_btree(start_tod, duration)

    def rows_periodic_many(
        self, start_tods: Sequence[int], durations: Sequence[int]
    ) -> List[Int64Array]:
        """Batched :meth:`rows_periodic`: all window cuts of the group
        resolve through one stacked ``searchsorted`` pair on the shared
        time-of-day order (CSS only; the B+-tree loops)."""
        if self.kind != "css" or not len(self):
            return [
                self.rows_periodic(start, duration)
                for start, duration in zip(start_tods, durations)
            ]
        n_rows = len(self)
        results: List[Optional[Int64Array]] = [None] * len(start_tods)
        seg_lo: List[int] = []
        seg_hi: List[int] = []
        seg_owner: List[int] = []
        for i, (start, duration) in enumerate(zip(start_tods, durations)):
            if duration <= 0:
                results[i] = np.empty(0, dtype=np.int64)
                continue
            if duration >= SECONDS_PER_DAY:
                results[i] = np.arange(n_rows, dtype=np.int64)
                continue
            start = int(start) % SECONDS_PER_DAY
            end = start + int(duration)
            seg_lo.append(start)
            seg_hi.append(min(end, SECONDS_PER_DAY))
            seg_owner.append(i)
            if end > SECONDS_PER_DAY:
                seg_lo.append(0)
                seg_hi.append(end - SECONDS_PER_DAY)
                seg_owner.append(i)
        if seg_owner:
            keys = self._tod_sorted_keys()
            order = self.tod_order
            cut_a = np.searchsorted(keys, np.asarray(seg_lo), side="left")
            cut_b = np.searchsorted(keys, np.asarray(seg_hi), side="left")
            parts: Dict[int, List[Int64Array]] = {}
            for owner, a, b in zip(seg_owner, cut_a, cut_b):
                if b > a:
                    parts.setdefault(owner, []).append(order[int(a) : int(b)])
            for i in seg_owner:
                if results[i] is not None:
                    continue
                chunks = parts.get(i)
                if not chunks:
                    results[i] = np.empty(0, dtype=np.int64)
                elif len(chunks) == 1:
                    results[i] = np.asarray(
                        np.sort(chunks[0]), dtype=np.int64
                    )
                else:
                    results[i] = np.asarray(
                        np.sort(np.concatenate(chunks)), dtype=np.int64
                    )
        return [
            rows if rows is not None else np.empty(0, dtype=np.int64)
            for rows in results
        ]

    def _rows_periodic_btree(
        self, start_tod: int, duration: int
    ) -> Int64Array:
        """One B+-tree range scan per day of the data span."""
        assert isinstance(self.tree, BPlusTree)
        lo_t, hi_t = self.tree.min_key(), self.tree.max_key()
        if lo_t is None or hi_t is None:
            return np.empty(0, dtype=np.int64)
        first_day = (lo_t - start_tod - duration) // SECONDS_PER_DAY
        last_day = (hi_t - start_tod) // SECONDS_PER_DAY
        collected: List[int] = []
        for day in range(first_day, last_day + 1):
            window_lo = day * SECONDS_PER_DAY + start_tod
            collected.extend(
                self.tree.range_values(window_lo, window_lo + duration)
            )
        return np.asarray(collected, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Counting
    # ------------------------------------------------------------------ #

    def count_fixed(self, lo: int, hi: int) -> int:
        """Exact count of rows in ``[lo, hi)``.

        O(log n) for the CSS-tree; O(k) leaf walking for the B+-tree (the
        reason the paper's BT estimator modes use the naive formula (3)).
        """
        if lo >= hi:
            return 0
        return self.tree.range_count(lo, hi)

    def count_periodic(self, start_tod: int, duration: int) -> int:
        """Exact count of rows in the periodic window.

        O(log n) on the CSS variant — the count is the width of the (at
        most two) sorted time-of-day cuts, no row materialisation.
        """
        if duration <= 0 or not len(self):
            return 0
        if duration >= SECONDS_PER_DAY:
            return len(self)
        if self.kind != "css":
            return int(self.rows_periodic(start_tod, duration).size)
        start_tod = int(start_tod) % SECONDS_PER_DAY
        return sum(b - a for a, b in self._periodic_cuts(start_tod, duration))

    def size_in_bytes(self, with_partition_id: bool = True) -> int:
        """Leaf payload plus tree structure, using the C++-layout model."""
        return self.columns.size_in_bytes(with_partition_id) + (
            self.tree.size_in_bytes() if self.kind == "btree" else
            self.tree.size_in_bytes() - 8 * len(self)  # keys shared w/ leaves
        )


class TemporalForest:
    """The forest ``F``: one :class:`EdgeTemporalIndex` per segment."""

    def __init__(self, kind: str = "css") -> None:
        if kind not in ("css", "btree"):
            raise ValueError(f"unknown temporal index kind {kind!r}")
        self.kind = kind
        self._indexes: Dict[int, EdgeTemporalIndex] = {}

    @classmethod
    def build(
        cls, per_edge_columns: Dict[int, TraversalColumns], kind: str = "css"
    ) -> "TemporalForest":
        forest = cls(kind=kind)
        for edge, columns in per_edge_columns.items():
            forest._indexes[int(edge)] = EdgeTemporalIndex(columns, kind=kind)
        return forest

    def __contains__(self, edge: int) -> bool:
        return int(edge) in self._indexes

    def __len__(self) -> int:
        return len(self._indexes)

    def edges(self) -> Iterable[int]:
        return self._indexes.keys()

    def get(self, edge: int) -> Optional[EdgeTemporalIndex]:
        """Index of ``edge`` or ``None`` when no trajectory traversed it."""
        return self._indexes.get(int(edge))

    def total_records(self) -> int:
        return sum(len(index) for index in self._indexes.values())

    def size_in_bytes(self, with_partition_id: bool = True) -> int:
        return sum(
            index.size_in_bytes(with_partition_id)
            for index in self._indexes.values()
        )


class SlicedTemporalForest(TemporalForest):
    """A forest whose per-edge indexes materialise on first access.

    Backed by the persistence layer's concatenated column arrays (one
    slice per edge, each slice already sorted by ``t`` — the on-disk
    order is the forest's leaf order), typically opened with
    ``mmap_mode="r"``.  Opening a saved index therefore touches no
    column data; an edge's tree directory is built the first time a
    query reaches that edge, from zero-copy slices of the mapped
    arrays, and cached like any built :class:`EdgeTemporalIndex`.

    Format v2.1 payloads additionally carry the two per-edge sort
    permutations (time-of-day and probe-key order), concatenated with
    the same offset table; their slices are handed to each edge index
    zero-copy, so neither order is ever re-sorted after a load.  v2
    payloads without them pass ``None`` and the orders build lazily.
    """

    def __init__(
        self,
        kind: str,
        edge_ids: Int64Array,
        offsets: Int64Array,
        columns: Dict[str, np.ndarray],
        tod_order: Optional[Int64Array] = None,
        probe_order: Optional[Int64Array] = None,
    ) -> None:
        super().__init__(kind=kind)
        self._columns = columns
        self._perm_tod = tod_order
        self._perm_probe = probe_order
        self._bounds: Dict[int, Tuple[int, int]] = {
            int(edge): (int(offsets[i]), int(offsets[i + 1]))
            for i, edge in enumerate(edge_ids)
        }

    def __contains__(self, edge: int) -> bool:
        return int(edge) in self._bounds

    def __len__(self) -> int:
        return len(self._bounds)

    def edges(self) -> Iterable[int]:
        return self._bounds.keys()

    def get(self, edge: int) -> Optional[EdgeTemporalIndex]:
        edge = int(edge)
        built = self._indexes.get(edge)
        if built is not None:
            return built
        bounds = self._bounds.get(edge)
        if bounds is None:
            return None
        lo, hi = bounds
        cols = self._columns
        # The slices are pre-sorted by ``t``; constructing the dataclass
        # directly skips ``from_arrays``'s argsort (and any copy).
        columns = TraversalColumns(
            t=cols["t"][lo:hi],
            isa=cols["isa"][lo:hi],
            d=cols["d"][lo:hi],
            tt=cols["tt"][lo:hi],
            a=cols["a"][lo:hi],
            seq=cols["seq"][lo:hi],
            w=cols["w"][lo:hi],
        )
        built = EdgeTemporalIndex(
            columns,
            kind=self.kind,
            tod_order=(
                self._perm_tod[lo:hi]
                if self._perm_tod is not None
                else None
            ),
            probe_order=(
                self._perm_probe[lo:hi]
                if self._perm_probe is not None
                else None
            ),
        )
        self._indexes[edge] = built
        return built

    def total_records(self) -> int:
        return sum(hi - lo for lo, hi in self._bounds.values())

    def size_in_bytes(self, with_partition_id: bool = True) -> int:
        # Size accounting is a model over the leaf payload; it forces
        # materialisation (experiments that cost the structure touch
        # every edge anyway).
        total = 0
        for edge in self.edges():
            phi = self.get(edge)
            assert phi is not None
            total += phi.size_in_bytes(with_partition_id)
        return total
