"""Per-segment temporal index forest (paper Sections 4.1.2-4.1.3, 4.3.1).

``F = {Phi_e | e in E}`` holds one temporal index per segment, keyed by the
entry timestamp ``t`` of each traversal.  Two tree variants are supported:

* ``"css"`` — the CSS-tree over the sorted timestamp column (default; the
  paper's optimised configuration), and
* ``"btree"`` — a B+-tree multimap (the original SNT-index configuration).

The forest answers *time-predicate* row selections; spatial (ISA range) and
user filtering happen in :mod:`repro.sntindex.procedures` on top of the row
sets returned here.

Periodic scans
--------------
A periodic time-of-day predicate selects every traversal whose time of day
falls in a window, across all days (paper Section 2.3).  The CSS variant
evaluates it with one vectorised pass over the edge's (cached) time-of-day
column — the pure-array equivalent of the C++ implementation's tight scan.
The B+-tree variant performs one range scan per day, which is the faithful
tree access path and is measurably slower, matching the relationship shown
in Figure 11b.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..config import SECONDS_PER_DAY
from .btree import BPlusTree
from .css_tree import CSSTree
from .records import TraversalColumns

__all__ = ["EdgeTemporalIndex", "TemporalForest", "SlicedTemporalForest"]


class EdgeTemporalIndex:
    """Temporal index ``Phi_e`` of one segment."""

    def __init__(self, columns: TraversalColumns, kind: str = "css"):
        if kind not in ("css", "btree"):
            raise ValueError(f"unknown temporal index kind {kind!r}")
        self.kind = kind
        self.columns = columns
        self._tod = (
            np.mod(columns.t, SECONDS_PER_DAY)
            if len(columns)
            else np.empty(0, np.int64)
        )
        if kind == "css":
            self.tree: CSSTree | BPlusTree = CSSTree(columns.t)
        else:
            tree = BPlusTree()
            for row, key in enumerate(columns.t.tolist()):
                tree.insert(key, row)
            self.tree = tree

    def __len__(self) -> int:
        return len(self.columns)

    @property
    def supports_fast_count(self) -> bool:
        """Only the CSS-tree can count a key range in O(log n)."""
        return self.kind == "css"

    def min_t(self) -> int | None:
        return self.tree.min_key()

    def max_t(self) -> int | None:
        return self.tree.max_key()

    # ------------------------------------------------------------------ #
    # Row selection by time predicate
    # ------------------------------------------------------------------ #

    def rows_fixed(self, lo: int, hi: int) -> np.ndarray:
        """Rows with ``lo <= t < hi`` in ascending ``t`` order."""
        if lo >= hi or not len(self):
            return np.empty(0, dtype=np.int64)
        if self.kind == "css":
            start, stop = self.tree.bounds_fast(lo, hi)
            return np.arange(start, stop, dtype=np.int64)
        return np.asarray(self.tree.range_values(lo, hi), dtype=np.int64)

    def rows_periodic(self, start_tod: int, duration: int) -> np.ndarray:
        """Rows whose time of day lies in the periodic window.

        The window covers ``[start_tod, start_tod + duration)`` modulo one
        day; ``duration >= SECONDS_PER_DAY`` selects every row.
        """
        if duration <= 0 or not len(self):
            return np.empty(0, dtype=np.int64)
        if duration >= SECONDS_PER_DAY:
            return np.arange(len(self), dtype=np.int64)
        start_tod = int(start_tod) % SECONDS_PER_DAY
        if self.kind == "css":
            offset = np.mod(self._tod - start_tod, SECONDS_PER_DAY)
            return np.nonzero(offset < duration)[0].astype(np.int64)
        return self._rows_periodic_btree(start_tod, duration)

    def _rows_periodic_btree(self, start_tod: int, duration: int) -> np.ndarray:
        """One B+-tree range scan per day of the data span."""
        lo_t, hi_t = self.tree.min_key(), self.tree.max_key()
        if lo_t is None:
            return np.empty(0, dtype=np.int64)
        first_day = (lo_t - start_tod - duration) // SECONDS_PER_DAY
        last_day = (hi_t - start_tod) // SECONDS_PER_DAY
        collected: list = []
        for day in range(first_day, last_day + 1):
            window_lo = day * SECONDS_PER_DAY + start_tod
            collected.extend(
                self.tree.range_values(window_lo, window_lo + duration)
            )
        return np.asarray(collected, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Counting
    # ------------------------------------------------------------------ #

    def count_fixed(self, lo: int, hi: int) -> int:
        """Exact count of rows in ``[lo, hi)``.

        O(log n) for the CSS-tree; O(k) leaf walking for the B+-tree (the
        reason the paper's BT estimator modes use the naive formula (3)).
        """
        if lo >= hi:
            return 0
        return self.tree.range_count(lo, hi)

    def count_periodic(self, start_tod: int, duration: int) -> int:
        """Exact count of rows in the periodic window."""
        return int(self.rows_periodic(start_tod, duration).size)

    def size_in_bytes(self, with_partition_id: bool = True) -> int:
        """Leaf payload plus tree structure, using the C++-layout model."""
        return self.columns.size_in_bytes(with_partition_id) + (
            self.tree.size_in_bytes() if self.kind == "btree" else
            self.tree.size_in_bytes() - 8 * len(self)  # keys shared w/ leaves
        )


class TemporalForest:
    """The forest ``F``: one :class:`EdgeTemporalIndex` per segment."""

    def __init__(self, kind: str = "css"):
        if kind not in ("css", "btree"):
            raise ValueError(f"unknown temporal index kind {kind!r}")
        self.kind = kind
        self._indexes: Dict[int, EdgeTemporalIndex] = {}

    @classmethod
    def build(
        cls, per_edge_columns: Dict[int, TraversalColumns], kind: str = "css"
    ) -> "TemporalForest":
        forest = cls(kind=kind)
        for edge, columns in per_edge_columns.items():
            forest._indexes[int(edge)] = EdgeTemporalIndex(columns, kind=kind)
        return forest

    def __contains__(self, edge: int) -> bool:
        return int(edge) in self._indexes

    def __len__(self) -> int:
        return len(self._indexes)

    def edges(self) -> Iterable[int]:
        return self._indexes.keys()

    def get(self, edge: int) -> EdgeTemporalIndex | None:
        """Index of ``edge`` or ``None`` when no trajectory traversed it."""
        return self._indexes.get(int(edge))

    def total_records(self) -> int:
        return sum(len(index) for index in self._indexes.values())

    def size_in_bytes(self, with_partition_id: bool = True) -> int:
        return sum(
            index.size_in_bytes(with_partition_id)
            for index in self._indexes.values()
        )


class SlicedTemporalForest(TemporalForest):
    """A forest whose per-edge indexes materialise on first access.

    Backed by the persistence layer's concatenated column arrays (one
    slice per edge, each slice already sorted by ``t`` — the on-disk
    order is the forest's leaf order), typically opened with
    ``mmap_mode="r"``.  Opening a saved index therefore touches no
    column data; an edge's tree directory is built the first time a
    query reaches that edge, from zero-copy slices of the mapped
    arrays, and cached like any built :class:`EdgeTemporalIndex`.
    """

    def __init__(
        self,
        kind: str,
        edge_ids: np.ndarray,
        offsets: np.ndarray,
        columns: Dict[str, np.ndarray],
    ):
        super().__init__(kind=kind)
        self._columns = columns
        self._bounds: Dict[int, tuple] = {
            int(edge): (int(offsets[i]), int(offsets[i + 1]))
            for i, edge in enumerate(edge_ids)
        }

    def __contains__(self, edge: int) -> bool:
        return int(edge) in self._bounds

    def __len__(self) -> int:
        return len(self._bounds)

    def edges(self) -> Iterable[int]:
        return self._bounds.keys()

    def get(self, edge: int) -> EdgeTemporalIndex | None:
        edge = int(edge)
        built = self._indexes.get(edge)
        if built is not None:
            return built
        bounds = self._bounds.get(edge)
        if bounds is None:
            return None
        lo, hi = bounds
        cols = self._columns
        # The slices are pre-sorted by ``t``; constructing the dataclass
        # directly skips ``from_arrays``'s argsort (and any copy).
        columns = TraversalColumns(
            t=cols["t"][lo:hi],
            isa=cols["isa"][lo:hi],
            d=cols["d"][lo:hi],
            tt=cols["tt"][lo:hi],
            a=cols["a"][lo:hi],
            seq=cols["seq"][lo:hi],
            w=cols["w"][lo:hi],
        )
        built = EdgeTemporalIndex(columns, kind=self.kind)
        self._indexes[edge] = built
        return built

    def total_records(self) -> int:
        return sum(hi - lo for lo, hi in self._bounds.values())

    def size_in_bytes(self, with_partition_id: bool = True) -> int:
        # Size accounting is a model over the leaf payload; it forces
        # materialisation (experiments that cost the structure touch
        # every edge anyway).
        return sum(
            self.get(edge).size_in_bytes(with_partition_id)
            for edge in self.edges()
        )
