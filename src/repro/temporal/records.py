"""Leaf records of the extended temporal index (paper Section 4.1.3).

For every traversal of a segment the temporal index stores a record

    t -> (isa, d, TT, a, seq, w)

where ``t`` is the entry timestamp, ``isa`` the inverse-suffix-array value of
the traversal's position in the trajectory string, ``d`` the trajectory id,
``TT`` the traversal time of the segment, ``seq`` the sequence number of the
segment within the trajectory, ``a`` the running travel-time aggregate
``a = sum(TT_0..TT_seq)`` and ``w`` the temporal-partition identifier
(Section 4.3.2).

Records are kept in a column store (:class:`TraversalColumns`) sorted by
``t`` so that both tree variants index the same payload rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

import numpy as np

__all__ = ["LeafRecord", "TraversalColumns", "pack_probe_keys"]


def pack_probe_keys(d: np.ndarray, seq: np.ndarray) -> np.ndarray:
    """Pack ``(d, seq)`` pairs into one int64 composite key.

    The probe join (Procedures 3-4) matches records on the pair
    ``(trajectory id, sequence number)``; packing both into one int64
    lets the join sort and binary-search a single key column.  The
    packing is order-preserving for the lexicographic ``(d, seq)``
    order because ``d`` is a dense non-negative trajectory id (well
    below 2**31) and ``seq`` a non-negative within-trajectory position
    (well below 2**32) — both invariants of the index builder.
    """
    return (
        np.asarray(d, dtype=np.int64) << np.int64(32)
    ) + np.asarray(seq, dtype=np.int64)


class LeafRecord(NamedTuple):
    """One materialised leaf entry, mirroring Figure 4 of the paper."""

    t: int
    isa: int
    d: int
    tt: float
    a: float
    seq: int
    w: int


@dataclass
class TraversalColumns:
    """Columnar storage for the traversal records of one segment.

    All arrays share the same length and are sorted by ``t`` (ties broken by
    insertion order).  The class is append-friendly: :meth:`from_arrays`
    bulk-loads, and tree structures reference rows by position.
    """

    t: np.ndarray
    isa: np.ndarray
    d: np.ndarray
    tt: np.ndarray
    a: np.ndarray
    seq: np.ndarray
    w: np.ndarray

    @classmethod
    def from_arrays(
        cls,
        t: np.ndarray,
        isa: np.ndarray,
        d: np.ndarray,
        tt: np.ndarray,
        a: np.ndarray,
        seq: np.ndarray,
        w: np.ndarray | None = None,
    ) -> "TraversalColumns":
        """Bulk-load columns, sorting every column by ``t``."""
        t = np.asarray(t, dtype=np.int64)
        order = np.argsort(t, kind="stable")
        if w is None:
            w = np.zeros(t.size, dtype=np.int32)
        return cls(
            t=t[order],
            isa=np.asarray(isa, dtype=np.int64)[order],
            d=np.asarray(d, dtype=np.int64)[order],
            tt=np.asarray(tt, dtype=np.float64)[order],
            a=np.asarray(a, dtype=np.float64)[order],
            seq=np.asarray(seq, dtype=np.int32)[order],
            w=np.asarray(w, dtype=np.int32)[order],
        )

    @classmethod
    def empty(cls) -> "TraversalColumns":
        return cls(
            t=np.empty(0, np.int64),
            isa=np.empty(0, np.int64),
            d=np.empty(0, np.int64),
            tt=np.empty(0, np.float64),
            a=np.empty(0, np.float64),
            seq=np.empty(0, np.int32),
            w=np.empty(0, np.int32),
        )

    def __len__(self) -> int:
        return int(self.t.size)

    def record(self, row: int) -> LeafRecord:
        """Materialise row ``row`` as a :class:`LeafRecord`."""
        return LeafRecord(
            t=int(self.t[row]),
            isa=int(self.isa[row]),
            d=int(self.d[row]),
            tt=float(self.tt[row]),
            a=float(self.a[row]),
            seq=int(self.seq[row]),
            w=int(self.w[row]),
        )

    def __iter__(self) -> Iterator[LeafRecord]:
        for row in range(len(self)):
            yield self.record(row)

    def validate(self) -> None:
        """Check column invariants; raises ``ValueError`` on violation."""
        n = len(self)
        for name in ("isa", "d", "tt", "a", "seq", "w"):
            if getattr(self, name).size != n:
                raise ValueError(f"column {name!r} length mismatch")
        if n and np.any(np.diff(self.t) < 0):
            raise ValueError("timestamps are not sorted")
        if n and np.any(self.tt <= 0):
            raise ValueError("traversal times must be positive")

    def probe_keys(self) -> np.ndarray:
        """Packed ``(d, seq)`` composite keys of every row (int64)."""
        return pack_probe_keys(self.d, self.seq)

    def size_in_bytes(self, with_partition_id: bool = True) -> int:
        """Byte size of one row times row count, using the C++-layout model.

        Layout per leaf record (paper Figure 4): ``t`` 8 B, ``isa`` 8 B,
        ``d`` 4 B, ``TT`` 4 B, ``a`` 4 B, ``seq`` 4 B and, when temporal
        partitioning is enabled, ``w`` 2 B.
        """
        per_row = 8 + 8 + 4 + 4 + 4 + 4 + (2 if with_partition_id else 0)
        return per_row * len(self)
