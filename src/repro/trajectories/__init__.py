"""Trajectory substrate: NCT model, GPS pipeline, and workload generation."""

from .congestion import congestion_multiplier, is_weekend
from .generator import Driver, GeneratedDataset, generate_dataset
from .gps import GPSPoint, simulate_gps, split_on_gaps
from .mapmatch import MapMatcher
from .model import Trajectory, TrajectoryPoint, TrajectorySet
from .preprocess import matched_edges_to_points, trajectories_from_gps

__all__ = [
    "Trajectory",
    "TrajectoryPoint",
    "TrajectorySet",
    "GPSPoint",
    "simulate_gps",
    "split_on_gaps",
    "MapMatcher",
    "matched_edges_to_points",
    "trajectories_from_gps",
    "congestion_multiplier",
    "is_weekend",
    "Driver",
    "GeneratedDataset",
    "generate_dataset",
]
