"""Time-of-day congestion model for the synthetic workload.

The paper's motivation for periodic time intervals is that travel times
vary with the time of day ("longer travel-times during rush hours",
Section 6.1).  The generator therefore scales free-flow traversal times by
a congestion multiplier with a morning and an evening rush-hour peak on
weekdays; weekends are almost flat with a small midday bump.

The multiplier depends on where the segment is (zone) and what it is
(category): city streets congest the most, rural motorways the least —
this is what makes periodic predicates matter more inside cities and user
predicates more on main roads, the effect exploited by pi_MDM.
"""

from __future__ import annotations

import math

from ..config import SECONDS_PER_DAY
from ..network.categories import MAIN_ROAD_CATEGORIES, RoadCategory
from ..network.zones import ZoneType

__all__ = ["congestion_multiplier", "is_weekend"]

_MORNING_PEAK_S = 8 * 3600
_MORNING_WIDTH_S = 45 * 60
_EVENING_PEAK_S = 16 * 3600 + 30 * 60
_EVENING_WIDTH_S = 60 * 60
_WEEKEND_PEAK_S = 13 * 3600
_WEEKEND_WIDTH_S = 2 * 3600


def is_weekend(timestamp_s: int) -> bool:
    """Day 0 of the dataset epoch is a Monday; days 5 and 6 are weekend."""
    day = (timestamp_s // SECONDS_PER_DAY) % 7
    return day >= 5


def _peak_amplitude(category: RoadCategory, zone: ZoneType) -> float:
    """Maximum added delay fraction at the height of rush hour."""
    main_road = category in MAIN_ROAD_CATEGORIES
    if zone is ZoneType.CITY:
        return 0.85 if main_road else 0.65
    if zone is ZoneType.AMBIGUOUS:
        return 0.55 if main_road else 0.40
    # Rural / summer house.
    if category is RoadCategory.MOTORWAY:
        return 0.30
    return 0.35 if main_road else 0.15


def congestion_multiplier(
    timestamp_s: int, category: RoadCategory, zone: ZoneType
) -> float:
    """Travel-time multiplier (>= 1) at an absolute timestamp.

    Deterministic: all stochastic variation lives in the generator's noise
    terms, keeping this function reusable by tests and examples.
    """
    tod = timestamp_s % SECONDS_PER_DAY
    amplitude = _peak_amplitude(category, zone)
    if is_weekend(timestamp_s):
        bump = 0.25 * amplitude * _gaussian(tod, _WEEKEND_PEAK_S, _WEEKEND_WIDTH_S)
        return 1.0 + bump
    morning = _gaussian(tod, _MORNING_PEAK_S, _MORNING_WIDTH_S)
    evening = 0.9 * _gaussian(tod, _EVENING_PEAK_S, _EVENING_WIDTH_S)
    return 1.0 + amplitude * max(morning, evening)


def _gaussian(x: float, center: float, width: float) -> float:
    z = (x - center) / width
    return math.exp(-0.5 * z * z)
