"""Synthetic ITSP-like trajectory workload (substitution, DESIGN.md §3).

Reproduces the *data process* behind the paper's ITSP dataset
(Section 5.1.3): a fixed population of drivers (458 vehicles in the paper)
making daily commutes and errands over a multi-year span.  Travel times are
generated so that the effects the evaluation measures actually exist in the
data:

* **time-of-day congestion** (periodic predicates matter),
* **turn costs** that depend on the *next* edge taken (path-based estimates
  beat segment-level convolution, which can only average over all turners),
* **per-trip driver mood** (within-trip correlation that convolution of
  independent segment histograms misses), and
* **per-driver speed factors** (user predicates matter, mostly on main
  roads where the spread between drivers is widest).

Entry timestamps are integer seconds from the dataset epoch (day 0 is a
Monday); traversal times are whole seconds >= 1, so ``t_{i+1} = t_i + TT_i``
holds exactly and timestamps are strictly increasing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import SECONDS_PER_DAY, ExperimentScale, get_scale
from ..network.categories import MAIN_ROAD_CATEGORIES, RoadCategory
from ..network.generator import SyntheticNetwork, generate_network
from ..network.graph import RoadNetwork
from ..network.routing import alternative_paths
from .congestion import congestion_multiplier, is_weekend
from .model import Trajectory, TrajectoryPoint, TrajectorySet

__all__ = ["Driver", "GeneratedDataset", "generate_dataset"]

#: Per-edge multiplicative noise (sigma of the lognormal).
EDGE_NOISE_SIGMA = 0.10
#: Per-trip "mood" noise shared by all edges of a trip.
TRIP_NOISE_SIGMA = 0.07
#: Spread of per-driver speed factors.
DRIVER_SPEED_SIGMA = 0.09


@dataclass
class Driver:
    """A driver with home/work anchors and pre-computed route pools."""

    user_id: int
    home_vertex: int
    work_vertex: int
    speed_factor: float
    commute_routes: List[List[int]]
    return_routes: List[List[int]]
    errand_routes: List[List[int]]


@dataclass
class GeneratedDataset:
    """Everything the experiments need: world, drivers and trajectories."""

    synthetic: SyntheticNetwork
    drivers: List[Driver]
    trajectories: TrajectorySet
    scale: ExperimentScale

    @property
    def network(self) -> RoadNetwork:
        return self.synthetic.network


class _TripSimulator:
    """Simulates traversal times along a route at a departure time."""

    def __init__(self, network: RoadNetwork, rng: np.random.Generator):
        self._network = network
        self._rng = rng
        self._edge_cache: Dict[int, Tuple[float, RoadCategory, object]] = {}
        self._turn_cache: Dict[Tuple[int, int], float] = {}

    def _edge_static(self, edge_id: int) -> Tuple[float, RoadCategory, object]:
        cached = self._edge_cache.get(edge_id)
        if cached is None:
            edge = self._network.edge(edge_id)
            free_flow_s = 3.6 * edge.length_m / self._network.speed_limit(edge_id)
            cached = (free_flow_s, edge.category, edge.zone)
            self._edge_cache[edge_id] = cached
        return cached

    def _turn_base_delay(self, from_edge: int, to_edge: int) -> float:
        """Geometric turn cost: straight < right < left < U-turn.

        The delay is charged to the *incoming* edge's traversal time but
        depends on the outgoing edge — the path-dependence that makes
        strict-path estimates more accurate than segment-level ones.
        """
        cached = self._turn_cache.get((from_edge, to_edge))
        if cached is not None:
            return cached
        network = self._network
        a = network.edge(from_edge)
        b = network.edge(to_edge)
        ax, ay = network.position(a.source)
        bx, by = network.position(a.target)
        cx, cy = network.position(b.target)
        v1 = (bx - ax, by - ay)
        v2 = (cx - bx, cy - by)
        cross = v1[0] * v2[1] - v1[1] * v2[0]
        dot = v1[0] * v2[0] + v1[1] * v2[1]
        angle = math.atan2(cross, dot)  # signed, left positive
        absolute = abs(angle)
        if absolute < math.radians(30):
            delay = 0.5
        elif absolute > math.radians(150):
            delay = 8.0  # U-turn
        elif angle < 0:
            delay = 2.5  # right turn
        else:
            delay = 5.0  # left turn across traffic
        # Entering a strictly bigger road: yield / merge wait.
        if b.category in MAIN_ROAD_CATEGORIES and a.category not in MAIN_ROAD_CATEGORIES:
            delay += 4.0
        self._turn_cache[(from_edge, to_edge)] = delay
        return delay

    def simulate(
        self, route: Sequence[int], departure_s: int, speed_factor: float
    ) -> List[TrajectoryPoint]:
        """Generate the (edge, t, TT) sequence for one trip."""
        l = len(route)
        mood = float(np.exp(self._rng.normal(0.0, TRIP_NOISE_SIGMA)))
        edge_noise = np.exp(self._rng.normal(0.0, EDGE_NOISE_SIGMA, size=l))
        points: List[TrajectoryPoint] = []
        t = int(departure_s)
        for i, edge_id in enumerate(route):
            free_flow_s, category, zone = self._edge_static(edge_id)
            congestion = congestion_multiplier(t, category, zone)
            travel = free_flow_s / speed_factor * congestion * mood * edge_noise[i]
            if i + 1 < l:
                turn = self._turn_base_delay(edge_id, route[i + 1])
                travel += turn * congestion
            tt = max(1, int(round(travel)))
            points.append(TrajectoryPoint(edge=edge_id, t=t, tt=float(tt)))
            t += tt
        return points


def _make_drivers(
    synthetic: SyntheticNetwork, scale: ExperimentScale, rng: np.random.Generator
) -> List[Driver]:
    towns = synthetic.towns
    drivers: List[Driver] = []
    for user_id in range(scale.n_drivers):
        home_town = towns[int(rng.integers(len(towns)))]
        # 60 % commute to a different town (motorway users).
        if len(towns) > 1 and rng.random() < 0.6:
            other = [t for t in towns if t.index != home_town.index]
            work_town = other[int(rng.integers(len(other)))]
        else:
            work_town = home_town
        home = int(rng.choice(home_town.home_vertices))
        work = int(rng.choice(work_town.work_vertices))
        if home == work:
            work = int(rng.choice(work_town.work_vertices))
        network = synthetic.network
        commute = alternative_paths(network, home, work, k=2)
        back = alternative_paths(network, work, home, k=2)
        if not commute or not back:
            continue  # disconnected pick; skip this driver slot
        errands: List[List[int]] = []
        candidates = list(work_town.work_vertices) + list(
            home_town.work_vertices
        )
        if synthetic.summer_vertices and rng.random() < 0.25:
            candidates += list(synthetic.summer_vertices)
        for _ in range(3):
            destination = int(rng.choice(candidates))
            if destination == home:
                continue
            out = alternative_paths(network, home, destination, k=1)
            ret = alternative_paths(network, destination, home, k=1)
            if out and ret:
                errands.append(out[0])
                errands.append(ret[0])
        speed = float(
            np.clip(np.exp(rng.normal(0.0, DRIVER_SPEED_SIGMA)), 0.75, 1.35)
        )
        drivers.append(
            Driver(
                user_id=user_id,
                home_vertex=home,
                work_vertex=work,
                speed_factor=speed,
                commute_routes=commute,
                return_routes=back,
                errand_routes=errands or commute,
            )
        )
    return drivers


def _pick_route(routes: List[List[int]], rng: np.random.Generator) -> List[int]:
    """Mostly the preferred variant, occasionally the alternative."""
    if len(routes) == 1 or rng.random() < 0.85:
        return routes[0]
    return routes[int(rng.integers(1, len(routes)))]


def generate_dataset(
    scale: ExperimentScale | str | None = None,
    seed: int = 0,
    synthetic: Optional[SyntheticNetwork] = None,
) -> GeneratedDataset:
    """Generate the full synthetic dataset for an experiment scale.

    Deterministic for a given ``(scale, seed)``; the network can be shared
    by passing ``synthetic`` explicitly.
    """
    if not isinstance(scale, ExperimentScale):
        scale = get_scale(scale if isinstance(scale, str) else None)
    rng = np.random.default_rng(seed + 1)
    if synthetic is None:
        synthetic = generate_network(scale, seed=seed)
    drivers = _make_drivers(synthetic, scale, rng)
    simulator = _TripSimulator(synthetic.network, rng)

    trajectories: List[Trajectory] = []
    next_id = 0
    extra_rate_weekday = max(0.0, scale.trips_per_driver_day - 1.8)
    extra_rate_weekend = scale.trips_per_driver_day * 0.55
    for day in range(scale.n_days):
        day_start = day * SECONDS_PER_DAY
        weekend = is_weekend(day_start)
        for driver in drivers:
            trips: List[Tuple[List[int], int]] = []
            if not weekend and rng.random() < 0.9:
                out_departure = day_start + int(
                    rng.normal(7 * 3600 + 50 * 60, 20 * 60)
                )
                back_departure = day_start + int(
                    rng.normal(16 * 3600 + 30 * 60, 40 * 60)
                )
                trips.append((_pick_route(driver.commute_routes, rng), out_departure))
                trips.append((_pick_route(driver.return_routes, rng), back_departure))
            n_extra = int(
                rng.poisson(extra_rate_weekend if weekend else extra_rate_weekday)
            )
            for _ in range(n_extra):
                route = driver.errand_routes[
                    int(rng.integers(len(driver.errand_routes)))
                ]
                departure = day_start + int(rng.uniform(9 * 3600, 21 * 3600))
                trips.append((route, departure))
            for route, departure in trips:
                if not route:
                    continue
                points = simulator.simulate(route, departure, driver.speed_factor)
                trajectories.append(
                    Trajectory(
                        traj_id=next_id,
                        user_id=driver.user_id,
                        points=points,
                    )
                )
                next_id += 1

    return GeneratedDataset(
        synthetic=synthetic,
        drivers=drivers,
        trajectories=TrajectorySet(trajectories),
        scale=scale,
    )
