"""GPS trace simulation (substitute for the raw ITSP feed).

The ITSP dataset is 1.1 billion GPS points sampled at 1 Hz from 458
vehicles (paper Section 5.1.3) that are map-matched off-line into
network-constrained trajectories.  This module produces the raw side of
that pipeline: positions interpolated along a trajectory's edges at a
fixed rate with Gaussian sensor noise.  Together with
:mod:`repro.trajectories.mapmatch` and :mod:`repro.trajectories.preprocess`
it closes the loop GPS -> map matching -> NCT used by the full-pipeline
tests and the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..network.graph import RoadNetwork
from .model import TrajectoryPoint

__all__ = ["GPSPoint", "simulate_gps", "split_on_gaps"]


@dataclass(frozen=True)
class GPSPoint:
    """One GPS fix: time (s), easting/northing (m)."""

    t: float
    x: float
    y: float


def simulate_gps(
    network: RoadNetwork,
    points: Sequence[TrajectoryPoint],
    rate_hz: float = 1.0,
    noise_std_m: float = 5.0,
    rng: np.random.Generator | None = None,
) -> List[GPSPoint]:
    """Emit noisy GPS fixes along a traversal sequence.

    Positions are linearly interpolated between the endpoints of each edge
    over its traversal duration, sampled every ``1 / rate_hz`` seconds,
    with isotropic Gaussian noise of ``noise_std_m`` meters.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    interval = 1.0 / rate_hz
    fixes: List[GPSPoint] = []
    for point in points:
        edge = network.edge(point.edge)
        sx, sy = network.position(edge.source)
        tx, ty = network.position(edge.target)
        n_samples = max(1, int(point.tt * rate_hz))
        for k in range(n_samples):
            fraction = (k * interval) / point.tt
            fraction = min(fraction, 1.0)
            x = sx + fraction * (tx - sx) + rng.normal(0.0, noise_std_m)
            y = sy + fraction * (ty - sy) + rng.normal(0.0, noise_std_m)
            fixes.append(GPSPoint(t=point.t + k * interval, x=x, y=y))
    return fixes


def split_on_gaps(
    fixes: Sequence[GPSPoint], gap_s: float = 180.0
) -> List[List[GPSPoint]]:
    """Split a GPS stream into trips at gaps larger than ``gap_s``.

    Mirrors the ITSP preprocessing rule: "a new trajectory is created if
    more than 180 seconds have elapsed since the last GPS point".
    """
    if gap_s <= 0:
        raise ValueError("gap_s must be positive")
    trips: List[List[GPSPoint]] = []
    current: List[GPSPoint] = []
    previous_t: float | None = None
    for fix in fixes:
        if previous_t is not None and fix.t - previous_t > gap_s:
            if current:
                trips.append(current)
            current = []
        current.append(fix)
        previous_t = fix.t
    if current:
        trips.append(current)
    return trips
