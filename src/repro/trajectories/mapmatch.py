"""HMM map matching (Newson & Krumm style, paper reference [18]).

Matches a GPS fix sequence onto the road network with a Viterbi pass over
per-fix candidate edges:

* **emission**: Gaussian in the point-to-segment distance,
* **transition**: exponential in the absolute difference between on-network
  route distance and straight-line GPS displacement (the classic Newson &
  Krumm formulation that penalises detours and teleports).

The implementation targets the reproduction's network scales (hundreds to
a few thousand edges); route distances are computed with a radius-limited
Dijkstra and memoised.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.graph import RoadNetwork
from .gps import GPSPoint

__all__ = ["MapMatcher"]


class MapMatcher:
    """Viterbi map matcher over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        sigma_m: float = 8.0,
        beta_m: float = 20.0,
        candidate_radius_m: float = 40.0,
        max_candidates: int = 6,
        max_route_m: float = 2500.0,
    ):
        if sigma_m <= 0 or beta_m <= 0:
            raise ValueError("sigma and beta must be positive")
        self._network = network
        self._sigma = sigma_m
        self._beta = beta_m
        self._radius = candidate_radius_m
        self._max_candidates = max_candidates
        self._max_route = max_route_m
        self._route_cache: Dict[Tuple[int, int], float] = {}
        self._segments = [
            (
                edge.edge_id,
                network.position(edge.source),
                network.position(edge.target),
                edge.length_m,
            )
            for edge in network.edges()
        ]

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @staticmethod
    def _project(
        point: Tuple[float, float],
        start: Tuple[float, float],
        end: Tuple[float, float],
    ) -> Tuple[float, float]:
        """(distance to segment, fraction along segment)."""
        px, py = point
        sx, sy = start
        ex, ey = end
        dx, dy = ex - sx, ey - sy
        norm = dx * dx + dy * dy
        if norm == 0:
            return math.hypot(px - sx, py - sy), 0.0
        fraction = ((px - sx) * dx + (py - sy) * dy) / norm
        fraction = min(1.0, max(0.0, fraction))
        qx, qy = sx + fraction * dx, sy + fraction * dy
        return math.hypot(px - qx, py - qy), fraction

    def _candidates(self, fix: GPSPoint) -> List[Tuple[int, float, float]]:
        """Candidate ``(edge, distance, fraction)`` within the radius."""
        found: List[Tuple[float, int, float]] = []
        for edge_id, start, end, _ in self._segments:
            distance, fraction = self._project((fix.x, fix.y), start, end)
            if distance <= self._radius:
                found.append((distance, edge_id, fraction))
        found.sort()
        return [
            (edge_id, distance, fraction)
            for distance, edge_id, fraction in found[: self._max_candidates]
        ]

    # ------------------------------------------------------------------ #
    # Route distances
    # ------------------------------------------------------------------ #

    def _vertex_route_distance(self, source: int, target: int) -> float:
        """Radius-limited Dijkstra distance in meters (inf when too far)."""
        if source == target:
            return 0.0
        key = (source, target)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        distances = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        result = math.inf
        while heap:
            distance, vertex = heapq.heappop(heap)
            if distance > self._max_route:
                break
            if vertex == target:
                result = distance
                break
            if distance > distances.get(vertex, math.inf):
                continue
            for edge_id in self._network.out_edges(vertex):
                edge = self._network.edge(edge_id)
                candidate = distance + edge.length_m
                if candidate < distances.get(edge.target, math.inf):
                    distances[edge.target] = candidate
                    heapq.heappush(heap, (candidate, edge.target))
        self._route_cache[key] = result
        return result

    def _route_distance(
        self,
        from_edge: int,
        from_fraction: float,
        to_edge: int,
        to_fraction: float,
    ) -> float:
        """On-network distance between positions on two edges."""
        a = self._network.edge(from_edge)
        b = self._network.edge(to_edge)
        if from_edge == to_edge:
            if to_fraction >= from_fraction:
                return (to_fraction - from_fraction) * a.length_m
            # Going backwards on the same edge: loop around.
            loop = self._vertex_route_distance(a.target, a.source)
            return (1.0 - from_fraction) * a.length_m + loop + to_fraction * b.length_m
        between = self._vertex_route_distance(a.target, b.source)
        return (
            (1.0 - from_fraction) * a.length_m
            + between
            + to_fraction * b.length_m
        )

    # ------------------------------------------------------------------ #
    # Viterbi
    # ------------------------------------------------------------------ #

    def match(self, fixes: Sequence[GPSPoint]) -> List[int]:
        """Return the most likely edge for every fix (empty when hopeless).

        Fixes without any candidate edge are skipped; the result keeps one
        edge per *retained* fix, so callers should pair it with
        :meth:`match_trace` for timing information.
        """
        edges, _ = self.match_trace(fixes)
        return edges

    def match_trace(
        self, fixes: Sequence[GPSPoint]
    ) -> Tuple[List[int], List[GPSPoint]]:
        """Viterbi decode: (edge per retained fix, the retained fixes)."""
        retained: List[GPSPoint] = []
        candidate_sets: List[List[Tuple[int, float, float]]] = []
        for fix in fixes:
            candidates = self._candidates(fix)
            if candidates:
                retained.append(fix)
                candidate_sets.append(candidates)
        if not candidate_sets:
            return [], []

        # Viterbi lattice.
        first = candidate_sets[0]
        scores = [self._emission(d) for _, d, _ in first]
        backptr: List[List[int]] = [[-1] * len(first)]
        for k in range(1, len(candidate_sets)):
            previous = candidate_sets[k - 1]
            current = candidate_sets[k]
            gps_dist = math.hypot(
                retained[k].x - retained[k - 1].x,
                retained[k].y - retained[k - 1].y,
            )
            new_scores = []
            pointers = []
            for edge_id, distance, fraction in current:
                best_score, best_prev = -math.inf, -1
                for j, (p_edge, _, p_fraction) in enumerate(previous):
                    route = self._route_distance(
                        p_edge, p_fraction, edge_id, fraction
                    )
                    transition = (
                        -abs(route - gps_dist) / self._beta
                        if math.isfinite(route)
                        else -1e9
                    )
                    score = scores[j] + transition
                    if score > best_score:
                        best_score, best_prev = score, j
                new_scores.append(best_score + self._emission(distance))
                pointers.append(best_prev)
            scores = new_scores
            backptr.append(pointers)

        # Backtrack.
        best_final = max(range(len(scores)), key=lambda i: scores[i])
        chosen = [0] * len(candidate_sets)
        chosen[-1] = best_final
        for k in range(len(candidate_sets) - 1, 0, -1):
            chosen[k - 1] = backptr[k][chosen[k]]
        edges = [
            candidate_sets[k][chosen[k]][0] for k in range(len(candidate_sets))
        ]
        return edges, retained

    def _emission(self, distance: float) -> float:
        return -0.5 * (distance / self._sigma) ** 2
