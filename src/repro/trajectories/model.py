"""Network-constrained trajectory (NCT) model (paper Section 2.2).

A trajectory ``tr = (d, u, s)`` of driver ``u`` with id ``d`` is a sequence

    s = <(e0, t0, TT0), (e1, t1, TT1), ..., (e_{l-1}, t_{l-1}, TT_{l-1})>

of (segment, entry timestamp, traversal duration) triples with strictly
increasing timestamps and positive durations.  ``Dur(tr, P)`` sums the
traversal times of a sub-path occurrence.

Note on resolution: the ITSP dataset stores entry times at minute
resolution and durations at second resolution.  We keep entry times at
second resolution to preserve the strict-monotonicity invariant for short
segments; nothing downstream depends on coarser keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import TrajectoryError

__all__ = ["TrajectoryPoint", "Trajectory", "TrajectorySet"]


class TrajectoryPoint(NamedTuple):
    """One traversal: ``(edge, entry time [s], duration [s])``."""

    edge: int
    t: int
    tt: float


@dataclass
class Trajectory:
    """One network-constrained trajectory."""

    traj_id: int
    user_id: int
    points: List[TrajectoryPoint]

    @property
    def path(self) -> Tuple[int, ...]:
        """``P_tr``: the sequence of traversed edges."""
        return tuple(p.edge for p in self.points)

    @property
    def start_time(self) -> int:
        """``tr.t0``."""
        if not self.points:
            raise TrajectoryError(f"trajectory {self.traj_id} is empty")
        return self.points[0].t

    def __len__(self) -> int:
        return len(self.points)

    def duration(self) -> float:
        """``Dur(tr, P_tr)``: total traversal time of the whole path."""
        return float(sum(p.tt for p in self.points))

    def duration_of_subpath(self, start: int, stop: int) -> float:
        """Sum of traversal times of ``P_tr[start, stop)``."""
        if not 0 <= start < stop <= len(self.points):
            raise TrajectoryError(
                f"sub-path [{start}, {stop}) out of range for length "
                f"{len(self.points)}"
            )
        return float(sum(p.tt for p in self.points[start:stop]))

    def duration_of_path(self, path: Sequence[int]) -> Optional[float]:
        """``Dur(tr, P)``: duration of the first occurrence of ``P``.

        ``None`` when ``P_tr`` does not contain ``P`` as a sub-path
        (the paper leaves ``Dur`` undefined in that case).
        """
        own, query = self.path, tuple(path)
        l, m = len(own), len(query)
        if m == 0 or m > l:
            return None
        for i in range(l - m + 1):
            if own[i : i + m] == query:
                return self.duration_of_subpath(i, i + m)
        return None

    def cumulative_durations(self) -> List[float]:
        """``a_seq = sum(TT_0..TT_seq)`` for every position (Section 4.1.3)."""
        totals: List[float] = []
        running = 0.0
        for point in self.points:
            running += point.tt
            totals.append(running)
        return totals

    def validate(self) -> None:
        """Check NCT invariants; raises :class:`TrajectoryError`."""
        if not self.points:
            raise TrajectoryError(f"trajectory {self.traj_id} is empty")
        previous_t: Optional[int] = None
        for point in self.points:
            if point.tt <= 0:
                raise TrajectoryError(
                    f"trajectory {self.traj_id}: non-positive duration"
                )
            if previous_t is not None and point.t <= previous_t:
                raise TrajectoryError(
                    f"trajectory {self.traj_id}: timestamps not increasing"
                )
            previous_t = point.t


class TrajectorySet:
    """An ordered collection of trajectories with id/user lookups."""

    def __init__(self, trajectories: Sequence[Trajectory] = ()):
        self._trajectories: List[Trajectory] = list(trajectories)
        self._by_id: Dict[int, Trajectory] = {
            tr.traj_id: tr for tr in self._trajectories
        }
        if len(self._by_id) != len(self._trajectories):
            raise TrajectoryError("duplicate trajectory ids")

    def add(self, trajectory: Trajectory) -> None:
        if trajectory.traj_id in self._by_id:
            raise TrajectoryError(
                f"duplicate trajectory id {trajectory.traj_id}"
            )
        self._trajectories.append(trajectory)
        self._by_id[trajectory.traj_id] = trajectory

    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajectories)

    def __getitem__(self, index: int) -> Trajectory:
        return self._trajectories[index]

    def by_id(self, traj_id: int) -> Trajectory:
        try:
            return self._by_id[traj_id]
        except KeyError:
            raise TrajectoryError(f"unknown trajectory id {traj_id}") from None

    def has_id(self, traj_id: int) -> bool:
        return traj_id in self._by_id

    def user_of(self, traj_id: int) -> int:
        """The associative container ``U: d -> u`` (Section 4.1.3)."""
        return self.by_id(traj_id).user_id

    def users(self) -> Dict[int, int]:
        return {tr.traj_id: tr.user_id for tr in self._trajectories}

    def total_traversals(self) -> int:
        return sum(len(tr) for tr in self._trajectories)

    def time_span(self) -> Tuple[int, int]:
        """``[min t0, max (t_last + TT_last)]`` over the whole set."""
        if not self._trajectories:
            raise TrajectoryError("empty trajectory set")
        start = min(tr.start_time for tr in self._trajectories)
        end = max(
            tr.points[-1].t + int(tr.points[-1].tt) + 1
            for tr in self._trajectories
        )
        return start, end

    def validate(self) -> None:
        for trajectory in self._trajectories:
            trajectory.validate()
