"""GPS-to-NCT preprocessing (substitute for the ITSP pipeline).

Turns raw GPS streams into network-constrained trajectories exactly the
way the paper describes its preprocessing (Section 5.1.3):

1. streams are split into trips at gaps of more than 180 seconds,
2. each trip is map-matched (Newson & Krumm HMM),
3. per-edge entry times and times-on-segment are derived from the matched
   fixes, and
4. edges at the beginning and end of a trip with too few matched fixes are
   discarded "so the durations of the segment traversals are meaningful".
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..config import TRAJECTORY_GAP_S
from ..network.graph import RoadNetwork
from .gps import GPSPoint, split_on_gaps
from .mapmatch import MapMatcher
from .model import Trajectory, TrajectoryPoint, TrajectorySet

__all__ = ["matched_edges_to_points", "trajectories_from_gps"]

#: Minimum matched fixes on a boundary edge for it to be kept.
MIN_BOUNDARY_FIXES = 2


def matched_edges_to_points(
    edges: Sequence[int], fixes: Sequence[GPSPoint]
) -> List[TrajectoryPoint]:
    """Collapse per-fix edge assignments into (edge, t, TT) traversals.

    Consecutive fixes matched to the same edge form one traversal; the
    entry time is the first fix's time, the duration the span until the
    first fix of the next edge (the last edge uses its own span + one
    sample interval).  Boundary edges supported by fewer than
    :data:`MIN_BOUNDARY_FIXES` fixes are dropped, as in the ITSP pipeline.
    """
    if len(edges) != len(fixes):
        raise ValueError("edges and fixes must align")
    if not edges:
        return []

    # Group consecutive equal edges.
    groups: List[Tuple[int, int, int]] = []  # (edge, first_index, count)
    start = 0
    for i in range(1, len(edges) + 1):
        if i == len(edges) or edges[i] != edges[start]:
            groups.append((edges[start], start, i - start))
            start = i

    # Trim under-supported boundary groups.
    while groups and groups[0][2] < MIN_BOUNDARY_FIXES:
        groups.pop(0)
    while groups and groups[-1][2] < MIN_BOUNDARY_FIXES:
        groups.pop()
    if not groups:
        return []

    points: List[TrajectoryPoint] = []
    previous_t: int | None = None
    for g, (edge, first, count) in enumerate(groups):
        entry = int(fixes[first].t)
        if previous_t is not None and entry <= previous_t:
            entry = previous_t + 1
        if g + 1 < len(groups):
            next_entry = int(fixes[groups[g + 1][1]].t)
            tt = max(1.0, float(next_entry - entry))
        else:
            last_fix = fixes[first + count - 1]
            tt = max(1.0, float(int(last_fix.t) - entry + 1))
        points.append(TrajectoryPoint(edge=edge, t=entry, tt=tt))
        previous_t = entry
    return points


def trajectories_from_gps(
    network: RoadNetwork,
    streams: Iterable[Tuple[int, Sequence[GPSPoint]]],
    matcher: MapMatcher | None = None,
    gap_s: float = float(TRAJECTORY_GAP_S),
    min_edges: int = 2,
    start_id: int = 0,
) -> TrajectorySet:
    """Full preprocessing: gap split, map match, traversal extraction.

    Parameters
    ----------
    network:
        The road network to match onto.
    streams:
        ``(user_id, fixes)`` pairs, one per vehicle.
    matcher:
        Optional pre-configured :class:`MapMatcher`.
    gap_s:
        Trip-splitting gap (paper: 180 s).
    min_edges:
        Trips matched to fewer edges are discarded.
    start_id:
        First trajectory id to assign.
    """
    if matcher is None:
        matcher = MapMatcher(network)
    trajectories: List[Trajectory] = []
    next_id = start_id
    for user_id, fixes in streams:
        for trip in split_on_gaps(fixes, gap_s=gap_s):
            edges, retained = matcher.match_trace(trip)
            if not edges:
                continue
            points = matched_edges_to_points(edges, retained)
            if len(points) < min_edges:
                continue
            trajectory = Trajectory(
                traj_id=next_id, user_id=user_id, points=points
            )
            trajectory.validate()
            trajectories.append(trajectory)
            next_id += 1
    return TrajectorySet(trajectories)
